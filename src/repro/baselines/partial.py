"""Decentralized partial aggregation for decomposable functions.

This is the state of the art the paper builds on (Disco, Desis, §2.3): for
self-decomposable and decomposable functions, local nodes fold their whole
window into a constant-size partial aggregate and ship only that — a few
dozen bytes per window regardless of the event rate.  The root combines
the partials and lowers the final answer, exactly.

The system exists in this reproduction to make the paper's motivating
contrast executable: run ``sum`` through it and the network cost is
O(nodes) per window; try ``median`` and it raises, because no constant-size
exact partial exists — that gap is what Dema fills.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import AggregationError, ConfigurationError
from repro.network.messages import (
    EventBatchMessage,
    Message,
    PartialAggregateMessage,
)
from repro.network.simulator import INGEST_OPS, SimulatedNode, receive_ops
from repro.streaming.aggregates import (
    AggregationFunction,
    get_function,
)
from repro.streaming.events import Event
from repro.streaming.windows import TumblingWindows, Window
from repro.core.query import QuantileQuery
from repro.network.topology import TopologyConfig
from repro.baselines.base import BaselineEngine, BaselineRootMixin

__all__ = [
    "PartialAggLocalNode",
    "PartialAggRootNode",
    "build_partial_system",
    "serialize_partial",
    "deserialize_partial",
]

#: Abstract ops for lifting + combining one event into the running partial.
_FOLD_OPS_PER_EVENT = 2.0


def serialize_partial(
    function: AggregationFunction, partial: Any
) -> tuple[float, ...]:
    """Encode a partial aggregate as a flat float tuple for the wire.

    Raises:
        AggregationError: If the function has no constant-size encoding
            (i.e. it is non-decomposable).
    """
    name = function.name
    if name in ("sum", "min", "max"):
        return (float(partial),)
    if name == "count":
        return (float(partial),)
    if name in ("average", "variance"):
        return (float(partial.count), partial.total, partial.total_sq)
    if name == "range":
        return (partial[0], partial[1])
    raise AggregationError(
        f"{name} has no constant-size exact partial; use Dema for "
        "non-decomposable functions"
    )


def deserialize_partial(
    function: AggregationFunction, state: tuple[float, ...]
) -> Any:
    """Decode a wire state back into the function's partial type."""
    name = function.name
    if name in ("sum", "min", "max"):
        return state[0]
    if name == "count":
        return int(state[0])
    if name in ("average", "variance"):
        from repro.streaming.aggregates import _Moments

        return _Moments(int(state[0]), state[1], state[2])
    if name == "range":
        return (state[0], state[1])
    raise AggregationError(f"cannot deserialize a partial for {name}")


class PartialAggLocalNode(SimulatedNode):
    """Edge operator folding events into constant-size partials."""

    def __init__(
        self,
        node_id: int,
        *,
        root_id: int,
        function: AggregationFunction,
        window_length_ms: int,
        ops_per_second: float = 1e8,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        if not function.is_decomposable:
            raise ConfigurationError(
                f"{function.name} is non-decomposable; partial aggregation "
                "cannot compute it exactly (this is the paper's premise)"
            )
        self._root_id = root_id
        self._function = function
        self._assigner = TumblingWindows(window_length_ms)
        self._partials: dict[Window, Any] = {}
        self._counts: dict[Window, int] = {}
        self._completed: set[Window] = set()
        self._events_ingested = 0
        self._late_events = 0

    @property
    def events_ingested(self) -> int:
        """Raw events accepted so far."""
        return self._events_ingested

    @property
    def late_events(self) -> int:
        """Events dropped because their window had already shipped."""
        return self._late_events

    def ingest(self, events: Sequence[Event], now: float) -> float:
        """Fold the batch into per-window partial aggregates (O(1) state)."""
        for event in events:
            window = self._assigner.assign(event.timestamp)[0]
            if window in self._completed:
                self._late_events += 1
                continue
            lifted = self._function.lift(event.value)
            if window in self._partials:
                self._partials[window] = self._function.combine(
                    self._partials[window], lifted
                )
                self._counts[window] += 1
            else:
                self._partials[window] = lifted
                self._counts[window] = 1
        self._events_ingested += len(events)
        ops = (INGEST_OPS + _FOLD_OPS_PER_EVENT) * len(events)
        return self.work(ops, now)

    def on_window_complete(self, window: Window, now: float) -> None:
        """Ship the window's partial aggregate (a few floats)."""
        if window in self._completed:
            return
        self._completed.add(window)
        partial = self._partials.pop(window, None)
        count = self._counts.pop(window, 0)
        state = (
            serialize_partial(self._function, partial)
            if partial is not None
            else ()
        )
        message = PartialAggregateMessage(
            sender=self.node_id,
            window=window,
            state=state,
            local_window_size=count,
        )
        self.send(message, self._root_id, now)

    def on_message(self, message: Message, now: float) -> None:
        if isinstance(message, EventBatchMessage):
            finish = self.work(receive_ops(message.payload_bytes), now)
            self.ingest(message.events, finish)
            return
        raise AggregationError(
            f"partial-agg local node received unexpected "
            f"{type(message).__name__}"
        )


class PartialAggRootNode(SimulatedNode, BaselineRootMixin):
    """Root operator combining partials and lowering the final answer."""

    def __init__(
        self,
        node_id: int,
        *,
        local_ids: Sequence[int],
        function: AggregationFunction,
        ops_per_second: float = 2e8,
    ) -> None:
        SimulatedNode.__init__(self, node_id, ops_per_second=ops_per_second)
        BaselineRootMixin.__init__(self)
        self._local_ids = tuple(local_ids)
        self._function = function
        self._pending: dict[Window, dict[int, PartialAggregateMessage]] = {}

    @property
    def open_windows(self) -> int:
        """Windows still awaiting partials."""
        return len(self._pending)

    def on_message(self, message: Message, now: float) -> None:
        """Collect one partial per local node; combine and answer."""
        if not isinstance(message, PartialAggregateMessage):
            raise AggregationError(
                f"partial-agg root received unexpected "
                f"{type(message).__name__}"
            )
        self.work(receive_ops(message.payload_bytes), now)
        pending = self._pending.setdefault(message.window, {})
        if message.sender in pending:
            raise AggregationError(
                f"duplicate partial from node {message.sender} for window "
                f"{message.window}"
            )
        pending[message.sender] = message
        if len(pending) == len(self._local_ids):
            self._close(message.window, now)

    def _close(self, window: Window, now: float) -> None:
        messages = self._pending.pop(window)
        combined: Any = None
        total = 0
        for incoming in messages.values():
            total += incoming.local_window_size
            if not incoming.state:
                continue
            partial = deserialize_partial(self._function, incoming.state)
            combined = (
                partial
                if combined is None
                else self._function.combine(combined, partial)
            )
        if combined is None:
            self._emit(window, None, 0, now)
            return
        self._emit(window, self._function.lower(combined), total, now)


def build_partial_system(
    function_name: str,
    topology_config: TopologyConfig,
    *,
    window_length_ms: int = 1000,
    batch_size: int = 512,
) -> BaselineEngine:
    """Deploy partial aggregation for a decomposable function by name.

    Raises:
        ConfigurationError: If the function is non-decomposable — the gap
            Dema exists to fill.
    """
    function = get_function(function_name)
    if not function.is_decomposable:
        raise ConfigurationError(
            f"{function_name} is non-decomposable; partial aggregation "
            "cannot compute it exactly — use Dema"
        )
    # The engine only uses the query for its window shape.
    shape_query = QuantileQuery(q=0.5, window_length_ms=window_length_ms)
    return BaselineEngine(
        shape_query,
        topology_config,
        root_factory=lambda nid, ops, locals_, _query: PartialAggRootNode(
            nid, local_ids=locals_, function=function, ops_per_second=ops
        ),
        local_factory=lambda nid, ops, root_id, _query: PartialAggLocalNode(
            nid,
            root_id=0,
            function=function,
            window_length_ms=window_length_ms,
            ops_per_second=ops,
        ),
        batch_size=batch_size,
    )
