"""KLL baseline: the DataSketches-style mergeable sketch as a full system.

KLL (Karnin-Lang-Liberty) is the quantile sketch production systems reach
for today (Apache DataSketches); it slots into the same decentralized
pattern as the t-digest baseline: local nodes sketch their windows, ship
``(value, weight)`` pairs, and the root merges sketches and answers with a
provable normalized-rank-error bound.  Its serialized form rides in a
:class:`~repro.network.messages.DigestMessage` — the pairs are 16 bytes
each, exactly like centroids.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AggregationError
from repro.network.messages import DigestMessage, EventBatchMessage, Message
from repro.network.simulator import INGEST_OPS, SimulatedNode, receive_ops
from repro.streaming.events import Event
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.sketches.kll import KllSketch
from repro.baselines.base import BaselineRootMixin

__all__ = ["KllLocalNode", "KllRootNode", "DEFAULT_K"]

#: Default accuracy parameter; ~0.9 % normalized rank error.
DEFAULT_K = 200

#: Abstract CPU ops per event folded into a KLL sketch (append plus an
#: amortized share of compaction).
_SKETCH_OPS_PER_EVENT = 6.0

#: Abstract CPU ops per retained item during root-side merging.
_MERGE_OPS_PER_ITEM = 12.0


class KllLocalNode(SimulatedNode):
    """Local operator: sketches each window, ships weighted items."""

    def __init__(
        self,
        node_id: int,
        *,
        root_id: int,
        query: QuantileQuery,
        ops_per_second: float = 1e8,
        k: int = DEFAULT_K,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        self._root_id = root_id
        self._query = query
        self._assigner = query.assigner()
        self._k = k
        self._open: dict[Window, KllSketch] = {}
        self._completed: set[Window] = set()
        self._events_ingested = 0
        self._late_events = 0

    @property
    def events_ingested(self) -> int:
        """Raw events accepted so far."""
        return self._events_ingested

    @property
    def late_events(self) -> int:
        """Events dropped because their window had already shipped."""
        return self._late_events

    def ingest(self, events: Sequence[Event], now: float) -> float:
        """Fold the batch into the owning window's sketch."""
        for event in events:
            window = self._assigner.assign(event.timestamp)[0]
            if window in self._completed:
                self._late_events += 1
                continue
            sketch = self._open.get(window)
            if sketch is None:
                sketch = KllSketch(self._k, seed=self.node_id)
                self._open[window] = sketch
            sketch.add(event.value)
        self._events_ingested += len(events)
        ops = (INGEST_OPS + _SKETCH_OPS_PER_EVENT) * len(events)
        return self.work(ops, now)

    def on_window_complete(self, window: Window, now: float) -> None:
        """Serialize the window's sketch and ship it upstream."""
        if window in self._completed:
            return
        self._completed.add(window)
        sketch = self._open.pop(window, None)
        pairs = sketch.to_weighted_tuples() if sketch is not None else ()
        finish = self.work(_MERGE_OPS_PER_ITEM * len(pairs), now)
        message = DigestMessage(
            sender=self.node_id,
            window=window,
            centroids=tuple((value, float(weight)) for value, weight in pairs),
            # Compaction may have dropped the extreme points from the
            # retained items; ship the sketch's exact extremes so the
            # root's q→0/q→1 answers stay exact.
            minimum=sketch.min if pairs else 0.0,
            maximum=sketch.max if pairs else 0.0,
        )
        self.send(message, self._root_id, finish)

    def on_message(self, message: Message, now: float) -> None:
        if isinstance(message, EventBatchMessage):
            finish = self.work(receive_ops(message.payload_bytes), now)
            self.ingest(message.events, finish)
            return
        raise AggregationError(
            f"KLL local node received unexpected {type(message).__name__}"
        )


class KllRootNode(SimulatedNode, BaselineRootMixin):
    """Root operator: merges per-node KLL sketches and answers."""

    def __init__(
        self,
        node_id: int,
        *,
        local_ids: Sequence[int],
        query: QuantileQuery,
        ops_per_second: float = 2e8,
        k: int = DEFAULT_K,
    ) -> None:
        SimulatedNode.__init__(self, node_id, ops_per_second=ops_per_second)
        BaselineRootMixin.__init__(self)
        self._local_ids = tuple(local_ids)
        self._query = query
        self._k = k
        self._sketches: dict[Window, dict[int, DigestMessage]] = {}

    @property
    def open_windows(self) -> int:
        """Windows still awaiting sketches."""
        return len(self._sketches)

    def on_message(self, message: Message, now: float) -> None:
        """Collect one sketch per local node, then merge and answer."""
        if not isinstance(message, DigestMessage):
            raise AggregationError(
                f"KLL root received unexpected {type(message).__name__}"
            )
        self.work(receive_ops(message.payload_bytes), now)
        sketches = self._sketches.setdefault(message.window, {})
        if message.sender in sketches:
            raise AggregationError(
                f"duplicate KLL sketch from node {message.sender} for "
                f"window {message.window}"
            )
        sketches[message.sender] = message
        if len(sketches) == len(self._local_ids):
            self._close(message.window, now)

    def _close(self, window: Window, now: float) -> None:
        messages = self._sketches.pop(window)
        total_items = sum(len(m.centroids) for m in messages.values())
        merged = KllSketch(self._k, seed=0)
        for incoming in messages.values():
            if incoming.centroids:
                merged.merge(
                    KllSketch.from_weighted_tuples(
                        tuple(
                            (value, int(weight))
                            for value, weight in incoming.centroids
                        ),
                        k=self._k,
                        minimum=incoming.minimum,
                        maximum=incoming.maximum,
                    )
                )
        finish = self.work(_MERGE_OPS_PER_ITEM * total_items, now)
        if self._tracer.enabled:
            self._tracer.record(
                "digest_merge",
                self.node_id,
                now,
                finish,
                window=window,
                items=total_items,
            )
        if merged.count == 0:
            self._emit(window, None, 0, finish)
            return
        self._emit(window, merged.quantile(self._query.q), merged.count, finish)
