"""q-digest baseline: the sensor-network sketch as a full system.

Shrivastava et al.'s q-digest is the second approximate competitor the
paper cites (Section 5).  Local nodes quantize values into a fixed integer
universe, maintain per-window q-digests, and ship the compressed tree
nodes; the root merges digests node-wise and answers with bounded rank
error.  Compared to the t-digest system it trades a coarser value grid for
deterministic worst-case error guarantees.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AggregationError
from repro.network.messages import EventBatchMessage, Message, QDigestMessage
from repro.network.simulator import INGEST_OPS, SimulatedNode, receive_ops
from repro.streaming.events import Event
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.sketches.qdigest import QDigest
from repro.baselines.base import BaselineRootMixin

__all__ = ["QDigestLocalNode", "QDigestRootNode", "DEFAULT_VALUE_RANGE"]

#: Value range quantized into the integer universe.  The synthetic DEBS
#: generator produces values in roughly [0, 2·mean·scale]; the default
#: covers scale rates up to 10 with headroom.
DEFAULT_VALUE_RANGE = (0.0, 1_000.0)

#: Tree depth: 2^14 buckets over the value range.
DEFAULT_DEPTH = 14

#: Compression factor k (digest size ~ 3k nodes).
DEFAULT_K = 256

#: Abstract CPU ops per event folded into a q-digest.
_DIGEST_OPS_PER_EVENT = 6.0

#: Abstract CPU ops per tree node during merge/compress at the root.
_MERGE_OPS_PER_NODE = 8.0


class QDigestLocalNode(SimulatedNode):
    """Local operator: quantizes events into per-window q-digests."""

    def __init__(
        self,
        node_id: int,
        *,
        root_id: int,
        query: QuantileQuery,
        ops_per_second: float = 1e8,
        k: int = DEFAULT_K,
        depth: int = DEFAULT_DEPTH,
        value_range: tuple[float, float] = DEFAULT_VALUE_RANGE,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        self._root_id = root_id
        self._query = query
        self._assigner = query.assigner()
        self._k = k
        self._depth = depth
        self._low, self._high = value_range
        self._buckets = (1 << depth) - 1
        self._open: dict[Window, QDigest] = {}
        self._completed: set[Window] = set()
        self._events_ingested = 0
        self._late_events = 0

    @property
    def events_ingested(self) -> int:
        """Raw events accepted so far."""
        return self._events_ingested

    @property
    def late_events(self) -> int:
        """Events dropped because their window had already shipped."""
        return self._late_events

    def _bucket(self, value: float) -> int:
        clamped = min(max(value, self._low), self._high)
        span = self._high - self._low
        return int((clamped - self._low) / span * self._buckets)

    def ingest(self, events: Sequence[Event], now: float) -> float:
        """Quantize and fold the batch into the owning window's digest."""
        for event in events:
            window = self._assigner.assign(event.timestamp)[0]
            if window in self._completed:
                self._late_events += 1
                continue
            digest = self._open.get(window)
            if digest is None:
                digest = QDigest(self._k, self._depth)
                self._open[window] = digest
            digest.add(self._bucket(event.value))
        self._events_ingested += len(events)
        ops = (INGEST_OPS + _DIGEST_OPS_PER_EVENT) * len(events)
        return self.work(ops, now)

    def on_window_complete(self, window: Window, now: float) -> None:
        """Serialize the window's digest and ship it upstream."""
        if window in self._completed:
            return
        self._completed.add(window)
        digest = self._open.pop(window, None)
        nodes = digest.to_node_tuples() if digest is not None else ()
        count = digest.n if digest is not None else 0
        finish = self.work(_MERGE_OPS_PER_NODE * len(nodes), now)
        message = QDigestMessage(
            sender=self.node_id, window=window, nodes=nodes, local_count=count
        )
        self.send(message, self._root_id, finish)

    def on_message(self, message: Message, now: float) -> None:
        if isinstance(message, EventBatchMessage):
            finish = self.work(receive_ops(message.payload_bytes), now)
            self.ingest(message.events, finish)
            return
        raise AggregationError(
            f"q-digest local node received unexpected {type(message).__name__}"
        )


class QDigestRootNode(SimulatedNode, BaselineRootMixin):
    """Root operator: merges q-digests and answers within the error bound."""

    def __init__(
        self,
        node_id: int,
        *,
        local_ids: Sequence[int],
        query: QuantileQuery,
        ops_per_second: float = 2e8,
        k: int = DEFAULT_K,
        depth: int = DEFAULT_DEPTH,
        value_range: tuple[float, float] = DEFAULT_VALUE_RANGE,
    ) -> None:
        SimulatedNode.__init__(self, node_id, ops_per_second=ops_per_second)
        BaselineRootMixin.__init__(self)
        self._local_ids = tuple(local_ids)
        self._query = query
        self._k = k
        self._depth = depth
        self._low, self._high = value_range
        self._buckets = (1 << depth) - 1
        self._digests: dict[Window, dict[int, QDigestMessage]] = {}

    @property
    def open_windows(self) -> int:
        """Windows still awaiting digests."""
        return len(self._digests)

    def on_message(self, message: Message, now: float) -> None:
        """Collect one digest per local node, then merge and answer."""
        if not isinstance(message, QDigestMessage):
            raise AggregationError(
                f"q-digest root received unexpected {type(message).__name__}"
            )
        self.work(receive_ops(message.payload_bytes), now)
        digests = self._digests.setdefault(message.window, {})
        if message.sender in digests:
            raise AggregationError(
                f"duplicate q-digest from node {message.sender} for window "
                f"{message.window}"
            )
        digests[message.sender] = message
        if len(digests) == len(self._local_ids):
            self._close(message.window, now)

    def _close(self, window: Window, now: float) -> None:
        messages = self._digests.pop(window)
        total_nodes = sum(len(m.nodes) for m in messages.values())
        merged = QDigest(self._k, self._depth)
        for incoming in messages.values():
            if incoming.nodes:
                merged.merge(
                    QDigest.from_node_tuples(
                        incoming.nodes, self._k, self._depth
                    )
                )
        finish = self.work(_MERGE_OPS_PER_NODE * total_nodes, now)
        if self._tracer.enabled:
            self._tracer.record(
                "digest_merge",
                self.node_id,
                now,
                finish,
                window=window,
                nodes=total_nodes,
            )
        if merged.n == 0:
            self._emit(window, None, 0, finish)
            return
        bucket = merged.quantile(self._query.q)
        span = self._high - self._low
        value = self._low + bucket / self._buckets * span
        self._emit(window, value, merged.n, finish)
