"""Shared machinery for baseline deployments.

Every system exposes the same run interface so the benchmark harness can
sweep systems generically: build an engine for a query and topology, feed
per-local-node streams, and read back a :class:`SystemReport` with window
records, network metrics and latency statistics.  Dema's own engine returns
a structurally identical report, so ``report.outcomes[i].value`` means the
same thing for every system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.network.driver import MS_PER_SECOND, BatchSourceDriver
from repro.network.metrics import LatencyStats, NetworkMetrics
from repro.network.simulator import SimulatedNode, Simulator
from repro.network.topology import Topology, TopologyConfig
from repro.obs.tracer import NOOP_TRACER
from repro.streaming.events import Event
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery

__all__ = [
    "WindowRecord",
    "SystemReport",
    "BaselineEngine",
    "build_system",
    "SYSTEM_NAMES",
]


@dataclass(frozen=True, slots=True)
class WindowRecord:
    """One global window's result, comparable across systems."""

    window: Window
    value: float | None
    global_window_size: int
    result_time: float

    @property
    def is_empty(self) -> bool:
        """Whether the global window held no events."""
        return self.global_window_size == 0


@dataclass
class SystemReport:
    """Uniform run report: window records plus network/latency metrics."""

    outcomes: list[WindowRecord]
    network: NetworkMetrics
    latency: LatencyStats
    final_time: float
    events_ingested: int

    @property
    def values(self) -> list[float | None]:
        """Per-window results in completion order."""
        return [record.value for record in self.outcomes]


class BaselineRootMixin:
    """Root-side record collection shared by all baseline roots."""

    def __init__(self) -> None:
        self._records: list[WindowRecord] = []

    @property
    def records(self) -> list[WindowRecord]:
        """Completed windows in completion order."""
        return list(self._records)

    def _emit(
        self,
        window: Window,
        value: float | None,
        size: int,
        result_time: float,
    ) -> None:
        tracer = getattr(self, "_tracer", NOOP_TRACER)
        if tracer.enabled:
            # End-to-end window span, mirroring the Dema root's "window"
            # span so per-window latency is comparable across systems.
            tracer.record(
                "window",
                self.node_id,  # type: ignore[attr-defined]
                window.end / MS_PER_SECOND,
                result_time,
                window=window,
                global_window_size=size,
            )
        self._records.append(
            WindowRecord(
                window=window,
                value=value,
                global_window_size=size,
                result_time=result_time,
            )
        )


class BaselineEngine:
    """Deploys one baseline's local/root operators and runs workloads."""

    def __init__(
        self,
        query: QuantileQuery,
        topology_config: TopologyConfig,
        *,
        root_factory: Callable[[int, float, Sequence[int], QuantileQuery], SimulatedNode],
        local_factory: Callable[[int, float, int, QuantileQuery], SimulatedNode],
        batch_size: int = 512,
        tracer=None,
    ) -> None:
        self._query = query
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._simulator = Simulator(tracer=self._tracer)
        local_ids = list(range(1, topology_config.n_local_nodes + 1))
        self._root_holder: list[SimulatedNode] = []

        def make_root(node_id: int, ops: float) -> SimulatedNode:
            root = root_factory(node_id, ops, local_ids, query)
            self._root_holder.append(root)
            return root

        def make_local(node_id: int, ops: float) -> SimulatedNode:
            return local_factory(node_id, ops, 0, query)

        self._topology = Topology.build(
            self._simulator,
            topology_config,
            root_factory=make_root,
            local_factory=make_local,
        )
        self._driver = BatchSourceDriver(self._simulator, batch_size=batch_size)
        if self._tracer.enabled:
            for node in self._simulator.nodes.values():
                node.set_tracer(self._tracer)

    @property
    def simulator(self) -> Simulator:
        """The underlying discrete-event engine."""
        return self._simulator

    @property
    def tracer(self):
        """The run's span tracer (the shared no-op tracer by default)."""
        return self._tracer

    @property
    def topology(self) -> Topology:
        """The wired deployment."""
        return self._topology

    @property
    def root(self) -> SimulatedNode:
        """The root operator."""
        return self._root_holder[0]

    def run(self, streams: Mapping[int, Sequence[Event]]) -> SystemReport:
        """Feed per-local-node streams and drain the simulation."""
        unknown = set(streams) - set(self._topology.local_ids)
        if unknown:
            raise ConfigurationError(
                f"streams reference unknown local nodes {sorted(unknown)}"
            )
        assigner = self._query.assigner()
        all_windows: set[Window] = set()
        for local_id in self._topology.local_ids:
            events = streams.get(local_id, ())
            operator = self._simulator.nodes[local_id]
            all_windows.update(self._driver.feed(operator, events, assigner))
        return self._finish(all_windows, allowed_lateness_ms=0)

    def run_unordered(
        self,
        arrivals: Mapping[int, Sequence[tuple[Event, int]]],
        *,
        allowed_lateness_ms: int = 0,
    ) -> SystemReport:
        """Like :meth:`run`, but events arrive with per-event delays.

        Arrivals later than their window's end plus the allowed lateness
        are dropped by the operators and counted as late.
        """
        unknown = set(arrivals) - set(self._topology.local_ids)
        if unknown:
            raise ConfigurationError(
                f"streams reference unknown local nodes {sorted(unknown)}"
            )
        assigner = self._query.assigner()
        all_windows: set[Window] = set()
        for local_id in self._topology.local_ids:
            pairs = arrivals.get(local_id, ())
            operator = self._simulator.nodes[local_id]
            all_windows.update(
                self._driver.feed_unordered(operator, pairs, assigner)
            )
        return self._finish(
            all_windows, allowed_lateness_ms=allowed_lateness_ms
        )

    def _finish(
        self, all_windows: set[Window], *, allowed_lateness_ms: int
    ) -> SystemReport:
        ordered = sorted(all_windows)
        for local_id in self._topology.local_ids:
            operator = self._simulator.nodes[local_id]
            self._driver.announce_windows(
                operator, ordered, allowed_lateness_ms=allowed_lateness_ms
            )

        final_time = self._simulator.run()
        records = self.root.records  # type: ignore[attr-defined]
        latency = LatencyStats()
        for record in records:
            latency.add(record.result_time - record.window.end / MS_PER_SECOND)
        if self._tracer.enabled:
            self._tracer.registry.counter(
                "windows_completed_total", "Windows that produced a result."
            ).inc(len(records))
            self._tracer.finalize(self._simulator, final_time)
        return SystemReport(
            outcomes=records,
            network=NetworkMetrics.capture(self._simulator),
            latency=latency,
            final_time=final_time,
            events_ingested=self._driver.scheduled_events,
        )


def build_system(
    name: str,
    query: QuantileQuery,
    topology_config: TopologyConfig,
    *,
    batch_size: int = 512,
    tracer=None,
):
    """Factory for any system by name: dema, scotty, desis, tdigest.

    Returns an engine with a uniform ``run(streams) -> report`` interface.
    Passing a :class:`~repro.obs.tracer.RecordingTracer` instruments the
    deployment; the default is the shared no-op tracer.

    Raises:
        ConfigurationError: On an unknown system name.
    """
    # Imported here to avoid circular imports at package load time.
    from repro.core.engine import DemaEngine
    from repro.baselines.scotty import ScottyLocalNode, ScottyRootNode
    from repro.baselines.desis import DesisLocalNode, DesisRootNode
    from repro.baselines.tdigest_system import TDigestLocalNode, TDigestRootNode
    from repro.baselines.qdigest_system import QDigestLocalNode, QDigestRootNode
    from repro.baselines.kll_system import KllLocalNode, KllRootNode

    if name == "dema":
        return DemaEngine(
            query, topology_config, batch_size=batch_size, tracer=tracer
        )
    if query.is_sliding:
        raise ConfigurationError(
            f"{name} supports tumbling windows only; sliding-window "
            "queries are a Dema extension"
        )
    pairs = {
        "scotty": (ScottyRootNode, ScottyLocalNode),
        "desis": (DesisRootNode, DesisLocalNode),
        "tdigest": (TDigestRootNode, TDigestLocalNode),
        "qdigest": (QDigestRootNode, QDigestLocalNode),
        "kll": (KllRootNode, KllLocalNode),
    }
    if name not in pairs:
        raise ConfigurationError(
            f"unknown system {name!r}; known: {SYSTEM_NAMES}"
        )
    root_cls, local_cls = pairs[name]
    return BaselineEngine(
        query,
        topology_config,
        root_factory=lambda nid, ops, locals_, q: root_cls(
            nid, local_ids=locals_, query=q, ops_per_second=ops
        ),
        local_factory=lambda nid, ops, root_id, q: local_cls(
            nid, root_id=root_id, query=q, ops_per_second=ops
        ),
        batch_size=batch_size,
        tracer=tracer,
    )


#: All systems the harness can sweep.
SYSTEM_NAMES = ("dema", "scotty", "desis", "tdigest", "qdigest", "kll")
