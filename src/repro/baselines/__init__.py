"""Baseline systems the paper compares Dema against (Section 4).

* **Scotty** — centralized aggregation: local nodes forward every raw event
  to the root, which sorts the full global window.  Serves as exact ground
  truth, as in the paper's accuracy experiment.
* **Desis (modified)** — decentralized sorting: local nodes sort their
  windows and ship full sorted runs; the root k-way merges.  Same network
  cost as Scotty but a cheaper root.
* **Tdigest** — local nodes build t-digests and ship only centroids; the
  root merges digests.  Fastest and lightest, but approximate.

All three deploy on the identical simulated topology through the common
:class:`~repro.baselines.base.BaselineEngine` machinery so every figure
compares systems under the same workload, links and CPU budgets.
"""

from repro.baselines.base import (
    BaselineEngine,
    SystemReport,
    WindowRecord,
    build_system,
    SYSTEM_NAMES,
)
from repro.baselines.scotty import ScottyLocalNode, ScottyRootNode
from repro.baselines.desis import DesisLocalNode, DesisRootNode
from repro.baselines.tdigest_system import TDigestLocalNode, TDigestRootNode
from repro.baselines.qdigest_system import QDigestLocalNode, QDigestRootNode
from repro.baselines.partial import (
    PartialAggLocalNode,
    PartialAggRootNode,
    build_partial_system,
)

__all__ = [
    "PartialAggLocalNode",
    "PartialAggRootNode",
    "build_partial_system",
    "BaselineEngine",
    "SystemReport",
    "WindowRecord",
    "build_system",
    "SYSTEM_NAMES",
    "ScottyLocalNode",
    "ScottyRootNode",
    "DesisLocalNode",
    "DesisRootNode",
    "TDigestLocalNode",
    "TDigestRootNode",
    "QDigestLocalNode",
    "QDigestRootNode",
]
