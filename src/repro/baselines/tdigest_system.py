"""t-digest baseline: decentralized approximate aggregation.

Local nodes fold their window's events into a t-digest and ship only the
centroids; the root merges the digests and answers the quantile from the
merged sketch.  Network cost is tiny and constant in the window size, CPU
cost per event is low — which is why the paper expects Tdigest to beat even
Dema on throughput — but the answer is approximate (Fig. 7b).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AggregationError
from repro.network.messages import DigestMessage, EventBatchMessage, Message
from repro.network.simulator import INGEST_OPS, SimulatedNode, receive_ops
from repro.streaming.events import Event
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.sketches.tdigest import DEFAULT_COMPRESSION, TDigest
from repro.baselines.base import BaselineRootMixin

__all__ = ["TDigestLocalNode", "TDigestRootNode"]

#: Abstract CPU ops per event folded into a digest (buffered insert plus an
#: amortized share of the periodic compression pass).
_DIGEST_OPS_PER_EVENT = 8.0

#: Abstract CPU ops per centroid when merging digests at the root.
_MERGE_OPS_PER_CENTROID = 16.0


class TDigestLocalNode(SimulatedNode):
    """Local operator: digests each window, ships centroids at window end."""

    def __init__(
        self,
        node_id: int,
        *,
        root_id: int,
        query: QuantileQuery,
        ops_per_second: float = 1e8,
        compression: float = DEFAULT_COMPRESSION,
    ) -> None:
        super().__init__(node_id, ops_per_second=ops_per_second)
        self._root_id = root_id
        self._query = query
        self._assigner = query.assigner()
        self._compression = compression
        self._open: dict[Window, TDigest] = {}
        self._counts: dict[Window, int] = {}
        self._completed: set[Window] = set()
        self._events_ingested = 0
        self._late_events = 0

    @property
    def events_ingested(self) -> int:
        """Raw events accepted so far."""
        return self._events_ingested

    @property
    def late_events(self) -> int:
        """Events dropped because their window had already shipped."""
        return self._late_events

    def ingest(self, events: Sequence[Event], now: float) -> float:
        """Fold the batch into the owning window's digest."""
        for event in events:
            window = self._assigner.assign(event.timestamp)[0]
            if window in self._completed:
                self._late_events += 1
                continue
            digest = self._open.get(window)
            if digest is None:
                digest = TDigest(self._compression)
                self._open[window] = digest
                self._counts[window] = 0
            digest.add(event.value)
            self._counts[window] += 1
        self._events_ingested += len(events)
        ops = (INGEST_OPS + _DIGEST_OPS_PER_EVENT) * len(events)
        return self.work(ops, now)

    def on_window_complete(self, window: Window, now: float) -> None:
        """Serialize the window's digest and ship it upstream."""
        if window in self._completed:
            return
        self._completed.add(window)
        digest = self._open.pop(window, None)
        self._counts.pop(window, None)
        centroids = digest.to_centroid_tuples() if digest is not None else ()
        finish = self.work(_MERGE_OPS_PER_CENTROID * len(centroids), now)
        message = DigestMessage(
            sender=self.node_id,
            window=window,
            centroids=centroids,
            # Ship the exact extremes: tail centroid means sit inside the
            # data range, so without these the root's extreme quantiles
            # flatten toward the tail means.
            minimum=digest.min if centroids else 0.0,
            maximum=digest.max if centroids else 0.0,
        )
        self.send(message, self._root_id, finish)

    def on_message(self, message: Message, now: float) -> None:
        if isinstance(message, EventBatchMessage):
            finish = self.work(receive_ops(message.payload_bytes), now)
            self.ingest(message.events, finish)
            return
        raise AggregationError(
            f"t-digest local node received unexpected {type(message).__name__}"
        )


class TDigestRootNode(SimulatedNode, BaselineRootMixin):
    """Root operator: merges per-node digests and answers approximately."""

    def __init__(
        self,
        node_id: int,
        *,
        local_ids: Sequence[int],
        query: QuantileQuery,
        ops_per_second: float = 2e8,
        compression: float = DEFAULT_COMPRESSION,
    ) -> None:
        SimulatedNode.__init__(self, node_id, ops_per_second=ops_per_second)
        BaselineRootMixin.__init__(self)
        self._local_ids = tuple(local_ids)
        self._query = query
        self._compression = compression
        self._digests: dict[Window, dict[int, DigestMessage]] = {}

    @property
    def open_windows(self) -> int:
        """Windows still awaiting digests."""
        return len(self._digests)

    def on_message(self, message: Message, now: float) -> None:
        """Collect one digest per local node, then merge and answer."""
        if not isinstance(message, DigestMessage):
            raise AggregationError(
                f"t-digest root received unexpected {type(message).__name__}"
            )
        self.work(receive_ops(message.payload_bytes), now)
        digests = self._digests.setdefault(message.window, {})
        if message.sender in digests:
            raise AggregationError(
                f"duplicate digest from node {message.sender} for window "
                f"{message.window}"
            )
        digests[message.sender] = message
        if len(digests) == len(self._local_ids):
            self._close(message.window, now)

    def _close(self, window: Window, now: float) -> None:
        messages = self._digests.pop(window)
        total_centroids = sum(len(m.centroids) for m in messages.values())
        merged = TDigest(self._compression)
        for incoming in messages.values():
            if incoming.centroids:
                merged.merge(
                    TDigest.from_centroid_tuples(
                        incoming.centroids,
                        self._compression,
                        minimum=incoming.minimum,
                        maximum=incoming.maximum,
                    )
                )
        finish = self.work(_MERGE_OPS_PER_CENTROID * total_centroids, now)
        if self._tracer.enabled:
            self._tracer.record(
                "digest_merge",
                self.node_id,
                now,
                finish,
                window=window,
                centroids=total_centroids,
            )
        if merged.count == 0:
            self._emit(window, None, 0, finish)
            return
        value = merged.quantile(self._query.q)
        self._emit(window, value, int(merged.count), finish)
