"""Windowed aggregation operators over event streams.

The operator keeps per-window partial state, closes windows as the watermark
passes their end, and emits one result per closed window.  Decomposable
functions keep O(1)-sized partials; non-decomposable functions buffer values
— the asymmetry that motivates Dema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import WindowError
from repro.streaming.aggregates import AggregationFunction
from repro.streaming.events import Event
from repro.streaming.time import Watermark
from repro.streaming.windows import TumblingWindows, Window, WindowAssigner

__all__ = ["WindowResult", "KeyedWindowState", "WindowedAggregationOperator"]


@dataclass(frozen=True, slots=True)
class WindowResult:
    """The aggregate emitted for one closed window."""

    window: Window
    value: float
    count: int


class KeyedWindowState:
    """Per-window partial aggregates plus event counts.

    State is keyed by :class:`Window`; the operator owns exactly one instance.
    """

    def __init__(self, function: AggregationFunction) -> None:
        self._function = function
        self._partials: dict[Window, Any] = {}
        self._counts: dict[Window, int] = {}

    def __len__(self) -> int:
        return len(self._partials)

    @property
    def open_windows(self) -> list[Window]:
        """Windows with buffered state, in chronological order."""
        return sorted(self._partials)

    def add(self, window: Window, value: float) -> None:
        """Fold one value into the partial aggregate of ``window``."""
        lifted = self._function.lift(value)
        if window in self._partials:
            self._partials[window] = self._function.combine(
                self._partials[window], lifted
            )
            self._counts[window] += 1
        else:
            self._partials[window] = lifted
            self._counts[window] = 1

    def close(self, window: Window) -> WindowResult:
        """Finalize ``window`` and drop its state.

        Raises:
            WindowError: If the window holds no state.
        """
        if window not in self._partials:
            raise WindowError(f"no state for window {window}")
        partial = self._partials.pop(window)
        count = self._counts.pop(window)
        return WindowResult(window, self._function.lower(partial), count)

    def add_many(self, window: Window, values: list[float]) -> None:
        """Fold a batch of values into ``window`` in arrival order.

        Exactly equivalent to calling :meth:`add` per value (the per-window
        fold order is preserved, so even non-commutative float folds give
        bit-identical partials), but pays the state-dict lookups once per
        batch instead of once per event.
        """
        if not values:
            return
        lift = self._function.lift
        combine = self._function.combine
        partials = self._partials
        if window in partials:
            partial = partials[window]
            rest = values
        else:
            partial = lift(values[0])
            rest = values[1:]
        for value in rest:
            partial = combine(partial, lift(value))
        partials[window] = partial
        self._counts[window] = self._counts.get(window, 0) + len(values)

    def closeable(self, watermark: Watermark) -> list[Window]:
        """Windows whose end the watermark has reached.

        A window ``[start, end)`` closes once ``watermark.time >= end``: a
        watermark at time ``t`` promises no event with timestamp ``<= t``
        is still in flight, and the window's last admissible timestamp is
        ``end - 1`` — the same sealing predicate the Dema local/root nodes
        use, so both layers close windows on the same watermark tick.
        """
        return sorted(w for w in self._partials if w.end <= watermark.time)


class WindowedAggregationOperator:
    """Assigns events to windows, aggregates, and fires on watermarks.

    This is the generic SPE operator; Dema replaces it at local and root
    nodes with the operators in :mod:`repro.core`, while the baselines reuse
    it directly.
    """

    def __init__(
        self,
        assigner: WindowAssigner,
        function: AggregationFunction,
        *,
        on_result: Callable[[WindowResult], None] | None = None,
    ) -> None:
        self._assigner = assigner
        self._function = function
        self._state = KeyedWindowState(function)
        self._on_result = on_result
        self._results: list[WindowResult] = []
        self._late_events = 0

    @property
    def results(self) -> list[WindowResult]:
        """Results emitted so far, in emission order."""
        return list(self._results)

    @property
    def late_events(self) -> int:
        """Events dropped because their window had already closed."""
        return self._late_events

    @property
    def open_window_count(self) -> int:
        """Number of windows currently holding state."""
        return len(self._state)

    def process(self, event: Event) -> None:
        """Route one event into all windows it belongs to."""
        windows = self._assigner.assign_event(event)
        if not windows:
            self._late_events += 1
            return
        for window in windows:
            self._state.add(window, event.value)

    def process_all(self, events: Iterable[Event]) -> None:
        """Route a batch of events.

        Tumbling assignment is folded per window — events are grouped by
        their single target window and folded with one state lookup per
        group — which is exactly equivalent to per-event :meth:`process`
        (per-window fold order is arrival order either way).
        """
        assigner = self._assigner
        if not isinstance(assigner, TumblingWindows):
            for event in events:
                self.process(event)
            return
        length = assigner.length
        buckets: dict[int, list[float]] = {}
        for event in events:
            start = event.timestamp - event.timestamp % length
            bucket = buckets.get(start)
            if bucket is None:
                bucket = buckets[start] = []
            bucket.append(event.value)
        for start, values in buckets.items():
            self._state.add_many(Window(start, start + length), values)

    def advance_watermark(self, watermark: Watermark) -> list[WindowResult]:
        """Close every window the watermark has passed and emit results."""
        emitted = []
        for window in self._state.closeable(watermark):
            result = self._state.close(window)
            self._results.append(result)
            emitted.append(result)
            if self._on_result is not None:
                self._on_result(result)
        return emitted

    def flush(self) -> list[WindowResult]:
        """Force-close every open window (end of stream)."""
        emitted = []
        for window in self._state.open_windows:
            result = self._state.close(window)
            self._results.append(result)
            emitted.append(result)
            if self._on_result is not None:
                self._on_result(result)
        return emitted
