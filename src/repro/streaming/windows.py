"""Window types from the Dataflow model: tumbling, sliding, session.

The paper (Section 2.1) follows Akidau et al.'s classification.  A window
assigner maps an event timestamp to the set of windows the event belongs to.
Tumbling windows are the special case of sliding windows whose step equals
their length; Dema's evaluation uses time-based tumbling windows throughout,
but the substrate implements all three types so the baselines and extensions
can be exercised on the full window algebra.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError, WindowError
from repro.streaming.events import Event

__all__ = [
    "Window",
    "WindowAssigner",
    "TumblingWindows",
    "SlidingWindows",
    "SessionWindows",
]


@dataclass(frozen=True, slots=True, order=True)
class Window:
    """A half-open event-time interval ``[start, end)``.

    Windows compare by ``(start, end)`` so sorted containers keep them in
    chronological order.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise WindowError(
                f"window end ({self.end}) must be after start ({self.start})"
            )

    @property
    def length(self) -> int:
        """Duration of the window in event-time units."""
        return self.end - self.start

    def contains(self, timestamp: int) -> bool:
        """Whether ``timestamp`` falls inside the half-open interval."""
        return self.start <= timestamp < self.end

    def intersects(self, other: "Window") -> bool:
        """Whether the two half-open intervals share any instant."""
        return self.start < other.end and other.start < self.end

    def merge(self, other: "Window") -> "Window":
        """Return the smallest window covering both (used by sessions)."""
        return Window(min(self.start, other.start), max(self.end, other.end))


class WindowAssigner(ABC):
    """Maps event timestamps to the windows the event belongs to."""

    @abstractmethod
    def assign(self, timestamp: int) -> Sequence[Window]:
        """Return the windows containing ``timestamp``, earliest first."""

    def assign_event(self, event: Event) -> Sequence[Window]:
        """Assign an event by its event-time timestamp."""
        return self.assign(event.timestamp)

    @property
    def is_merging(self) -> bool:
        """Whether assigned windows may later merge (session windows)."""
        return False


class TumblingWindows(WindowAssigner):
    """Fixed-length, non-overlapping windows aligned to the epoch.

    An event with timestamp ``t`` belongs to exactly one window,
    ``[floor(t / length) * length, ... + length)``.
    """

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ConfigurationError(f"window length must be > 0, got {length}")
        self._length = length

    @property
    def length(self) -> int:
        """Window duration in event-time units."""
        return self._length

    def assign(self, timestamp: int) -> Sequence[Window]:
        start = (timestamp // self._length) * self._length
        return (Window(start, start + self._length),)

    def window_for(self, timestamp: int) -> Window:
        """Return the single window containing ``timestamp``."""
        return self.assign(timestamp)[0]

    def __repr__(self) -> str:
        return f"TumblingWindows(length={self._length})"


class SlidingWindows(WindowAssigner):
    """Fixed-length windows that start every ``step`` time units.

    An event belongs to ``ceil(length / step)`` windows when ``step`` divides
    ``length``, and up to that many otherwise.  With ``step == length`` this
    degenerates to tumbling windows (asserted in tests).
    """

    def __init__(self, length: int, step: int) -> None:
        if length <= 0:
            raise ConfigurationError(f"window length must be > 0, got {length}")
        if step <= 0:
            raise ConfigurationError(f"window step must be > 0, got {step}")
        if step > length:
            raise ConfigurationError(
                f"step ({step}) larger than length ({length}) would drop "
                "events; use tumbling windows with gaps instead"
            )
        self._length = length
        self._step = step

    @property
    def length(self) -> int:
        """Window duration in event-time units."""
        return self._length

    @property
    def step(self) -> int:
        """Distance between consecutive window starts."""
        return self._step

    def assign(self, timestamp: int) -> Sequence[Window]:
        last_start = (timestamp // self._step) * self._step
        windows = []
        start = last_start
        while start > timestamp - self._length:
            windows.append(Window(start, start + self._length))
            start -= self._step
        windows.reverse()
        return tuple(windows)

    def __repr__(self) -> str:
        return f"SlidingWindows(length={self._length}, step={self._step})"


class SessionWindows(WindowAssigner):
    """Activity-based windows that close after a gap of inactivity.

    Each event initially gets its own proto-window ``[t, t + gap)``;
    overlapping proto-windows merge.  :meth:`merge_windows` performs the
    merge over a batch of assigned windows.
    """

    def __init__(self, gap: int) -> None:
        if gap <= 0:
            raise ConfigurationError(f"session gap must be > 0, got {gap}")
        self._gap = gap

    @property
    def gap(self) -> int:
        """Inactivity gap that closes a session."""
        return self._gap

    @property
    def is_merging(self) -> bool:
        return True

    def assign(self, timestamp: int) -> Sequence[Window]:
        return (Window(timestamp, timestamp + self._gap),)

    def merge_windows(self, windows: Iterable[Window]) -> list[Window]:
        """Merge overlapping proto-windows into maximal sessions.

        Args:
            windows: Proto-windows in any order.

        Returns:
            Disjoint session windows in chronological order.
        """
        ordered = sorted(windows)
        if not ordered:
            return []
        merged = [ordered[0]]
        for window in ordered[1:]:
            if window.intersects(merged[-1]) or window.start == merged[-1].end:
                merged[-1] = merged[-1].merge(window)
            else:
                merged.append(window)
        return merged

    def sessions_for_events(self, events: Iterable[Event]) -> list[Window]:
        """Compute the session windows covering ``events``."""
        proto = []
        for event in events:
            proto.extend(self.assign_event(event))
        return self.merge_windows(proto)

    def __repr__(self) -> str:
        return f"SessionWindows(gap={self._gap})"
