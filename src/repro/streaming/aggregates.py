"""Aggregation functions and their decomposability classification.

The paper (Section 2.2) adopts the taxonomy of Jesus et al.:

* **self-decomposable** — partial aggregates combine with the function
  itself (sum, count, min, max);
* **decomposable** — expressible through self-decomposable partials plus a
  final transformation (average, variance, range);
* **non-decomposable** — exact computation needs the whole dataset (median,
  quantile, mode, distinct count).

Every function is modelled with the lift / combine / lower pattern used by
slicing aggregators such as Scotty and Disco: ``lift`` turns one value into a
partial aggregate, ``combine`` merges two partials, and ``lower`` extracts the
final answer.  For non-decomposable functions the partial aggregate is the
multiset of values itself, which is precisely why shipping partials to a root
node is as expensive as shipping raw data — the gap Dema closes.
"""

from __future__ import annotations

import enum
import math
from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import AggregationError, ConfigurationError

__all__ = [
    "AggregationClass",
    "AggregationFunction",
    "classify",
    "get_function",
    "list_functions",
    "quantile_rank",
    "exact_quantile",
    "SumFunction",
    "CountFunction",
    "MinFunction",
    "MaxFunction",
    "AverageFunction",
    "VarianceFunction",
    "RangeFunction",
    "MedianFunction",
    "QuantileFunction",
    "ModeFunction",
    "DistinctCountFunction",
]


class AggregationClass(enum.Enum):
    """Decomposability classes of Jesus et al. (Section 2.2)."""

    SELF_DECOMPOSABLE = "self-decomposable"
    DECOMPOSABLE = "decomposable"
    NON_DECOMPOSABLE = "non-decomposable"


def quantile_rank(q: float, n: int) -> int:
    """Rank (1-based) of the ``q``-quantile in a dataset of ``n`` elements.

    The paper defines ``Pos(q) = ceil(q * l_G)`` for ``q`` in ``(0, 1]``
    (Section 3.1, correctness discussion).

    Raises:
        AggregationError: If ``q`` is outside ``(0, 1]`` or ``n <= 0``.
    """
    if not 0.0 < q <= 1.0:
        raise AggregationError(f"quantile q must be in (0, 1], got {q}")
    if n <= 0:
        raise AggregationError(f"dataset size must be > 0, got {n}")
    return math.ceil(q * n)


def exact_quantile(values: Iterable[float], q: float) -> float:
    """Exact ``q``-quantile under the paper's rank definition.

    Sorts the values and returns the element at rank ``ceil(q * n)``.  This
    is the ground-truth oracle the whole test suite compares against.
    """
    ordered = sorted(values)
    rank = quantile_rank(q, len(ordered))
    return ordered[rank - 1]


class AggregationFunction(ABC):
    """A window aggregation in lift / combine / lower form."""

    #: Human-readable function name, unique within the registry.
    name: str = ""
    #: Decomposability class of the function.
    aggregation_class: AggregationClass

    @abstractmethod
    def lift(self, value: float) -> Any:
        """Turn a single input value into a partial aggregate."""

    @abstractmethod
    def combine(self, left: Any, right: Any) -> Any:
        """Merge two partial aggregates into one."""

    @abstractmethod
    def lower(self, partial: Any) -> float:
        """Extract the final result from a partial aggregate."""

    def aggregate(self, values: Iterable[float]) -> float:
        """Aggregate a full collection of values (lift + combine + lower)."""
        partial = None
        for value in values:
            lifted = self.lift(value)
            partial = lifted if partial is None else self.combine(partial, lifted)
        if partial is None:
            raise AggregationError(f"{self.name} of an empty window is undefined")
        return self.lower(partial)

    @property
    def is_decomposable(self) -> bool:
        """Whether partial aggregation at local nodes yields exact results."""
        return self.aggregation_class is not AggregationClass.NON_DECOMPOSABLE

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SumFunction(AggregationFunction):
    """Sum — self-decomposable."""

    name = "sum"
    aggregation_class = AggregationClass.SELF_DECOMPOSABLE

    def lift(self, value: float) -> float:
        return value

    def combine(self, left: float, right: float) -> float:
        return left + right

    def lower(self, partial: float) -> float:
        return partial


class CountFunction(AggregationFunction):
    """Count — self-decomposable."""

    name = "count"
    aggregation_class = AggregationClass.SELF_DECOMPOSABLE

    def lift(self, value: float) -> int:
        return 1

    def combine(self, left: int, right: int) -> int:
        return left + right

    def lower(self, partial: int) -> float:
        return float(partial)


class MinFunction(AggregationFunction):
    """Minimum — self-decomposable."""

    name = "min"
    aggregation_class = AggregationClass.SELF_DECOMPOSABLE

    def lift(self, value: float) -> float:
        return value

    def combine(self, left: float, right: float) -> float:
        return left if left <= right else right

    def lower(self, partial: float) -> float:
        return partial


class MaxFunction(AggregationFunction):
    """Maximum — self-decomposable."""

    name = "max"
    aggregation_class = AggregationClass.SELF_DECOMPOSABLE

    def lift(self, value: float) -> float:
        return value

    def combine(self, left: float, right: float) -> float:
        return left if left >= right else right

    def lower(self, partial: float) -> float:
        return partial


@dataclass(frozen=True, slots=True)
class _Moments:
    """Partial aggregate carrying count, sum and sum of squares."""

    count: int
    total: float
    total_sq: float


class AverageFunction(AggregationFunction):
    """Arithmetic mean — decomposable via (count, sum)."""

    name = "average"
    aggregation_class = AggregationClass.DECOMPOSABLE

    def lift(self, value: float) -> _Moments:
        return _Moments(1, value, value * value)

    def combine(self, left: _Moments, right: _Moments) -> _Moments:
        return _Moments(
            left.count + right.count,
            left.total + right.total,
            left.total_sq + right.total_sq,
        )

    def lower(self, partial: _Moments) -> float:
        return partial.total / partial.count


class VarianceFunction(AggregationFunction):
    """Population variance — decomposable via (count, sum, sum of squares)."""

    name = "variance"
    aggregation_class = AggregationClass.DECOMPOSABLE

    def lift(self, value: float) -> _Moments:
        return _Moments(1, value, value * value)

    def combine(self, left: _Moments, right: _Moments) -> _Moments:
        return _Moments(
            left.count + right.count,
            left.total + right.total,
            left.total_sq + right.total_sq,
        )

    def lower(self, partial: _Moments) -> float:
        mean = partial.total / partial.count
        variance = partial.total_sq / partial.count - mean * mean
        # Guard against tiny negative values from floating-point cancellation.
        return max(variance, 0.0)


class RangeFunction(AggregationFunction):
    """Max − min — decomposable via (min, max)."""

    name = "range"
    aggregation_class = AggregationClass.DECOMPOSABLE

    def lift(self, value: float) -> tuple[float, float]:
        return (value, value)

    def combine(
        self, left: tuple[float, float], right: tuple[float, float]
    ) -> tuple[float, float]:
        return (min(left[0], right[0]), max(left[1], right[1]))

    def lower(self, partial: tuple[float, float]) -> float:
        return partial[1] - partial[0]


class QuantileFunction(AggregationFunction):
    """Exact ``q``-quantile — non-decomposable.

    The partial aggregate is the full list of values: no smaller exact
    summary exists in general, which is the premise of the paper.
    """

    name = "quantile"
    aggregation_class = AggregationClass.NON_DECOMPOSABLE

    def __init__(self, q: float) -> None:
        if not 0.0 < q <= 1.0:
            raise ConfigurationError(f"quantile q must be in (0, 1], got {q}")
        self._q = q

    @property
    def q(self) -> float:
        """The requested quantile, in ``(0, 1]``."""
        return self._q

    def lift(self, value: float) -> list[float]:
        return [value]

    def combine(self, left: list[float], right: list[float]) -> list[float]:
        return left + right

    def lower(self, partial: list[float]) -> float:
        return exact_quantile(partial, self._q)

    def __repr__(self) -> str:
        return f"QuantileFunction(q={self._q})"


class MedianFunction(QuantileFunction):
    """Exact median — the 50 % quantile (non-decomposable)."""

    name = "median"

    def __init__(self) -> None:
        super().__init__(0.5)

    def __repr__(self) -> str:
        return "MedianFunction()"


class ModeFunction(AggregationFunction):
    """Most frequent value — non-decomposable.

    Ties break toward the smallest value so results are deterministic.
    """

    name = "mode"
    aggregation_class = AggregationClass.NON_DECOMPOSABLE

    def lift(self, value: float) -> Counter:
        return Counter({value: 1})

    def combine(self, left: Counter, right: Counter) -> Counter:
        merged = Counter(left)
        merged.update(right)
        return merged

    def lower(self, partial: Counter) -> float:
        best_count = max(partial.values())
        return min(v for v, c in partial.items() if c == best_count)


class DistinctCountFunction(AggregationFunction):
    """Number of distinct values — non-decomposable."""

    name = "distinct_count"
    aggregation_class = AggregationClass.NON_DECOMPOSABLE

    def lift(self, value: float) -> set[float]:
        return {value}

    def combine(self, left: set[float], right: set[float]) -> set[float]:
        return left | right

    def lower(self, partial: set[float]) -> float:
        return float(len(partial))


_REGISTRY: dict[str, type[AggregationFunction]] = {
    cls.name: cls
    for cls in (
        SumFunction,
        CountFunction,
        MinFunction,
        MaxFunction,
        AverageFunction,
        VarianceFunction,
        RangeFunction,
        MedianFunction,
        ModeFunction,
        DistinctCountFunction,
    )
}


def get_function(name: str, **kwargs: float) -> AggregationFunction:
    """Instantiate a registered aggregation function by name.

    ``get_function("quantile", q=0.25)`` builds a quantile; all other names
    take no arguments.

    Raises:
        ConfigurationError: On an unknown name or bad arguments.
    """
    if name == "quantile":
        if set(kwargs) != {"q"}:
            raise ConfigurationError("quantile requires exactly the 'q' argument")
        return QuantileFunction(kwargs["q"])
    if kwargs:
        raise ConfigurationError(f"{name} takes no arguments, got {kwargs}")
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown aggregation function {name!r}; known: {list_functions()}"
        ) from None


def list_functions() -> list[str]:
    """Names of all registered aggregation functions (plus 'quantile')."""
    return sorted(_REGISTRY) + ["quantile"]


def classify(function: AggregationFunction) -> AggregationClass:
    """Return the decomposability class of ``function``."""
    return function.aggregation_class
