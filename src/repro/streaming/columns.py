"""Columnar event batches: the live hot path's data layout.

An :class:`EventColumns` holds one batch of events as parallel columns
(value f64, timestamp u32, node_id u32, seq u32) instead of per-event
:class:`~repro.streaming.events.Event` objects.  It is built zero-copy
straight off the wire (the 20-byte-stride event array of an event-batch
frame *is* the columnar layout), flows through the stream and local
servers into :class:`~repro.core.sorted_window.SortedLocalWindow`, and is
sorted, merged, sliced and re-encoded without materializing objects.
Events only become :class:`Event` instances at the columnar boundary —
element access, iteration, and the operators' cold fallback paths — which
is exactly where the hot-path lint allows construction.

Two interchangeable backends sit behind one interface:

``numpy``
    Columns are views into one structured ndarray with the exact wire
    dtype (:data:`EVENT_DTYPE`), so decode is ``np.frombuffer`` and encode
    is ``tobytes`` — no per-event work at all.  Sorting uses a stable
    ``np.lexsort`` over the total-order key.
``python``
    Columns are :mod:`array` arrays; sorting mirrors the object path's
    Timsort comparisons index-by-index.  The fallback when numpy is
    unavailable, and the reference the bit-identity tests compare against.

**Bit-identity contract.**  Every operation here produces *exactly* the
sequence the object path produces:

* The total-order key ``(value, node_id, seq)`` is strict (node_id/seq
  pairs are unique), so for NaN-free data any correct sort yields the one
  sorted permutation, and a *stable* sort over ``run ++ buffer`` equals
  the object path's "sort buffer, then merge with run priority on ties"
  even if keys ever collide.  ``np.lexsort`` is stable, so the numpy
  backend qualifies.
* NaN values break comparison sorts deterministically-but-arbitrarily;
  ``np.lexsort`` would instead push NaNs last, diverging from the object
  path.  Batches containing NaN therefore fall back to a comparison
  mirror — index sort with the same key tuples plus the same two-pointer
  merge — which performs the identical comparisons in the identical
  order, reproducing the object path's permutation bit for bit.

Select the backend with ``REPRO_COLUMNS_BACKEND=python|numpy`` (read at
import) or :func:`set_backend` at runtime; the choice affects only where
new batches are constructed, never their observable contents.
"""

from __future__ import annotations

import os
import struct
import sys
from array import array
from typing import Iterable, Iterator, Sequence

from repro.errors import CodecError, ConfigurationError
from repro.runtime import wire
from repro.streaming.events import Event

try:  # pragma: no cover - the image bakes numpy in; the gate is for ports
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "EVENT_DTYPE",
    "EventColumns",
    "concat_columns",
    "get_backend",
    "merge_runs",
    "set_backend",
]

#: The wire layout of one event as a numpy structured dtype.  Packed (no
#: padding), little-endian — ``frombuffer`` of an event-batch payload and
#: ``tobytes`` of a batch are byte-identical to ``struct`` with
#: :data:`repro.runtime.wire.EVENT`.
EVENT_DTYPE = (
    _np.dtype(
        [
            ("value", "<f8"),
            ("timestamp", "<u4"),
            ("node_id", "<u4"),
            ("seq", "<u4"),
        ]
    )
    if _np is not None
    else None
)
if EVENT_DTYPE is not None:
    assert EVENT_DTYPE.itemsize == wire.EVENT_WIRE_BYTES

_BACKENDS = ("numpy", "python")


def _default_backend() -> str:
    requested = os.environ.get("REPRO_COLUMNS_BACKEND", "").strip().lower()
    if requested == "python":
        return "python"
    return "numpy" if _np is not None else "python"


_backend = _default_backend()


def get_backend() -> str:
    """The backend new batches are built with (``numpy`` or ``python``)."""
    return _backend


def set_backend(name: str) -> str:
    """Select the construction backend; returns the previous one.

    Raises:
        ConfigurationError: For an unknown name, or ``numpy`` when numpy
            is not importable.
    """
    global _backend
    if name not in _BACKENDS:
        raise ConfigurationError(
            f"unknown columns backend {name!r}; expected one of {_BACKENDS}"
        )
    if name == "numpy" and _np is None:
        raise ConfigurationError("numpy backend requested but numpy is absent")
    previous = _backend
    _backend = name
    return previous


def _batch_struct(n: int) -> struct.Struct:
    return struct.Struct("<" + "dIII" * n)


class EventColumns:
    """One immutable batch of events in columnar form.

    Behaves as a read-only :class:`Sequence` of :class:`Event` — ``len``,
    integer indexing (materializes one event), slicing with any step
    (returns columns), iteration, and ``==`` against any event sequence —
    while exposing the columns themselves to vectorized consumers.
    """

    __slots__ = ("_arr", "_cols")

    def __init__(self, arr=None, cols=None) -> None:
        # Exactly one representation: a structured ndarray (numpy backend)
        # or a (values, timestamps, node_ids, seqs) tuple of stdlib arrays.
        self._arr = arr
        self._cols = cols

    # -- construction ---------------------------------------------------

    @classmethod
    def from_wire(
        cls, raw: "bytes | memoryview", count: "int | None" = None
    ) -> "EventColumns":
        """Zero-copy view over a wire event array (``n`` × 20 bytes).

        Raises:
            CodecError: If the byte length is not a multiple of the
                20-byte event stride, or disagrees with ``count``.
        """
        stride = wire.EVENT_WIRE_BYTES
        n_bytes = len(raw)
        if n_bytes % stride:
            raise CodecError(
                f"event array of {n_bytes} bytes is not a multiple of the "
                f"{stride}-byte event stride"
            )
        if count is not None and n_bytes != count * stride:
            raise CodecError(
                f"event array of {n_bytes} bytes does not hold the "
                f"announced {count} events ({count * stride} bytes)"
            )
        if _backend == "numpy":
            return cls(arr=_np.frombuffer(raw, dtype=EVENT_DTYPE))
        values = array("d")
        timestamps = array("I")
        node_ids = array("I")
        seqs = array("I")
        for value, timestamp, node_id, seq in wire.EVENT.iter_unpack(raw):
            values.append(value)
            timestamps.append(timestamp)
            node_ids.append(node_id)
            seqs.append(seq)
        return cls(cols=(values, timestamps, node_ids, seqs))

    @classmethod
    def from_arrays(
        cls, values, timestamps, node_ids, seqs=None
    ) -> "EventColumns":
        """Build a batch from numpy arrays (the generator's fast path).

        ``node_ids`` may be a scalar (broadcast); ``seqs`` defaults to
        ``0..n-1``.  Values outside the wire ranges are the caller's bug,
        exactly as they are on the object encode path.
        """
        if _np is None:
            raise ConfigurationError(
                "EventColumns.from_arrays needs numpy; build from events "
                "or wire bytes instead"
            )
        n = len(values)
        arr = _np.empty(n, dtype=EVENT_DTYPE)
        arr["value"] = values
        arr["timestamp"] = timestamps
        arr["node_id"] = node_ids
        arr["seq"] = _np.arange(n, dtype="<u4") if seqs is None else seqs
        if _backend == "numpy":
            return cls(arr=arr)
        if sys.byteorder == "little":
            cols = (array("d"), array("I"), array("I"), array("I"))
            for col, name in zip(
                cols, ("value", "timestamp", "node_id", "seq")
            ):
                col.frombytes(_np.ascontiguousarray(arr[name]).tobytes())
            return cls(cols=cols)
        return cls.from_wire(arr.tobytes())

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "EventColumns":
        """Build a batch from event objects (tests and cold paths)."""
        events = list(events)
        packed = _batch_struct(len(events)).pack(
            *(
                field
                for ev in events
                for field in (ev.value, ev.timestamp, ev.node_id, ev.seq)
            )
        )
        return cls.from_wire(packed)

    def _take(self, indices) -> "EventColumns":
        if self._arr is not None:
            return EventColumns(arr=self._arr.take(indices))
        values, timestamps, node_ids, seqs = self._cols
        return EventColumns(
            cols=(
                array("d", (values[i] for i in indices)),
                array("I", (timestamps[i] for i in indices)),
                array("I", (node_ids[i] for i in indices)),
                array("I", (seqs[i] for i in indices)),
            )
        )

    # -- sequence protocol ----------------------------------------------

    def __len__(self) -> int:
        if self._arr is not None:
            return len(self._arr)
        return len(self._cols[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            if self._arr is not None:
                return EventColumns(arr=self._arr[index])
            return EventColumns(
                cols=tuple(col[index] for col in self._cols)
            )
        if self._arr is not None:
            rec = self._arr[index]
            return Event(
                value=float(rec["value"]),
                timestamp=int(rec["timestamp"]),
                node_id=int(rec["node_id"]),
                seq=int(rec["seq"]),
            )
        values, timestamps, node_ids, seqs = self._cols
        return Event(
            value=values[index],
            timestamp=timestamps[index],
            node_id=node_ids[index],
            seq=seqs[index],
        )

    def __iter__(self) -> Iterator[Event]:
        if self._arr is not None:
            for value, timestamp, node_id, seq in self._arr.tolist():
                yield Event(
                    value=value, timestamp=timestamp,
                    node_id=node_id, seq=seq,
                )
            return
        values, timestamps, node_ids, seqs = self._cols
        for i in range(len(values)):
            yield Event(
                value=values[i], timestamp=timestamps[i],
                node_id=node_ids[i], seq=seqs[i],
            )

    def __eq__(self, other) -> bool:
        """Elementwise event equality against any event sequence.

        Mirrors object semantics exactly — a NaN value compares unequal
        to itself here just as two ``Event`` dataclasses with NaN values
        do.  Also invoked *reflected* when a message built with a tuple
        of events is compared to its decoded, columnar twin.
        """
        if other is self:
            return True
        if isinstance(other, EventColumns):
            if len(other) != len(self):
                return False
            return all(a == b for a, b in zip(self, other))
        if isinstance(other, (tuple, list)):
            if len(other) != len(self):
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __hash__(self) -> int:
        # Equal to the hash of the equivalent tuple of events, so a
        # frozen message hashes identically whichever form it carries.
        return hash(tuple(self))

    def __repr__(self) -> str:
        backend = "numpy" if self._arr is not None else "python"
        return f"EventColumns(n={len(self)}, backend={backend})"

    # -- columns --------------------------------------------------------

    @property
    def values(self):
        """The value column (f64)."""
        if self._arr is not None:
            return self._arr["value"]
        return self._cols[0]

    @property
    def timestamps(self):
        """The event-time column (u32 milliseconds)."""
        if self._arr is not None:
            return self._arr["timestamp"]
        return self._cols[1]

    @property
    def node_ids(self):
        """The producing-node column (u32)."""
        if self._arr is not None:
            return self._arr["node_id"]
        return self._cols[2]

    @property
    def seqs(self):
        """The per-node sequence column (u32)."""
        if self._arr is not None:
            return self._arr["seq"]
        return self._cols[3]

    # -- scalar accessors (exact Python types, for synopsis keys) -------

    def key_at(self, index: int) -> tuple[float, int, int]:
        """The strict total-order key of event ``index``, as pure floats
        and ints — byte-identical to ``Event.key`` on the object path."""
        if self._arr is not None:
            rec = self._arr[index]
            return (
                float(rec["value"]), int(rec["node_id"]), int(rec["seq"])
            )
        values, _, node_ids, seqs = self._cols
        return (values[index], node_ids[index], seqs[index])

    def timestamp_at(self, index: int) -> int:
        if self._arr is not None:
            return int(self._arr[index]["timestamp"])
        return self._cols[1][index]

    def min_timestamp(self) -> int:
        if self._arr is not None:
            return int(self._arr["timestamp"].min())
        return min(self._cols[1])

    def max_timestamp(self) -> int:
        if self._arr is not None:
            return int(self._arr["timestamp"].max())
        return max(self._cols[1])

    def timestamps_sorted(self) -> bool:
        """Whether timestamps are non-decreasing (ordered replay)."""
        if len(self) < 2:
            return True
        if self._arr is not None:
            ts = self._arr["timestamp"]
            return not bool((ts[1:] < ts[:-1]).any())
        ts = self._cols[1]
        return all(ts[i] <= ts[i + 1] for i in range(len(ts) - 1))

    # -- wire -----------------------------------------------------------

    def to_wire(self) -> bytes:
        """The batch's wire event array — byte-identical to packing each
        event with :data:`repro.runtime.wire.EVENT` in order."""
        if self._arr is not None:
            return _np.ascontiguousarray(self._arr).tobytes()
        values, timestamps, node_ids, seqs = self._cols
        n = len(values)
        return _batch_struct(n).pack(
            *(
                field
                for i in range(n)
                for field in (
                    values[i], timestamps[i], node_ids[i], seqs[i]
                )
            )
        )

    # -- sorting --------------------------------------------------------

    def _keys(self) -> list[tuple[float, int, int]]:
        """All total-order keys as pure-Python tuples, in batch order."""
        if self._arr is not None:
            return [
                (value, node_id, seq)
                for value, _, node_id, seq in self._arr.tolist()
            ]
        values, _, node_ids, seqs = self._cols
        return [
            (values[i], node_ids[i], seqs[i]) for i in range(len(values))
        ]

    def has_nan(self) -> bool:
        if self._arr is not None:
            return bool(_np.isnan(self._arr["value"]).any())
        return any(value != value for value in self._cols[0])


def concat_columns(chunks: Sequence[EventColumns]) -> EventColumns:
    """Concatenate batches in order (converting backends if mixed)."""
    if len(chunks) == 1:
        return chunks[0]
    if not chunks:
        return EventColumns.from_wire(b"")
    if all(chunk._arr is not None for chunk in chunks):
        return EventColumns(
            arr=_np.concatenate([chunk._arr for chunk in chunks])
        )
    if any(chunk._arr is not None for chunk in chunks):
        # Mixed backends (a runtime set_backend mid-stream): rebuild
        # everything through the wire form, which both speak.
        return EventColumns.from_wire(
            b"".join(chunk.to_wire() for chunk in chunks)
        )
    cols = tuple(array(tc) for tc in ("d", "I", "I", "I"))
    for chunk in chunks:
        for col, src in zip(cols, chunk._cols):
            col.extend(src)
    return EventColumns(cols=cols)


def _merge_comparison_mirror(
    run: "EventColumns | None", pending: EventColumns
) -> EventColumns:
    """The object path's exact algorithm on columns.

    Stable index sort of the pending batch by key tuple (the same Timsort
    comparisons ``list.sort(key=event_key)`` performs), then the same
    two-pointer merge with run priority on ``<=``.  Used whenever NaN
    values make comparison order the contract, and by the python backend
    throughout.

    The object path's append-only early-out (whole batch lands after the
    run) is mirrored too — with a NaN mid-run it is *not* equivalent to
    the merge loop, which dumps the rest of the batch the moment it
    reaches the incomparable key, so skipping it would reorder.
    """
    pending_keys = pending._keys()
    order = sorted(range(len(pending_keys)), key=pending_keys.__getitem__)
    if run is None or not len(run):
        return pending._take(order)
    run_keys = run._keys()
    n_run, n_pending = len(run_keys), len(order)
    if run_keys[-1] <= pending_keys[order[0]]:
        return concat_columns([run, pending._take(order)])
    merged: list[int] = []  # indices into run ++ pending
    i = j = 0
    while i < n_run and j < n_pending:
        if run_keys[i] <= pending_keys[order[j]]:
            merged.append(i)
            i += 1
        else:
            merged.append(n_run + order[j])
            j += 1
    merged.extend(range(i, n_run))
    merged.extend(n_run + order[k] for k in range(j, n_pending))
    return concat_columns([run, pending])._take(merged)


def merge_runs(
    run: "EventColumns | None", pending: EventColumns
) -> EventColumns:
    """Sort ``pending`` and merge it into the sorted ``run``.

    Bit-identical to the object path (see the module docstring): a stable
    ``lexsort`` over ``run ++ pending`` when the numpy backend applies
    and no value is NaN, the comparison mirror otherwise.
    """
    full = pending if run is None or not len(run) else concat_columns(
        [run, pending]
    )
    if full._arr is not None and not full.has_nan():
        arr = full._arr
        order = _np.lexsort((arr["seq"], arr["node_id"], arr["value"]))
        return EventColumns(arr=arr.take(order))
    return _merge_comparison_mirror(run, pending)
