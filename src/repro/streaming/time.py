"""Event-time utilities: watermarks and per-source progress tracking.

Dema processes events by event time (Section 3.1): a window closes when the
system knows that no earlier-timestamped events can still arrive.  In a
decentralized topology each upstream source advances independently, so the
root's notion of progress is the *minimum* of the per-source watermarks —
exactly the rule implemented by :class:`WatermarkTracker`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, WindowError

__all__ = ["Watermark", "EventTimeClock", "WatermarkTracker"]


@dataclass(frozen=True, slots=True, order=True)
class Watermark:
    """A promise that no event with ``timestamp <= time`` is still in flight."""

    time: int


class EventTimeClock:
    """Tracks event-time progress of a single source.

    The clock advances to the maximum observed timestamp minus an allowed
    out-of-orderness bound.  With the default bound of zero the source
    promises strictly in-order timestamps.
    """

    def __init__(self, *, max_out_of_orderness: int = 0) -> None:
        if max_out_of_orderness < 0:
            raise ConfigurationError(
                "max_out_of_orderness must be >= 0, got "
                f"{max_out_of_orderness}"
            )
        self._max_out_of_orderness = max_out_of_orderness
        self._max_timestamp: int | None = None

    @property
    def max_timestamp(self) -> int | None:
        """Largest timestamp observed so far, or ``None`` before any event."""
        return self._max_timestamp

    def observe(self, timestamp: int) -> None:
        """Record an event timestamp."""
        if self._max_timestamp is None or timestamp > self._max_timestamp:
            self._max_timestamp = timestamp

    def current_watermark(self) -> Watermark | None:
        """Return the watermark implied by the observed timestamps."""
        if self._max_timestamp is None:
            return None
        return Watermark(self._max_timestamp - self._max_out_of_orderness)


class WatermarkTracker:
    """Combines watermarks from several upstream sources.

    The combined watermark is the minimum across sources, and it only exists
    once *every* registered source has reported at least one watermark —
    otherwise an idle source could retract the promise.
    """

    def __init__(self, source_ids: list[int] | None = None) -> None:
        self._watermarks: dict[int, int] = {}
        self._registered: set[int] = set(source_ids or [])

    def register(self, source_id: int) -> None:
        """Declare ``source_id`` as an upstream that must report progress."""
        self._registered.add(source_id)

    @property
    def sources(self) -> frozenset[int]:
        """The registered upstream source ids."""
        return frozenset(self._registered)

    def advance(self, source_id: int, watermark: Watermark) -> None:
        """Record a new watermark for one source.

        Watermarks must not regress: a source that reports an earlier
        watermark than before violates its promise.

        Raises:
            WindowError: If ``source_id`` is not registered, or the watermark
                moves backwards.
        """
        if source_id not in self._registered:
            raise WindowError(f"unknown watermark source {source_id}")
        previous = self._watermarks.get(source_id)
        if previous is not None and watermark.time < previous:
            raise WindowError(
                f"watermark for source {source_id} regressed from "
                f"{previous} to {watermark.time}"
            )
        self._watermarks[source_id] = watermark.time

    def combined(self) -> Watermark | None:
        """Return the minimum watermark across all registered sources.

        Returns ``None`` until every registered source has reported.
        """
        if not self._registered:
            return None
        if set(self._watermarks) != self._registered:
            return None
        return Watermark(min(self._watermarks.values()))
