"""Stream-processing substrate: events, event time, windows, aggregations.

This subpackage implements the background machinery from Section 2 of the
paper: the event model used by data-stream nodes (value, timestamp, id), the
Dataflow-model window types (tumbling, sliding, session), and the
aggregation-function classification of Jesus et al. (self-decomposable,
decomposable, non-decomposable).  Every system in the reproduction — Dema, the
Scotty and Desis baselines, and the t-digest system — runs on top of it.
"""

from repro.streaming.events import Event, EventKey, event_key, make_events
from repro.streaming.time import EventTimeClock, Watermark, WatermarkTracker
from repro.streaming.windows import (
    SessionWindows,
    SlidingWindows,
    TumblingWindows,
    Window,
    WindowAssigner,
)
from repro.streaming.aggregates import (
    AggregationClass,
    AggregationFunction,
    classify,
    get_function,
    list_functions,
)
from repro.streaming.operators import (
    KeyedWindowState,
    WindowedAggregationOperator,
)

__all__ = [
    "Event",
    "EventKey",
    "event_key",
    "make_events",
    "EventTimeClock",
    "Watermark",
    "WatermarkTracker",
    "Window",
    "WindowAssigner",
    "TumblingWindows",
    "SlidingWindows",
    "SessionWindows",
    "AggregationClass",
    "AggregationFunction",
    "classify",
    "get_function",
    "list_functions",
    "KeyedWindowState",
    "WindowedAggregationOperator",
]
