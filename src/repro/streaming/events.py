"""Event model for decentralized data streams.

An event is the unit of data produced by a data-stream node.  Following the
paper (Section 2.3), an event consists of a *value*, an event-time *timestamp*
and an *id*, all assigned by the producing node.  For Dema's exactness
guarantee the reproduction additionally defines a strict total order over
events — the :func:`event_key` — so that rank computations are deterministic
even when values collide across nodes.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.runtime import wire

__all__ = ["Event", "EventKey", "event_key", "make_events", "EVENT_WIRE_BYTES"]

#: Serialized size of one event on the wire, in bytes.  The paper's events
#: carry an 8-byte value, a 4-byte timestamp and a 4-byte id; the
#: reproduction adds the 4-byte per-node sequence number that makes the
#: total order strict, for 20 bytes.  The constant comes from the binary
#: codec's struct layout (:mod:`repro.runtime.wire`), so simulated byte
#: accounting matches what the live runtime actually serializes.
EVENT_WIRE_BYTES = wire.EVENT_WIRE_BYTES

#: The total-order key of an event: ``(value, node_id, seq)``.
EventKey = tuple[float, int, int]


@dataclass(frozen=True, slots=True)
class Event:
    """A single stream event.

    Attributes:
        value: The measured sensor value; the quantity quantiles range over.
        timestamp: Event time in milliseconds since the stream epoch.  Window
            assignment uses this, never arrival time (Dema is event-time
            based, Section 3.1).
        node_id: Identifier of the data-stream node that produced the event.
        seq: Per-node monotonically increasing sequence number.  Together with
            ``node_id`` it makes every event globally unique, which gives the
            value order a deterministic tie-break.
    """

    value: float
    timestamp: int
    node_id: int
    seq: int

    @property
    def key(self) -> EventKey:
        """Strict-total-order key used for all rank computations."""
        return (self.value, self.node_id, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.key < other.key

    def __le__(self, other: "Event") -> bool:
        return self.key <= other.key

    def __gt__(self, other: "Event") -> bool:
        return self.key > other.key

    def __ge__(self, other: "Event") -> bool:
        return self.key >= other.key

    @property
    def wire_bytes(self) -> int:
        """Bytes this event occupies in a network message payload."""
        return EVENT_WIRE_BYTES


#: Return the strict-total-order key ``(value, node_id, seq)`` of an event.
#: Used as the ``key=`` argument to :func:`sorted` and friends on every hot
#: sort/merge path, so it is a C-level :func:`operator.attrgetter` rather
#: than a Python function calling the :attr:`Event.key` property.
event_key: Callable[[Event], EventKey] = operator.attrgetter(
    "value", "node_id", "seq"
)


def make_events(
    values: Sequence[float] | Iterable[float],
    *,
    node_id: int = 0,
    start_timestamp: int = 0,
    timestamp_step: int = 1,
    start_seq: int = 0,
) -> list[Event]:
    """Build a list of events from raw values.

    A convenience constructor used heavily by tests and examples: values are
    paired with evenly spaced timestamps and consecutive sequence numbers.

    Args:
        values: Event values in production order.
        node_id: Producing node id stamped on every event.
        start_timestamp: Timestamp of the first event, in milliseconds.
        timestamp_step: Timestamp increment between consecutive events; must
            be non-negative.
        start_seq: Sequence number of the first event.

    Returns:
        Events in production order.

    Raises:
        ConfigurationError: If ``timestamp_step`` is negative.
    """
    if timestamp_step < 0:
        raise ConfigurationError(
            f"timestamp_step must be >= 0, got {timestamp_step}"
        )
    events = []
    for offset, value in enumerate(values):
        events.append(
            Event(
                value=float(value),
                timestamp=start_timestamp + offset * timestamp_step,
                node_id=node_id,
                seq=start_seq + offset,
            )
        )
    return events


def iter_values(events: Iterable[Event]) -> Iterator[float]:
    """Yield the values of ``events`` in iteration order."""
    for event in events:
        yield event.value
