"""A from-scratch q-digest (Shrivastava et al. 2004).

The q-digest summarizes counts over an integer universe ``[0, 2^depth)``
using nodes of an implicit binary tree.  A node survives compression only if
its count together with its parent's and sibling's exceeds ``n / k`` (the
digest property), which bounds the structure at ``O(k·depth)`` nodes while
guaranteeing rank error at most ``n·depth / k``.

Designed for sensor networks, q-digests merge by adding counts node-wise and
re-compressing — the decentralized aggregation pattern the paper cites.
Values outside the integer universe are clamped; real-valued streams are
quantized by the caller (see :meth:`QDigest.for_range`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Tuple

from repro.errors import SketchError

__all__ = ["QDigest"]

#: A tree node is identified by ``(level, index)``: level 0 is the root
#: covering the whole universe; a node at level L covers
#: ``universe / 2^L`` consecutive integers starting at ``index << (depth-L)``.
NodeId = Tuple[int, int]


class QDigest:
    """q-digest over the integer universe ``[0, 2**depth)``."""

    def __init__(self, k: int, depth: int = 16) -> None:
        if k < 1:
            raise SketchError(f"compression k must be >= 1, got {k}")
        if not 1 <= depth <= 62:
            raise SketchError(f"depth must be in [1, 62], got {depth}")
        self._k = k
        self._depth = depth
        self._universe = 1 << depth
        self._counts: Dict[NodeId, int] = {}
        self._n = 0

    @classmethod
    def for_range(
        cls, k: int, low: float, high: float, depth: int = 16
    ) -> "QDigestQuantizer":
        """Build a digest over real values in ``[low, high]``.

        Returns a quantizing wrapper that maps values to buckets and
        quantile answers back to representative values.
        """
        return QDigestQuantizer(cls(k, depth), low, high)

    @property
    def k(self) -> int:
        """The compression factor (larger → bigger, more accurate digest)."""
        return self._k

    @property
    def depth(self) -> int:
        """Tree depth; the universe is ``2**depth``."""
        return self._depth

    @property
    def universe(self) -> int:
        """Size of the integer value universe."""
        return self._universe

    @property
    def n(self) -> int:
        """Total count absorbed."""
        return self._n

    @property
    def node_count(self) -> int:
        """Number of stored tree nodes (the digest's size)."""
        return len(self._counts)

    def rank_error_bound(self) -> float:
        """Worst-case absolute rank error of any quantile query."""
        return self._n * self._depth / self._k

    def add(self, value: int, count: int = 1) -> None:
        """Absorb ``count`` occurrences of integer ``value``.

        Raises:
            SketchError: If the value is outside the universe or the count
                is non-positive.
        """
        if not 0 <= value < self._universe:
            raise SketchError(
                f"value {value} outside the universe [0, {self._universe})"
            )
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        leaf = (self._depth, value)
        self._counts[leaf] = self._counts.get(leaf, 0) + count
        self._n += count
        if len(self._counts) > 6 * self._k:
            self.compress()

    def add_all(self, values: Iterable[int]) -> None:
        """Absorb a batch of integer values."""
        for value in values:
            self.add(value)

    def merge(self, other: "QDigest") -> None:
        """Add another digest's node counts and re-compress.

        Raises:
            SketchError: If universes differ.
        """
        if other._depth != self._depth:
            raise SketchError(
                f"cannot merge digests of depth {self._depth} and "
                f"{other._depth}"
            )
        for node, count in other._counts.items():
            self._counts[node] = self._counts.get(node, 0) + count
        self._n += other._n
        self.compress()

    def compress(self) -> None:
        """Restore the digest property bottom-up.

        A child pair whose combined count with their parent is at most
        ``n/k`` is folded into the parent, shrinking the digest while
        pushing counts toward coarser ranges.
        """
        if self._n == 0:
            return
        threshold = self._n // self._k
        for level in range(self._depth, 0, -1):
            nodes = [node for node in self._counts if node[0] == level]
            for node in nodes:
                count = self._counts.get(node, 0)
                if count == 0:
                    self._counts.pop(node, None)
                    continue
                sibling = (level, node[1] ^ 1)
                parent = (level - 1, node[1] >> 1)
                family = (
                    count
                    + self._counts.get(sibling, 0)
                    + self._counts.get(parent, 0)
                )
                if family <= threshold:
                    self._counts[parent] = family
                    self._counts.pop(node, None)
                    self._counts.pop(sibling, None)

    def to_node_tuples(self) -> Tuple[Tuple[int, int, int], ...]:
        """Serialize to ``(level, index, count)`` triples (compresses first)."""
        self.compress()
        return tuple(
            (level, index, count)
            for (level, index), count in sorted(self._counts.items())
        )

    @classmethod
    def from_node_tuples(
        cls,
        triples: Iterable[Tuple[int, int, int]],
        k: int,
        depth: int = 16,
    ) -> "QDigest":
        """Deserialize a digest shipped over the network.

        Raises:
            SketchError: If a node id lies outside the tree.
        """
        digest = cls(k, depth)
        for level, index, count in triples:
            if not 0 <= level <= depth or not 0 <= index < (1 << level):
                raise SketchError(
                    f"node (level={level}, index={index}) outside a "
                    f"depth-{depth} tree"
                )
            if count < 1:
                raise SketchError(f"node count must be >= 1, got {count}")
            digest._counts[(level, index)] = (
                digest._counts.get((level, index), 0) + count
            )
            digest._n += count
        return digest

    def quantile(self, q: float) -> int:
        """Approximate the ``q``-quantile as an integer value.

        Walks stored nodes in post-order of their value ranges (ascending
        range end, then ascending level) accumulating counts until the rank
        is reached; answers with the node's range maximum, per the paper.

        Raises:
            SketchError: On an empty digest or ``q`` outside ``(0, 1]``.
        """
        if not 0.0 < q <= 1.0:
            raise SketchError(f"q must be in (0, 1], got {q}")
        if self._n == 0:
            raise SketchError("cannot query an empty digest")
        rank = math.ceil(q * self._n)
        ordered = sorted(
            self._counts.items(),
            key=lambda item: (self._range_end(item[0]), item[0][0]),
        )
        cumulative = 0
        for node, count in ordered:
            cumulative += count
            if cumulative >= rank:
                return self._range_end(node)
        return self._range_end(ordered[-1][0])

    def _range_end(self, node: NodeId) -> int:
        level, index = node
        width = 1 << (self._depth - level)
        return index * width + width - 1


class QDigestQuantizer:
    """Maps real values into a q-digest's integer universe and back."""

    def __init__(self, digest: QDigest, low: float, high: float) -> None:
        if not high > low:
            raise SketchError(f"need high > low, got [{low}, {high}]")
        self._digest = digest
        self._low = low
        self._high = high
        self._buckets = digest.universe

    @property
    def digest(self) -> QDigest:
        """The wrapped integer digest."""
        return self._digest

    def add(self, value: float) -> None:
        """Quantize and absorb one real value (clamped to the range)."""
        clamped = min(max(value, self._low), self._high)
        span = self._high - self._low
        bucket = int((clamped - self._low) / span * (self._buckets - 1))
        self._digest.add(bucket)

    def add_all(self, values: Iterable[float]) -> None:
        """Quantize and absorb a batch of real values."""
        for value in values:
            self.add(value)

    def quantile(self, q: float) -> float:
        """Approximate quantile mapped back to the real value range."""
        bucket = self._digest.quantile(q)
        span = self._high - self._low
        return self._low + bucket / (self._buckets - 1) * span
