"""A from-scratch merging t-digest (Dunning & Ertl 2019).

The digest keeps a sorted list of centroids ``(mean, weight)`` whose sizes
obey a scale function: tiny near the tails, large in the middle.  Incoming
points land in an unsorted buffer; when the buffer fills, buffer and
centroids are merged in one sorted pass that greedily grows each output
centroid until the scale function forbids it.  Digests merge the same way,
which is what the t-digest baseline ships over the network: local nodes
digest their windows and the root merges the digests.

Quantile queries interpolate between centroid means weighted by centroid
masses; the true minimum and maximum are tracked exactly so extreme
quantiles stay sane.  Results are approximate — the whole point of the
paper's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SketchError
from repro.sketches.scale_functions import K1, ScaleFunction

__all__ = ["Centroid", "TDigest"]

#: Default compression δ; ~100 gives <1 % mid-quantile error in practice.
DEFAULT_COMPRESSION = 100.0

#: Buffer this many points per centroid budget before merging.
_BUFFER_FACTOR = 5


@dataclass(frozen=True, slots=True)
class Centroid:
    """A cluster of points summarized by its mean and total weight."""

    mean: float
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise SketchError(f"centroid weight must be > 0, got {self.weight}")


class TDigest:
    """Merging t-digest with a pluggable scale function."""

    def __init__(
        self,
        compression: float = DEFAULT_COMPRESSION,
        *,
        scale: ScaleFunction | None = None,
    ) -> None:
        if compression < 10:
            raise SketchError(
                f"compression must be >= 10 for a usable digest, got "
                f"{compression}"
            )
        self._compression = compression
        self._scale = scale if scale is not None else K1(compression)
        self._centroids: list[Centroid] = []
        self._buffer: list[float] = []
        self._buffer_limit = int(_BUFFER_FACTOR * compression)
        self._count = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def compression(self) -> float:
        """The compression parameter δ."""
        return self._compression

    @property
    def count(self) -> float:
        """Total weight absorbed so far."""
        return self._count

    @property
    def min(self) -> float:
        """Exact minimum of the absorbed points."""
        if self._count == 0:
            raise SketchError("empty digest has no minimum")
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum of the absorbed points."""
        if self._count == 0:
            raise SketchError("empty digest has no maximum")
        return self._max

    def centroids(self) -> list[Centroid]:
        """The compressed centroids, sorted by mean (flushes the buffer)."""
        self._merge_buffer()
        return list(self._centroids)

    @property
    def centroid_count(self) -> int:
        """Number of centroids after compressing pending points."""
        return len(self.centroids())

    def add(self, value: float, weight: float = 1.0) -> None:
        """Absorb one point (optionally weighted)."""
        if weight <= 0:
            raise SketchError(f"weight must be > 0, got {weight}")
        if weight == 1.0:
            self._buffer.append(value)
        else:
            # Weighted points skip the scalar buffer and merge directly.
            self._merge_sorted(
                [Centroid(float(value), float(weight))], flush_buffer=True
            )
        self._count += weight
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if len(self._buffer) >= self._buffer_limit:
            self._merge_buffer()

    def add_all(self, values: Iterable[float]) -> None:
        """Absorb a batch of unit-weight points."""
        for value in values:
            self.add(value)

    def merge(self, other: "TDigest") -> None:
        """Absorb another digest's centroids (the decentralized merge)."""
        if other._count == 0:
            return
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._merge_sorted(other.centroids(), flush_buffer=True)

    @classmethod
    def merge_all(cls, digests: Sequence["TDigest"],
                  compression: float = DEFAULT_COMPRESSION) -> "TDigest":
        """Merge many digests into a fresh one (root-node aggregation)."""
        merged = cls(compression)
        for digest in digests:
            merged.merge(digest)
        return merged

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-quantile, ``q`` in ``[0, 1]``.

        Raises:
            SketchError: If the digest is empty or ``q`` is out of range.
        """
        if not 0.0 <= q <= 1.0:
            raise SketchError(f"q must be in [0, 1], got {q}")
        if self._count == 0:
            raise SketchError("cannot query an empty digest")
        self._merge_buffer()
        centroids = self._centroids
        if len(centroids) == 1:
            return centroids[0].mean

        target = q * self._count
        # Cumulative weight at each centroid's midpoint.
        cumulative = 0.0
        midpoints = []
        for centroid in centroids:
            midpoints.append(cumulative + centroid.weight / 2.0)
            cumulative += centroid.weight

        if target <= midpoints[0]:
            # Interpolate between the exact minimum and the first centroid.
            first = centroids[0]
            if midpoints[0] == 0:
                return first.mean
            fraction = target / midpoints[0]
            return self._min + fraction * (first.mean - self._min)
        if target >= midpoints[-1]:
            last = centroids[-1]
            span = self._count - midpoints[-1]
            if span == 0:
                return last.mean
            fraction = (target - midpoints[-1]) / span
            return last.mean + fraction * (self._max - last.mean)

        for i in range(len(centroids) - 1):
            if midpoints[i] <= target <= midpoints[i + 1]:
                width = midpoints[i + 1] - midpoints[i]
                fraction = 0.0 if width == 0 else (target - midpoints[i]) / width
                return centroids[i].mean + fraction * (
                    centroids[i + 1].mean - centroids[i].mean
                )
        raise SketchError("quantile interpolation failed")  # pragma: no cover

    def cdf(self, x: float) -> float:
        """Approximate the fraction of points ≤ ``x``."""
        if self._count == 0:
            raise SketchError("cannot query an empty digest")
        self._merge_buffer()
        if x < self._min:
            return 0.0
        if x >= self._max:
            return 1.0
        centroids = self._centroids
        if len(centroids) == 1:
            # All mass in one centroid: linear ramp between min and max.
            if self._max == self._min:
                return 1.0
            return (x - self._min) / (self._max - self._min)

        cumulative = 0.0
        midpoints = []
        for centroid in centroids:
            midpoints.append(cumulative + centroid.weight / 2.0)
            cumulative += centroid.weight

        if x < centroids[0].mean:
            span = centroids[0].mean - self._min
            fraction = 1.0 if span == 0 else (x - self._min) / span
            return fraction * midpoints[0] / self._count
        if x >= centroids[-1].mean:
            span = self._max - centroids[-1].mean
            fraction = 1.0 if span == 0 else (x - centroids[-1].mean) / span
            return (midpoints[-1] + fraction * (self._count - midpoints[-1])) / self._count

        for i in range(len(centroids) - 1):
            left, right = centroids[i].mean, centroids[i + 1].mean
            if left <= x < right:
                span = right - left
                fraction = 0.0 if span == 0 else (x - left) / span
                weight = midpoints[i] + fraction * (midpoints[i + 1] - midpoints[i])
                return weight / self._count
        raise SketchError("cdf interpolation failed")  # pragma: no cover

    def to_centroid_tuples(self) -> tuple[tuple[float, float], ...]:
        """Serialize to ``(mean, weight)`` pairs for :class:`DigestMessage`."""
        return tuple((c.mean, c.weight) for c in self.centroids())

    @classmethod
    def from_centroid_tuples(
        cls,
        pairs: Sequence[tuple[float, float]],
        compression: float = DEFAULT_COMPRESSION,
        *,
        minimum: float | None = None,
        maximum: float | None = None,
    ) -> "TDigest":
        """Deserialize a digest shipped over the network.

        ``minimum``/``maximum`` are the sender's exact extremes, which the
        class contract says are tracked exactly — a tail centroid's *mean*
        sits strictly inside the data range whenever the centroid holds
        more than one point, so substituting means flattens extreme
        quantiles.  Senders should always ship them
        (:class:`DigestMessage` carries both); when absent the extreme
        centroid means remain the best available bound.
        """
        digest = cls(compression)
        if not pairs:
            return digest
        centroids = sorted(
            (Centroid(float(m), float(w)) for m, w in pairs),
            key=lambda c: c.mean,
        )
        digest._centroids = centroids
        digest._count = sum(c.weight for c in centroids)
        digest._min = centroids[0].mean if minimum is None else float(minimum)
        digest._max = centroids[-1].mean if maximum is None else float(maximum)
        return digest

    def _merge_buffer(self) -> None:
        if not self._buffer:
            return
        incoming = [Centroid(v, 1.0) for v in sorted(self._buffer)]
        self._buffer = []
        self._merge_sorted(incoming, flush_buffer=False)

    def _merge_sorted(
        self, incoming: list[Centroid], *, flush_buffer: bool
    ) -> None:
        """One compression pass over existing centroids plus ``incoming``.

        Both inputs are already sorted by mean (``_centroids`` is an
        invariant of this method; ``incoming`` comes from a ``sorted``
        buffer or another digest's centroids), so they are combined with a
        linear two-pointer merge instead of a re-sort.  Ties take the
        existing centroid first, matching what a stable sort of
        ``existing + incoming`` produced — the output sequence, and hence
        every downstream quantile, is bit-identical to the sorting version.
        """
        if flush_buffer:
            self._merge_buffer()
        existing = self._centroids
        if not existing:
            merged_input = incoming
        elif not incoming:
            merged_input = existing
        else:
            merged_input = []
            i = j = 0
            n_existing, n_incoming = len(existing), len(incoming)
            while i < n_existing and j < n_incoming:
                if existing[i].mean <= incoming[j].mean:
                    merged_input.append(existing[i])
                    i += 1
                else:
                    merged_input.append(incoming[j])
                    j += 1
            merged_input.extend(existing[i:])
            merged_input.extend(incoming[j:])
        if not merged_input:
            return
        total = sum(c.weight for c in merged_input)

        output: list[Centroid] = []
        current_mean = merged_input[0].mean
        current_weight = merged_input[0].weight
        weight_so_far = 0.0
        for centroid in merged_input[1:]:
            q_mid = (weight_so_far + (current_weight + centroid.weight) / 2.0) / total
            limit = self._scale.max_centroid_weight(q_mid, total)
            if current_weight + centroid.weight <= limit:
                combined = current_weight + centroid.weight
                current_mean += (
                    centroid.weight * (centroid.mean - current_mean) / combined
                )
                current_weight = combined
            else:
                output.append(Centroid(current_mean, current_weight))
                weight_so_far += current_weight
                current_mean = centroid.mean
                current_weight = centroid.weight
        output.append(Centroid(current_mean, current_weight))
        self._centroids = output
