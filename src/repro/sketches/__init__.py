"""Approximate quantile sketches: t-digest and q-digest.

These are the approximate competitors the paper positions Dema against
(Section 5): compact mergeable summaries that trade exactness for speed and
fixed memory.  Both are implemented from scratch — the t-digest following
Dunning & Ertl's merging variant with the k1 scale function, the q-digest
following Shrivastava et al.'s sensor-network construction.
"""

from repro.sketches.scale_functions import ScaleFunction, K0, K1, K2
from repro.sketches.tdigest import Centroid, TDigest
from repro.sketches.qdigest import QDigest
from repro.sketches.kll import KllSketch

__all__ = [
    "ScaleFunction",
    "K0",
    "K1",
    "K2",
    "Centroid",
    "TDigest",
    "QDigest",
    "KllSketch",
]
