"""Scale functions for the t-digest.

A scale function ``k(q)`` maps quantiles to a "k-scale" in which every
centroid is allowed to span at most one unit.  The slope of ``k`` controls
the size budget: steep near the tails → small centroids → accurate extreme
quantiles.  Dunning & Ertl define

* ``k0(q) = δ·q/2`` — uniform centroid sizes;
* ``k1(q) = δ/(2π)·asin(2q−1)`` — the canonical choice, tail-accurate;
* ``k2(q) = δ/Z·log(q/(1−q))`` — even stronger tail bias, with the
  normalizer ``Z = 4·log(n/δ) + 24`` depending on the stream size ``n``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import SketchError

__all__ = ["ScaleFunction", "K0", "K1", "K2"]


class ScaleFunction(ABC):
    """Maps quantile space to k-space for a given compression δ."""

    def __init__(self, delta: float) -> None:
        if delta <= 0:
            raise SketchError(f"compression delta must be > 0, got {delta}")
        self._delta = delta

    @property
    def delta(self) -> float:
        """The compression parameter δ (larger → more centroids)."""
        return self._delta

    @abstractmethod
    def k(self, q: float, n: float) -> float:
        """Map quantile ``q`` to k-space for a total weight of ``n`` points.

        ``n`` is a float: merged digests can carry fractional total weight,
        and truncating it would shift every centroid size limit.
        """

    def max_centroid_weight(self, q: float, n: float) -> float:
        """Largest weight a centroid centred at quantile ``q`` may carry.

        Derived from the slope of ``k``: a centroid may span one k-unit, so
        its quantile width is bounded by ``1 / k'(q)`` and its weight by
        ``n / k'(q)``.  Implemented numerically so subclasses only define
        ``k``.
        """
        eps = 1e-6
        lo = min(max(q - eps, 0.0), 1.0 - 2 * eps)
        slope = (self.k(lo + 2 * eps, n) - self.k(lo, n)) / (2 * eps)
        if slope <= 0:
            return 1.0
        return max(1.0, n / slope)


class K0(ScaleFunction):
    """Uniform scale function: all centroids the same size."""

    def k(self, q: float, n: float) -> float:
        return self._delta * q / 2.0


class K1(ScaleFunction):
    """The canonical arcsine scale function (tail-accurate)."""

    def k(self, q: float, n: float) -> float:
        q = min(max(q, 0.0), 1.0)
        return self._delta / (2.0 * math.pi) * math.asin(2.0 * q - 1.0)


class K2(ScaleFunction):
    """Logit scale function with very strong tail bias."""

    #: Quantiles are clamped away from 0/1 to keep the logit finite.
    _EPS = 1e-12

    def k(self, q: float, n: float) -> float:
        q = min(max(q, self._EPS), 1.0 - self._EPS)
        normalizer = 4.0 * math.log(max(n, 2) / self._delta) + 24.0
        return self._delta / normalizer * math.log(q / (1.0 - q))
