"""A from-scratch KLL sketch (Karnin, Lang, Liberty 2016).

KLL is the mergeable quantile sketch behind Apache DataSketches — the
modern representative of the "compact mergeable summaries" family the
paper positions Dema against.  It keeps a hierarchy of *compactors*:
level ``h`` holds items each representing ``2^h`` original points.  When a
level overflows, its sorted contents are halved by keeping either the odd
or the even positions (chosen at random) and the survivors are promoted
one level up — an unbiased rank-preserving compaction.

Capacities shrink geometrically toward the lower levels
(``k·c^(depth)`` with ``c = 2/3``), giving ``O(k·log(n/k))`` memory and a
normalized rank error of ``O(1/k)`` with high probability.

Determinism: the compaction coin is drawn from a seeded RNG so simulated
runs reproduce bit-for-bit.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

from repro.errors import SketchError

__all__ = ["KllSketch"]

#: Geometric decay of compactor capacities toward lower levels.
_CAPACITY_DECAY = 2.0 / 3.0

#: Smallest capacity of any compactor.
_MIN_CAPACITY = 2


class KllSketch:
    """Mergeable quantile sketch with O(1/k) normalized rank error."""

    def __init__(self, k: int = 200, *, seed: int = 0) -> None:
        if k < 8:
            raise SketchError(f"k must be >= 8 for a usable sketch, got {k}")
        self._k = k
        self._rng = random.Random(f"kll:{seed}")
        self._compactors: list[list[float]] = [[]]
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")
        # Cached capacity of level 0; only changes when the number of
        # levels does, which only happens under _compress_if_needed.
        self._cap0 = self._capacity(0)

    @property
    def k(self) -> int:
        """Accuracy parameter (larger → bigger sketch, smaller error)."""
        return self._k

    @property
    def count(self) -> int:
        """Total points absorbed."""
        return self._count

    @property
    def levels(self) -> int:
        """Number of compactor levels currently allocated."""
        return len(self._compactors)

    @property
    def size(self) -> int:
        """Items retained across all compactors (the sketch's footprint)."""
        return sum(len(level) for level in self._compactors)

    @property
    def min(self) -> float:
        """Exact minimum of the absorbed points."""
        if self._count == 0:
            raise SketchError("empty sketch has no minimum")
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum of the absorbed points."""
        if self._count == 0:
            raise SketchError("empty sketch has no maximum")
        return self._max

    def rank_error_bound(self) -> float:
        """Normalized rank error at ~99 % confidence (empirical constant)."""
        return 1.75 / self._k

    def _capacity(self, level: int) -> int:
        depth = len(self._compactors) - 1 - level
        return max(_MIN_CAPACITY, math.ceil(self._k * _CAPACITY_DECAY ** depth))

    def add(self, value: float) -> None:
        """Absorb one point.

        Compaction can only trigger when level 0 overflows (no other level
        grew), so the all-levels scan is skipped while level 0 is under
        capacity — the common case on the ingest hot path.
        """
        value = float(value)
        level0 = self._compactors[0]
        level0.append(value)
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(level0) > self._cap0:
            self._compress_if_needed()

    def add_all(self, values: Iterable[float]) -> None:
        """Absorb a batch of points.

        Items are appended in chunks that stop exactly where per-item
        :meth:`add` would have compacted (level 0 reaching capacity + 1),
        so every compaction sees the same level contents and draws the
        same RNG coins — the resulting sketch is bit-identical to the
        per-item loop, without paying the overflow check per point.
        """
        batch = [float(v) for v in values]
        if not batch:
            return
        self._count += len(batch)
        low, high = min(batch), max(batch)
        if low < self._min:
            self._min = low
        if high > self._max:
            self._max = high
        level0 = self._compactors[0]
        pos = 0
        n = len(batch)
        while pos < n:
            take = min(n - pos, self._cap0 + 1 - len(level0))
            end = pos + take
            level0.extend(batch[pos:end])
            pos = end
            if len(level0) > self._cap0:
                self._compress_if_needed()
                level0 = self._compactors[0]

    def merge(self, other: "KllSketch") -> None:
        """Absorb another sketch (the decentralized merge)."""
        if other._count == 0:
            return
        while len(self._compactors) < len(other._compactors):
            self._compactors.append([])
        for level, items in enumerate(other._compactors):
            self._compactors[level].extend(items)
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress_if_needed()

    def _compress_if_needed(self) -> None:
        level = 0
        while level < len(self._compactors):
            if len(self._compactors[level]) > self._capacity(level):
                self._compact_level(level)
            level += 1
        self._cap0 = self._capacity(0)

    def _compact_level(self, level: int) -> None:
        items = sorted(self._compactors[level])
        # An odd item stays behind so pairs are complete.
        if len(items) % 2 == 1:
            leftover = [items.pop()]
        else:
            leftover = []
        offset = self._rng.randrange(2)
        promoted = items[offset::2]
        self._compactors[level] = leftover
        if level + 1 == len(self._compactors):
            self._compactors.append([])
        self._compactors[level + 1].extend(promoted)

    def _weighted_items(self) -> list[tuple[float, int]]:
        pairs = []
        for level, items in enumerate(self._compactors):
            weight = 1 << level
            pairs.extend((item, weight) for item in items)
        pairs.sort()
        return pairs

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-quantile, ``q`` in ``[0, 1]``.

        Raises:
            SketchError: On an empty sketch or out-of-range ``q``.
        """
        if not 0.0 <= q <= 1.0:
            raise SketchError(f"q must be in [0, 1], got {q}")
        if self._count == 0:
            raise SketchError("cannot query an empty sketch")
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        pairs = self._weighted_items()
        total = sum(weight for _, weight in pairs)
        target = q * total
        cumulative = 0
        for value, weight in pairs:
            cumulative += weight
            if cumulative >= target:
                return value
        return pairs[-1][0]

    def rank(self, value: float) -> float:
        """Approximate normalized rank of ``value`` (fraction ≤ value)."""
        if self._count == 0:
            raise SketchError("cannot query an empty sketch")
        pairs = self._weighted_items()
        total = sum(weight for _, weight in pairs)
        below = sum(weight for item, weight in pairs if item <= value)
        return below / total

    def to_weighted_tuples(self) -> tuple[tuple[float, int], ...]:
        """Serialize to ``(value, weight)`` pairs for the wire."""
        return tuple(self._weighted_items())

    @classmethod
    def from_weighted_tuples(
        cls,
        pairs: Sequence[tuple[float, int]],
        k: int = 200,
        *,
        seed: int = 0,
        minimum: float | None = None,
        maximum: float | None = None,
    ) -> "KllSketch":
        """Rebuild a sketch from serialized pairs.

        The reconstruction places each item at the level matching its
        weight (weights must be powers of two).  ``minimum``/``maximum``
        are the sender's exact extremes; compaction may have dropped the
        extreme points from the retained items, so without them
        ``quantile(0.0)``/``quantile(1.0)`` drift inward.

        Raises:
            SketchError: On a non-power-of-two weight.
        """
        sketch = cls(k, seed=seed)
        if not pairs:
            return sketch
        for value, weight in pairs:
            if weight < 1 or weight & (weight - 1):
                raise SketchError(
                    f"weight {weight} is not a power of two"
                )
            level = weight.bit_length() - 1
            while len(sketch._compactors) <= level:
                sketch._compactors.append([])
            sketch._compactors[level].append(float(value))
            sketch._count += weight
            sketch._min = min(sketch._min, float(value))
            sketch._max = max(sketch._max, float(value))
        if minimum is not None:
            sketch._min = min(sketch._min, float(minimum))
        if maximum is not None:
            sketch._max = max(sketch._max, float(maximum))
        sketch._compress_if_needed()
        return sketch
