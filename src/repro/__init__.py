"""Dema: efficient decentralized aggregation for non-decomposable quantiles.

A from-scratch Python reproduction of the EDBT 2025 paper.  The package is
organized as:

* :mod:`repro.core` — Dema itself: slice synopses, the window-cut algorithm,
  identification and calculation steps, adaptive slice factor, and both a
  pure in-memory API (:func:`repro.core.dema_quantile`) and a simulated
  deployment (:class:`repro.core.DemaEngine`).
* :mod:`repro.streaming` — SPE substrate: events, event time, window types,
  aggregation-function classification.
* :mod:`repro.network` — deterministic discrete-event network simulator that
  stands in for the paper's 9-node cluster.
* :mod:`repro.sketches` — t-digest and q-digest, implemented from scratch.
* :mod:`repro.baselines` — Scotty, Desis and t-digest systems on the same
  simulated topology.
* :mod:`repro.bench` — workload generator, measurement harness, and the
  runner that regenerates every figure of the evaluation section.
* :mod:`repro.obs` — observability: span tracer on the simulated clock,
  metrics registry, JSONL / Chrome-trace / Prometheus exporters.
* :mod:`repro.queries` — live multi-query plane: runtime registration
  over the wire, sliding windows with shared pane slices, shared-cut
  execution across queries.

Quick start::

    from repro import dema_quantile, make_events

    windows = {
        1: make_events([3.0, 1.0, 4.0, 1.0, 5.0], node_id=1),
        2: make_events([9.0, 2.0, 6.0, 5.0, 3.0], node_id=2),
    }
    result = dema_quantile(windows, q=0.5, gamma=2)
    print(result.value, result.transfer_events)
"""

from repro.errors import ReproError
from repro.streaming.events import Event, make_events
from repro.streaming.windows import SessionWindows, SlidingWindows, TumblingWindows
from repro.streaming.aggregates import exact_quantile, get_function, quantile_rank
from repro.core.engine import DemaEngine, DemaResult, dema_quantile
from repro.core.multi import MultiQuantileResult, dema_quantiles
from repro.core.reliability import ReliabilityConfig
from repro.core.concurrent import ConcurrentDemaEngine
from repro.core.query import QuantileQuery
from repro.core.adaptive import AdaptiveGammaController, optimal_gamma
from repro.network.topology import TopologyConfig
from repro.queries.spec import QuerySpec
from repro.obs.events import MessageTrace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NOOP_TRACER, RecordingTracer, Span, Tracer
from repro.sketches.tdigest import TDigest
from repro.sketches.qdigest import QDigest
from repro.baselines.base import SYSTEM_NAMES, build_system

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Event",
    "make_events",
    "TumblingWindows",
    "SlidingWindows",
    "SessionWindows",
    "exact_quantile",
    "quantile_rank",
    "get_function",
    "dema_quantile",
    "dema_quantiles",
    "DemaResult",
    "MultiQuantileResult",
    "DemaEngine",
    "ConcurrentDemaEngine",
    "ReliabilityConfig",
    "QuantileQuery",
    "AdaptiveGammaController",
    "optimal_gamma",
    "TopologyConfig",
    "QuerySpec",
    "MessageTrace",
    "MetricsRegistry",
    "NOOP_TRACER",
    "RecordingTracer",
    "Span",
    "Tracer",
    "TDigest",
    "QDigest",
    "build_system",
    "SYSTEM_NAMES",
    "__version__",
]
