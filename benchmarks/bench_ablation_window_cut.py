"""Ablation A1 — window-cut pruning vs fetching the whole overlap unit.

DESIGN.md calls out the window-cut algorithm as the component that keeps
candidate transfer small when distributions overlap.  This ablation
measures the candidate events actually fetched with the rank-bound pruning
against the naive alternative of shipping every slice of the unit that
contains the quantile rank.
"""

from repro.bench.runner import exp_ablation_window_cut
from repro.bench.reporting import format_table


def test_ablation_window_cut(benchmark, once):
    results = once(
        benchmark, exp_ablation_window_cut,
        per_node_rate=5_000.0, n_windows=3,
    )

    rows = [[key, f"{value:,.0f}"] for key, value in results.items()]
    print()
    print(format_table(
        ["metric", "events"], rows, title="Ablation A1 — window-cut pruning"
    ))
    benchmark.extra_info.update(results)

    with_cut = results["candidate_events_with_cut"]
    without_cut = results["candidate_events_without_cut"]
    assert with_cut < 0.25 * without_cut
    # And pruning never exceeds the full dataset.
    assert without_cut <= results["total_events"]
