"""Figure 8b — Dema throughput vs γ under three scale-rate configs (q=30 %).

Paper claims: throughput is low at tiny γ (everything ships as synopses and
is processed twice), peaks at a mid-range γ, and degrades for very large γ
(huge candidate slices); Dema #1 is at least as fast as the skewed #2/#10
configurations but the differences are minor thanks to window-cut pruning.
"""

from repro.bench.runner import exp_fig8b
from repro.bench.reporting import format_rate, format_table


def test_fig8b_gamma_sweep(benchmark, once):
    gammas = (2, 5, 20, 50, 200, 1000, 5000)
    results = once(benchmark, exp_fig8b, gammas=gammas)

    headers = ["gamma"] + list(results)
    rows = [
        [str(g)] + [format_rate(results[label][g]) for label in results]
        for g in gammas
    ]
    print()
    print(format_table(
        headers, rows, title="Figure 8b — Dema throughput vs γ (q=30%)"
    ))
    benchmark.extra_info["aggregate_by_gamma"] = {
        label: dict(series) for label, series in results.items()
    }

    for label, series in results.items():
        best = max(series.values())
        # Inverted U: both extremes clearly below the peak.
        assert series[2] < 0.5 * best, label
        assert series[5000] < 0.85 * best, label
        # The peak is at an interior γ.
        assert max(series, key=series.get) not in (2, 5000), label
    # Differences between scale configs are minor at every γ (window-cut
    # keeps the candidate set small even under skew).
    for gamma in gammas:
        rates = [series[gamma] for series in results.values()]
        assert max(rates) < 1.25 * min(rates)
