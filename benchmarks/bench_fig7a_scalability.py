"""Figure 7a — throughput scalability with local node count.

Paper claim: Dema's throughput grows close to linearly with node count
(slightly sublinear from growing overlaps/candidates); Desis gains little
and bottlenecks at the root; Scotty is flat.
"""

from repro.bench.runner import exp_fig7a
from repro.bench.reporting import format_rate, format_table


def test_fig7a_scalability(benchmark, once):
    node_counts = (2, 4, 6, 8)
    results = once(benchmark, exp_fig7a, node_counts=node_counts)

    headers = ["nodes"] + list(results)
    rows = [
        [str(n)] + [format_rate(results[s][n]) for s in results]
        for n in node_counts
    ]
    print()
    print(format_table(
        headers, rows, title="Figure 7a — aggregate throughput vs nodes"
    ))
    benchmark.extra_info["aggregate_by_nodes"] = {
        system: dict(series) for system, series in results.items()
    }

    dema = results["dema"]
    # Near-linear: quadrupling nodes at least triples aggregate throughput…
    assert dema[8] > 3.0 * dema[2]
    # …but not super-linear.
    assert dema[8] <= 4.4 * dema[2]
    # Desis bottlenecks at the root: almost no gain from more nodes.
    desis = results["desis"]
    assert desis[8] < 1.4 * desis[2]
    # Scotty is flat.
    scotty = results["scotty"]
    assert scotty[8] < 1.3 * scotty[2]
    # Dema dominates at every point.
    for n in node_counts:
        assert dema[n] > desis[n] > scotty[n]
