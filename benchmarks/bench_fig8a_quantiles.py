"""Figure 8a — Dema throughput across quantile functions (25/50/75 %).

Paper claim: with similar data distributions across local windows, Dema
maintains (roughly equal) high throughput for all quantile functions.
"""

from repro.bench.runner import exp_fig8a
from repro.bench.reporting import format_rate, format_table


def test_fig8a_quantile_functions(benchmark, once):
    results = once(benchmark, exp_fig8a, iterations=5)

    rows = [
        [f"{q:.0%}", format_rate(r.aggregate_rate)]
        for q, r in sorted(results.items())
    ]
    print()
    print(format_table(
        ["quantile", "aggregate"], rows,
        title="Figure 8a — Dema throughput per quantile function",
    ))
    benchmark.extra_info["aggregate_by_quantile"] = {
        str(q): r.aggregate_rate for q, r in results.items()
    }

    rates = [r.aggregate_rate for r in results.values()]
    assert max(rates) < 1.3 * min(rates)
