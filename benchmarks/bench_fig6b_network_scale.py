"""Figure 6b — network cost as local nodes are added.

Paper claim: all systems grow roughly linearly in node count; Dema is
consistently the cheapest; Dema's growth is slightly super-linear because
more nodes create more compound/cover slices and hence candidate events.
"""

from repro.bench.runner import exp_fig6b
from repro.bench.reporting import format_bytes, format_table


def test_fig6b_network_vs_nodes(benchmark, once):
    node_counts = (2, 4, 6, 8)
    results = once(
        benchmark, exp_fig6b,
        node_counts=node_counts, per_node_rate=3_000.0, n_windows=2,
    )

    headers = ["nodes"] + list(results)
    rows = [
        [str(n)] + [format_bytes(results[s][n]) for s in results]
        for n in node_counts
    ]
    print()
    print(format_table(headers, rows, title="Figure 6b — network cost vs nodes"))
    benchmark.extra_info["bytes_by_nodes"] = {
        system: dict(series) for system, series in results.items()
    }

    for system, series in results.items():
        # Roughly linear growth: 4x nodes => between 3x and 6x bytes.
        ratio = series[8] / series[2]
        assert 3.0 < ratio < 6.5, (system, ratio)
    for n in node_counts:
        assert results["dema"][n] < results["desis"][n]
        assert results["dema"][n] < results["scotty"][n]
