"""Shared configuration for the figure-reproduction benchmarks.

Each ``bench_fig*.py`` regenerates one figure of the paper's evaluation:
it runs the experiment once inside ``benchmark.pedantic`` (the interesting
output is the experiment's *measured series*, not the wall time), prints the
same rows the paper plots, attaches them to ``benchmark.extra_info``, and
asserts the paper's qualitative claim so that regressions fail loudly.

Run with::

    pytest benchmarks/ --benchmark-only

Scales are reduced relative to ``python -m repro.bench.runner --all`` so the
whole suite completes in a few minutes; EXPERIMENTS.md records full-scale
numbers from the runner.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once`."""
    return run_once
