"""Figure 5a — maximum sustainable throughput (1 root + 2 local nodes).

Paper claim: Tdigest > Dema > Desis > Scotty; Dema beats both exact
baselines because it ships synopses instead of raw events.
"""

from repro.bench.runner import exp_fig5a
from repro.bench.reporting import format_rate, format_table


def test_fig5a_throughput(benchmark, once):
    results = once(benchmark, exp_fig5a, iterations=6)

    rows = [
        [system, format_rate(r.per_node_rate), format_rate(r.aggregate_rate)]
        for system, r in sorted(
            results.items(), key=lambda kv: -kv[1].aggregate_rate
        )
    ]
    print()
    print(format_table(
        ["system", "per-node", "aggregate"], rows,
        title="Figure 5a — maximum sustainable throughput",
    ))
    benchmark.extra_info["aggregate_events_per_s"] = {
        system: r.aggregate_rate for system, r in results.items()
    }

    # The paper's ordering must hold.
    assert (
        results["tdigest"].aggregate_rate
        > results["dema"].aggregate_rate
        > results["desis"].aggregate_rate
        > results["scotty"].aggregate_rate
    )
    # Dema leads Scotty by a wide margin (the paper reports order-of-
    # magnitude scale differences between decentralized and centralized).
    assert results["dema"].aggregate_rate > 4 * results["scotty"].aggregate_rate
