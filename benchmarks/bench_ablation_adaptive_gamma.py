"""Ablation A2 — adaptive γ vs fixed γ under drifting event rates.

Section 3.3 motivates re-optimizing γ each window.  This ablation drives a
sinusoidally drifting event rate through Dema with pathological fixed
factors (γ=2, γ=2000), a well-chosen fixed factor, and the adaptive
controller, comparing total network bytes.
"""

from repro.bench.runner import exp_ablation_adaptive_gamma
from repro.bench.reporting import format_bytes, format_table


def test_ablation_adaptive_gamma(benchmark, once):
    results = once(benchmark, exp_ablation_adaptive_gamma, n_windows=8)

    rows = [[policy, format_bytes(value)] for policy, value in results.items()]
    print()
    print(format_table(
        ["policy", "network bytes"], rows,
        title="Ablation A2 — adaptive γ under drifting rates",
    ))
    benchmark.extra_info.update(results)

    assert results["adaptive"] < 0.5 * results["fixed γ=2"]
    assert results["adaptive"] < 0.5 * results["fixed γ=2000"]
    # Adaptivity is competitive with the best hand-tuned fixed γ.
    assert results["adaptive"] < 1.25 * results["fixed γ=50"]
