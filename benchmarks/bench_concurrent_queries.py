"""Extension benchmark — concurrent query sharing.

Measures the network cost of serving N same-window quantile queries from
one shared deployment versus N independent deployments.  The shared run
ships synopses once per window and fetches the union of candidate slices,
so its cost grows far slower than linearly in the query count.
"""

from repro.core.concurrent import ConcurrentDemaEngine
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.reporting import format_bytes, format_table
from repro.bench.workloads import bench_topology

#: Spread quantiles: only the synopsis transfer is shared (candidate
#: slices are disjoint across ranks).
SPREAD = (0.1, 0.25, 0.5, 0.75, 0.9)

#: Tight quantiles: the ranks fall in the same slices, so candidate
#: fetches are shared as well.
TIGHT = (0.49, 0.495, 0.5, 0.505, 0.51)


def _compare(quantiles, streams):
    queries = [
        QuantileQuery(q=q, window_length_ms=1000, gamma=120)
        for q in quantiles
    ]
    shared_engine = ConcurrentDemaEngine(queries, bench_topology(2))
    shared = shared_engine.run(streams)
    separate_bytes = 0
    for query in queries:
        engine = DemaEngine(query, bench_topology(2))
        separate_bytes += engine.run(streams).network.total_bytes
    return shared, float(separate_bytes)


def run_experiment():
    streams = workload(
        [1, 2], GeneratorConfig(event_rate=3_000.0, duration_s=3.0, seed=17)
    )
    spread_shared, spread_separate = _compare(SPREAD, streams)
    tight_shared, tight_separate = _compare(TIGHT, streams)

    median_query = QuantileQuery(q=0.5, window_length_ms=1000, gamma=120)
    truth_engine = DemaEngine(median_query, bench_topology(2))
    truth = {o.window: o.value for o in truth_engine.run(streams).outcomes}
    median_outcomes = spread_shared.outcomes_for(SPREAD.index(0.5))
    agreement = all(
        outcome.value == truth[outcome.window] for outcome in median_outcomes
    )
    return {
        "spread_shared_bytes": float(spread_shared.network.total_bytes),
        "spread_separate_bytes": spread_separate,
        "tight_shared_bytes": float(tight_shared.network.total_bytes),
        "tight_separate_bytes": tight_separate,
        "median_agrees": agreement,
    }


def test_concurrent_query_sharing(benchmark, once):
    results = once(benchmark, run_experiment)

    rows = [
        ["5 spread q's, shared", format_bytes(results["spread_shared_bytes"])],
        ["5 spread q's, separate", format_bytes(results["spread_separate_bytes"])],
        ["5 tight q's, shared", format_bytes(results["tight_shared_bytes"])],
        ["5 tight q's, separate", format_bytes(results["tight_separate_bytes"])],
    ]
    print()
    print(format_table(
        ["configuration", "network bytes"], rows,
        title="Extension — concurrent query sharing",
    ))
    benchmark.extra_info.update(
        {k: v for k, v in results.items() if k != "median_agrees"}
    )

    assert results["median_agrees"]
    # Spread quantiles share at least the synopsis traffic...
    assert results["spread_shared_bytes"] < 0.85 * results["spread_separate_bytes"]
    # ...tight quantiles share candidates too.
    assert results["tight_shared_bytes"] < 0.45 * results["tight_separate_bytes"]
