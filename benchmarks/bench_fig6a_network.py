"""Figure 6a — network utilization on a fixed event volume (2 locals).

Paper claim: Dema reduces network cost by up to 99 % versus Scotty/Desis
(the reduction approaches that bound as windows grow — see EXPERIMENTS.md);
Desis ships as much as Scotty; Tdigest ships least of all.
"""

from repro.bench.runner import exp_fig6a
from repro.bench.reporting import format_bytes, format_table


def test_fig6a_network_utilization(benchmark, once):
    results = once(benchmark, exp_fig6a, per_node_rate=20_000.0, n_windows=3)

    rows = [
        [system, format_bytes(data["bytes"]),
         f"{data['reduction_vs_scotty']:.1%}"]
        for system, data in results.items()
    ]
    print()
    print(format_table(
        ["system", "bytes", "reduction vs Scotty"], rows,
        title="Figure 6a — network utilization",
    ))
    benchmark.extra_info["network_bytes"] = {
        system: data["bytes"] for system, data in results.items()
    }

    assert results["dema"]["reduction_vs_scotty"] > 0.93
    assert abs(results["desis"]["reduction_vs_scotty"]) < 0.05
    assert results["tdigest"]["bytes"] < results["dema"]["bytes"]
