"""Micro-benchmarks of Dema's hot components (real wall-time measurements).

Unlike the figure benchmarks (which report simulated metrics), these use
pytest-benchmark conventionally: the statistic of interest is wall time of
the pure-Python data structures on this machine.
"""

import random

from repro.core.slicing import slice_sorted_events
from repro.core.sorted_window import SortedLocalWindow
from repro.core.window_cut import window_cut
from repro.core.engine import dema_quantile
from repro.sketches.qdigest import QDigest
from repro.sketches.tdigest import TDigest
from repro.streaming.events import event_key, make_events

RNG = random.Random(1234)
VALUES_10K = [RNG.gauss(100, 15) for _ in range(10_000)]
EVENTS_10K = make_events(VALUES_10K, node_id=1)
SORTED_10K = sorted(EVENTS_10K, key=event_key)


def test_sorted_window_insert_10k(benchmark):
    def insert_all():
        window = SortedLocalWindow()
        window.add_all(EVENTS_10K)
        return window.seal()

    result = benchmark(insert_all)
    assert len(result) == 10_000


def test_slicing_10k(benchmark):
    result = benchmark(slice_sorted_events, SORTED_10K, 100, 1)
    assert result.n_slices == 100


def test_window_cut_200_slices(benchmark):
    synopses = []
    for node_id in (1, 2):
        events = sorted(
            make_events(
                [RNG.gauss(100 * node_id, 40) for _ in range(10_000)],
                node_id=node_id,
            ),
            key=event_key,
        )
        synopses.extend(slice_sorted_events(events, 100, node_id).synopses)
    result = benchmark(window_cut, synopses, 10_000)
    assert result.candidates


def test_dema_quantile_in_memory_20k(benchmark):
    windows = {
        1: EVENTS_10K,
        2: make_events(
            [RNG.gauss(110, 10) for _ in range(10_000)], node_id=2
        ),
    }
    result = benchmark(dema_quantile, windows, 0.5, 100)
    assert result.global_window_size == 20_000


def test_tdigest_add_10k(benchmark):
    def build():
        digest = TDigest(100)
        digest.add_all(VALUES_10K)
        return digest.quantile(0.5)

    result = benchmark(build)
    assert 90 < result < 110


def test_tdigest_merge_8_digests(benchmark):
    parts = []
    for i in range(8):
        digest = TDigest(100)
        digest.add_all(VALUES_10K[i * 1250 : (i + 1) * 1250])
        parts.append(digest)

    merged = benchmark(TDigest.merge_all, parts)
    assert merged.count == 10_000


def test_kll_add_10k(benchmark):
    from repro.sketches.kll import KllSketch

    def build():
        sketch = KllSketch(200, seed=1)
        sketch.add_all(VALUES_10K)
        return sketch.quantile(0.5)

    result = benchmark(build)
    assert 90 < result < 110


def test_qdigest_add_10k(benchmark):
    universe_values = [int(v * 10) % 4096 for v in VALUES_10K]

    def build():
        digest = QDigest(k=256, depth=12)
        digest.add_all(universe_values)
        return digest.quantile(0.5)

    benchmark(build)
