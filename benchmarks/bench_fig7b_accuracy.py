"""Figure 7b — accuracy (1 − MPE) against Scotty ground truth.

Paper claim: Dema is 100 % accurate; Tdigest is close to, but below, 100 %.
"""

from repro.bench.runner import exp_fig7b
from repro.bench.reporting import format_table


def test_fig7b_accuracy(benchmark, once):
    results = once(benchmark, exp_fig7b, per_node_rate=3_000.0, n_windows=6)

    rows = [[system, f"{value:.4%}"] for system, value in results.items()]
    print()
    print(format_table(
        ["system", "accuracy (1-MPE)"], rows,
        title="Figure 7b — accuracy vs Scotty ground truth",
    ))
    benchmark.extra_info["accuracy"] = dict(results)

    assert results["dema"] == 1.0
    assert 0.97 <= results["tdigest"] < 1.0
