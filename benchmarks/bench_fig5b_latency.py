"""Figure 5b — latency under a common sustainable load.

Paper claim: Scotty highest (central sort burst), Desis lower (offloads
sorting but still ships all events), Dema and Tdigest lowest.
"""

from repro.bench.runner import exp_fig5b
from repro.bench.reporting import format_seconds, format_table


def test_fig5b_latency(benchmark, once):
    results = once(benchmark, exp_fig5b)

    rows = [
        [system, format_seconds(lat.p50), format_seconds(lat.p95)]
        for system, lat in sorted(results.items(), key=lambda kv: kv[1].p50)
    ]
    print()
    print(format_table(
        ["system", "p50", "p95"], rows,
        title="Figure 5b — latency at a common sustainable rate",
    ))
    benchmark.extra_info["latency_p50_s"] = {
        system: lat.p50 for system, lat in results.items()
    }

    assert results["scotty"].p50 > results["desis"].p50
    assert results["desis"].p50 > results["dema"].p50
    assert results["tdigest"].p50 <= 1.2 * results["dema"].p50
