"""Motivation benchmark — the gap Dema fills (paper §1/§2.2).

For decomposable functions (sum), the state of the art ships a
constant-size partial per node per window.  For non-decomposable functions
(median), that option does not exist: before Dema, exact computation meant
shipping every event (Scotty/Desis).  This benchmark measures the gap and
where Dema lands in it.
"""

from repro.baselines.base import build_system
from repro.baselines.partial import build_partial_system
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.reporting import format_bytes, format_table
from repro.bench.workloads import bench_topology, median_query


def run_experiment():
    streams = workload(
        [1, 2], GeneratorConfig(event_rate=10_000.0, duration_s=3.0, seed=41)
    )
    topology = bench_topology(2)
    results = {}
    results["sum (partial agg)"] = float(
        build_partial_system("sum", topology).run(streams).network.total_bytes
    )
    query = median_query(200)
    for label, system in (
        ("median (Dema)", "dema"),
        ("median (Desis)", "desis"),
        ("median (Scotty)", "scotty"),
    ):
        report = build_system(system, query, topology).run(streams)
        results[label] = float(report.network.total_bytes)
    return results


def test_motivation_decomposable_gap(benchmark, once):
    results = once(benchmark, run_experiment)

    rows = [
        [label, format_bytes(value)] for label, value in results.items()
    ]
    print()
    print(format_table(
        ["aggregation", "network bytes"], rows,
        title="Motivation — decomposable vs non-decomposable network cost",
    ))
    benchmark.extra_info.update(results)

    partial = results["sum (partial agg)"]
    dema = results["median (Dema)"]
    scotty = results["median (Scotty)"]
    desis = results["median (Desis)"]
    # Decomposable partials are near-free; raw-event median is the ceiling;
    # Dema closes most of the gap while staying exact.
    assert partial < 0.02 * scotty
    assert dema < 0.10 * scotty
    assert abs(desis - scotty) < 0.05 * scotty
    assert partial < dema
