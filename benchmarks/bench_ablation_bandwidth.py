"""Ablation A3 — bandwidth-constrained uplinks (Wi-Fi-class edge networks).

The paper's introduction motivates Dema with "bandwidth-constrained
environments such as Wi-Fi networks".  The main figures run on the
cluster's 25 Gbit/s links, where network transfer time is negligible; this
ablation re-runs the latency comparison with the local→root uplinks scaled
down to a congested-wireless 500 kbit/s and shows that the raw-event
shippers' latency degrades with the link far more than Dema's.
"""

from repro.bench.generator import GeneratorConfig, workload
from repro.bench.harness import run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.bench.workloads import bench_topology, median_query

#: 500 kbit/s in bytes per second — a congested shared wireless uplink.
WIFI_BPS = 5e5 / 8

#: The paper's 25 Gbit/s datacenter links.
DATACENTER_BPS = 25e9 / 8


def _latencies(uplink_bps):
    query = median_query(gamma=100)
    topology = bench_topology(2, uplink_bandwidth_bps=uplink_bps)
    streams = workload(
        [1, 2], GeneratorConfig(event_rate=700.0, duration_s=6.0, seed=31)
    )
    return {
        system: run_workload(system, query, topology, streams).latency.p50
        for system in ("dema", "scotty", "desis", "tdigest")
    }


def run_experiment():
    return {
        "datacenter": _latencies(DATACENTER_BPS),
        "wifi": _latencies(WIFI_BPS),
    }


def test_ablation_bandwidth(benchmark, once):
    results = once(benchmark, run_experiment)
    datacenter, wifi = results["datacenter"], results["wifi"]

    rows = [
        [
            system,
            format_seconds(datacenter[system]),
            format_seconds(wifi[system]),
            f"{wifi[system] / datacenter[system]:.2f}x",
        ]
        for system in datacenter
    ]
    print()
    print(format_table(
        ["system", "25 Gbit/s p50", "500 kbit/s p50", "slowdown"],
        rows,
        title="Ablation A3 — latency under constrained uplinks",
    ))
    benchmark.extra_info["latency_p50_s"] = results

    # Shrinking the link by five orders of magnitude moves Dema modestly
    # (its synopses and candidates still cross the slow link)...
    assert wifi["dema"] < 1.6 * datacenter["dema"]
    # ...while Desis, which ships the whole window at once, degrades much
    # more in relative terms.
    dema_slowdown = wifi["dema"] / datacenter["dema"]
    desis_slowdown = wifi["desis"] / datacenter["desis"]
    assert desis_slowdown > 1.25 * dema_slowdown
    # And Dema's absolute advantage over Desis widens on the slow link.
    assert (wifi["desis"] - wifi["dema"]) > 1.5 * (
        datacenter["desis"] - datacenter["dema"]
    )
