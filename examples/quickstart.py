"""Quickstart: exact decentralized quantiles in a few lines.

Dema computes exact quantiles over data that lives on several nodes without
ever collecting the full dataset in one place: each node sorts locally and
ships only slice *synopses*; the coordinator identifies the few candidate
slices that can contain the quantile rank and fetches exactly those.

Run with::

    python examples/quickstart.py
"""

import random

from repro import dema_quantile, exact_quantile, make_events


def main() -> None:
    rng = random.Random(7)

    # Three edge nodes observed different (overlapping) value distributions.
    readings = {
        1: [rng.gauss(20.0, 4.0) for _ in range(5_000)],   # cool sensor
        2: [rng.gauss(25.0, 6.0) for _ in range(8_000)],   # warm sensor
        3: [rng.gauss(22.0, 2.0) for _ in range(3_000)],   # steady sensor
    }
    windows = {
        node_id: make_events(values, node_id=node_id)
        for node_id, values in readings.items()
    }
    all_values = [v for values in readings.values() for v in values]

    print("Exact decentralized quantiles with Dema")
    print("=" * 55)
    for q in (0.25, 0.5, 0.75, 0.99):
        result = dema_quantile(windows, q=q, gamma=200)
        oracle = exact_quantile(all_values, q)
        assert result.value == oracle, "Dema must be bit-exact"
        moved = result.transfer_events
        total = result.global_window_size
        print(
            f"q={q:4.0%}  value={result.value:8.3f}  "
            f"(= centralized oracle)  "
            f"events moved: {moved:5d} of {total} ({moved / total:5.1%})"
        )

    print()
    print("The answer is identical to sorting all values centrally, but")
    print("only a few percent of the events ever cross the network.")


if __name__ == "__main__":
    main()
