"""IoT fleet monitoring: continuous median over a simulated edge deployment.

The scenario follows the paper's motivation: a fleet of sensors (here,
DEBS-2013-style soccer-monitoring streams) feed edge nodes, and an analyst
wants the *exact* median sensor value every second.  The example deploys
Dema on the simulated three-layer network, streams several seconds of data
through it, and reports per-window medians together with the network cost
of obtaining them.

Run with::

    python examples/iot_fleet_monitoring.py
"""

from repro import DemaEngine, QuantileQuery, TopologyConfig
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.reporting import format_bytes


def main() -> None:
    n_edge_nodes = 4
    seconds = 5

    # Each edge node aggregates one stadium zone; zone 3 has a hotter
    # sensor (scale rate 2) and zone 4 sees twice the event rate.
    config = GeneratorConfig(event_rate=2_000.0, duration_s=float(seconds),
                             seed=2013)
    streams = workload(
        range(1, n_edge_nodes + 1),
        config,
        scale_rates={3: 2.0},
        event_rates={4: 4_000.0},
    )

    query = QuantileQuery(q=0.5, window_length_ms=1_000, gamma=2,
                          adaptive=True)
    engine = DemaEngine(query, TopologyConfig(n_local_nodes=n_edge_nodes))
    report = engine.run(streams)

    print("Per-second exact medians across the fleet")
    print("=" * 66)
    print(f"{'window':>12}  {'median':>9}  {'events':>7}  "
          f"{'candidates':>10}  {'γ used':>6}")
    for outcome in report.outcomes:
        window = f"[{outcome.window.start/1000:.0f}s,{outcome.window.end/1000:.0f}s)"
        print(
            f"{window:>12}  {outcome.value:9.3f}  "
            f"{outcome.global_window_size:7d}  "
            f"{outcome.candidate_events:10d}  {outcome.gamma_used:6d}"
        )

    total_events = report.events_ingested
    print("-" * 66)
    print(f"events ingested at the edge : {total_events:,}")
    print(f"bytes across the network    : "
          f"{format_bytes(report.network.total_bytes)}")
    print(f"raw forwarding would cost   : "
          f"{format_bytes(total_events * 16)}")
    print(f"median result latency (p50) : {report.latency.p50 * 1e3:.1f} ms")
    print()
    print("Note how the adaptive controller walks γ from the pathological")
    print("initial value (2) to the cost-optimal slice size within a few")
    print("windows, collapsing the candidate-event volume.")


if __name__ == "__main__":
    main()
