"""The flight recorder catching a cluster death, end to end.

A live cluster that dies under chaos normally takes its evidence with it:
the run never reaches the orderly trace-export path.  This example arms
the telemetry plane's flight recorder, scripts an **unrecoverable**
fault — a partition that never heals, against a tolerance policy with a
single reconnect attempt — and lets the cluster die.  The failure latch
trips, the recorder dumps its ring buffer at the moment of death, and we
read the dump back: the last spans and events before the end, plus a
header naming the exception that killed the run.

CI runs this as its flight-recorder smoke and uploads the dump as a
workflow artifact.

Run with::

    python examples/flight_recorder_demo.py [dump-path]
"""

import json
import pathlib
import sys

from repro.bench.generator import GeneratorConfig, workload
from repro.core.query import QuantileQuery
from repro.errors import TransportError
from repro.faults.plan import FaultEvent, FaultPlan, ToleranceConfig
from repro.obs.live import TelemetryConfig
from repro.runtime.cluster import LiveClusterConfig, run_live


def main() -> int:
    dump = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else "flight-recorder.jsonl"
    )

    plan = FaultPlan(
        seed=7,
        horizon_s=2.0,
        # Cut every local off the root at t=0.3s and never heal.
        events=(FaultEvent(at_s=0.3, kind="partition_start"),),
    )
    config = LiveClusterConfig(
        n_locals=2,
        streams_per_local=1,
        query=QuantileQuery(q=0.5, gamma=64),
        transport="memory",
        time_scale=0.3,
        timeout_s=60.0,
        faults=plan,
        # One dial attempt: the locals give up almost immediately.
        tolerance=ToleranceConfig(
            reconnect_base_delay_s=0.01,
            reconnect_max_delay_s=0.02,
            reconnect_jitter=0.0,
            reconnect_max_attempts=1,
        ),
        telemetry=TelemetryConfig(flight_recorder_path=dump),
    )
    # A high event rate so batches flush (and spans land in the ring)
    # in the short interval before the scripted death.
    streams = workload(
        [1, 2], GeneratorConfig(event_rate=2000.0, duration_s=2.0, seed=7)
    )

    print("running a live cluster into an unhealed partition ...")
    try:
        run_live(config, streams)
    except TransportError as exc:
        print(f"cluster died as scripted: {exc}")
    else:
        print("unexpected: the cluster survived the partition", file=sys.stderr)
        return 1

    if not dump.exists() or dump.stat().st_size == 0:
        print("no flight recorder dump was written", file=sys.stderr)
        return 1

    rows = [json.loads(line) for line in dump.read_text().splitlines()]
    header, evidence = rows[0], rows[1:]
    print(f"\nflight recorder dump: {dump} ({dump.stat().st_size} bytes)")
    print(f"  reason:   {header['reason']}")
    print(f"  retained: {header['retained']} of {header['recorded']} records "
          f"(ring capacity {header['capacity']})")
    kinds: dict[str, int] = {}
    for row in evidence:
        kinds[row["kind"]] = kinds.get(row["kind"], 0) + 1
    for kind, count in sorted(kinds.items()):
        print(f"  {kind:>8}: {count}")
    print("\nlast three records before death:")
    for row in evidence[-3:]:
        print(f"  {json.dumps(row)[:100]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
