"""Capacity planning with the analytical model.

The analytical model (validated against the simulator in the test suite)
answers sizing questions in microseconds: how does sustainable throughput
scale with edge nodes?  Where is the γ sweet spot for a given window size?
Which system is the bottleneck at a given deployment size?

Run with::

    python examples/capacity_planning.py
"""

from repro.bench.charts import series_chart
from repro.bench.model import SystemModel
from repro.bench.reporting import format_rate, format_table


def node_scaling() -> None:
    node_counts = [2, 4, 8, 16, 32, 64]
    systems = ("dema", "desis", "scotty")
    series = {system: [] for system in systems}
    for n in node_counts:
        model = SystemModel(n_local_nodes=n, node_ops_per_second=1e5)
        for system in systems:
            series[system].append(model.aggregate_throughput(system))
    print(series_chart(
        node_counts, series, fmt=format_rate,
        title="Aggregate throughput vs edge nodes (analytical)",
    ))
    print()
    rows = []
    for system in systems:
        model = SystemModel(n_local_nodes=64, node_ops_per_second=1e5)
        prediction = model.throughput(system)
        rows.append([
            system, format_rate(prediction.per_node_rate * 64),
            prediction.bottleneck,
        ])
    print(format_table(
        ["system", "aggregate @ 64 nodes", "bottleneck"], rows,
    ))
    print()


def gamma_sweet_spot() -> None:
    gammas = [2, 10, 50, 200, 1000, 5000, 20_000]
    capacities = []
    for gamma in gammas:
        model = SystemModel(
            n_local_nodes=2, node_ops_per_second=1e5, gamma=gamma
        )
        capacities.append(
            min(model.local_capacity("dema"), model.root_capacity("dema"))
        )
    rows = [
        [str(gamma), format_rate(capacity)]
        for gamma, capacity in zip(gammas, capacities)
    ]
    print(format_table(
        ["γ", "Dema per-node capacity"], rows,
        title="The γ inverted-U, analytically",
    ))
    best = gammas[capacities.index(max(capacities))]
    print(f"\nsweet spot near γ={best}: small γ floods the root with "
          "synopses, huge γ floods it with candidate events.")


if __name__ == "__main__":
    node_scaling()
    gamma_sweet_spot()
