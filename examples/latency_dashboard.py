"""Latency dashboard: box-plot quantiles from one shared identification pass.

A typical observability dashboard wants p25/p50/p75/p95/p99 of request
latencies collected on many edge gateways.  The multi-quantile extension
answers all five exactly while shipping the synopses once and fetching the
*union* of the candidate slices, and the sliding-window extension refreshes
the dashboard more often than the window length.

Run with::

    python examples/latency_dashboard.py
"""

import random

from repro import dema_quantile, dema_quantiles, make_events
from repro.core import DemaEngine, QuantileQuery
from repro.network.topology import TopologyConfig
from repro.bench.generator import GeneratorConfig, workload

QS = (0.25, 0.5, 0.75, 0.95, 0.99)


def shared_identification() -> None:
    rng = random.Random(404)
    gateways = {
        gateway_id: [rng.lognormvariate(2.5, 0.7) for _ in range(20_000)]
        for gateway_id in (1, 2, 3, 4)
    }
    windows = {
        gateway_id: make_events(values, node_id=gateway_id)
        for gateway_id, values in gateways.items()
    }

    result = dema_quantiles(windows, QS, gamma=400)
    print("Request-latency dashboard (ms), 4 gateways, 80k samples")
    print("-" * 56)
    for q in QS:
        print(f"  p{q * 100:4.0f}  {result.values[q]:9.2f}")
    individual = sum(
        dema_quantile(windows, q=q, gamma=400).transfer_events for q in QS
    )
    print("-" * 56)
    print(f"events moved (shared pass)      : {result.transfer_events:,}")
    print(f"events moved (5 separate passes): {individual:,}")
    print(f"saving from sharing             : "
          f"{1 - result.transfer_events / individual:.1%}")
    print()


def sliding_refresh() -> None:
    query = QuantileQuery(
        q=0.95, window_length_ms=1_000, window_step_ms=250, gamma=100
    )
    print(f"Sliding refresh: {query.describe()}")
    engine = DemaEngine(query, TopologyConfig(n_local_nodes=2))
    streams = workload(
        [1, 2], GeneratorConfig(event_rate=2_000.0, duration_s=3.0, seed=6)
    )
    report = engine.run(streams)
    print(f"{'window':>16}  {'p95':>8}")
    for outcome in report.outcomes[:8]:
        window = (
            f"[{outcome.window.start / 1000:+.2f}s,"
            f"{outcome.window.end / 1000:.2f}s)"
        )
        print(f"{window:>16}  {outcome.value:8.2f}")
    print(f"... {len(report.outcomes)} overlapping windows total, "
          "each exact over its full 1-second span.")


if __name__ == "__main__":
    shared_identification()
    sliding_refresh()
