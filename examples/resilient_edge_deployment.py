"""A production-flavoured deployment: lossy links, stragglers, full 3-tier.

Real edge networks lose packets and deliver events late.  This example runs
Dema in three progressively harsher settings and shows the answer never
degrades — only the (accounted) network overhead does:

1. clean network, driver-fed locals (the paper's setting);
2. explicit sensor tier — events cross a real simulated link before the
   local node ever sees them;
3. 15 % message loss on every root↔local link, with the retransmission
   protocol turned on.

Run with::

    python examples/resilient_edge_deployment.py
"""

from repro import DemaEngine, QuantileQuery, ReliabilityConfig, TopologyConfig
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.reporting import format_bytes, format_table
from repro.streaming.aggregates import exact_quantile
from repro.streaming.windows import TumblingWindows


def ground_truth(streams):
    assigner = TumblingWindows(1000)
    per_window = {}
    for events in streams.values():
        for event in events:
            per_window.setdefault(
                assigner.window_for(event.timestamp), []
            ).append(event.value)
    return {w: exact_quantile(v, 0.5) for w, v in per_window.items()}


def check(report, truth):
    exact = sum(
        1
        for outcome in report.outcomes
        if outcome.value == truth[outcome.window]
    )
    return f"{exact}/{len(truth)} windows exact"


def main() -> None:
    query = QuantileQuery(q=0.5, window_length_ms=1_000, gamma=60)
    streams = workload(
        [1, 2, 3], GeneratorConfig(event_rate=1_500.0, duration_s=4.0, seed=55)
    )
    truth = ground_truth(streams)
    rows = []

    # 1. Clean network, driver-fed (the paper's evaluation setting).
    engine = DemaEngine(query, TopologyConfig(n_local_nodes=3))
    report = engine.run(streams)
    rows.append([
        "clean network", check(report, truth),
        format_bytes(report.network.total_bytes), "0",
    ])

    # 2. Full three-tier topology: sensors transmit over real links.
    engine = DemaEngine(
        query, TopologyConfig(n_local_nodes=3, streams_per_local=2)
    )
    report = engine.run_via_sensors(streams)
    rows.append([
        "explicit sensor tier", check(report, truth),
        format_bytes(report.network.total_bytes), "0",
    ])

    # 3. 15 % loss on every root<->local message + retransmission protocol.
    engine = DemaEngine(
        query,
        TopologyConfig(n_local_nodes=3, loss_rate=0.15, loss_seed=3),
        reliability=ReliabilityConfig(timeout_s=0.05, max_retries=25),
    )
    report = engine.run(streams)
    dropped = sum(
        channel.stats.dropped
        for channel in engine.simulator.channels.values()
    )
    rows.append([
        "15% message loss", check(report, truth),
        format_bytes(report.network.total_bytes), str(dropped),
    ])

    print(format_table(
        ["setting", "accuracy", "network", "messages lost"],
        rows,
        title="Dema under progressively harsher network conditions",
    ))
    print()
    print("Exactness survives packet loss and real sensor links; the only")
    print("cost is the retransmission traffic the byte counters expose.")


if __name__ == "__main__":
    main()
