"""Record a traced Dema run and export it for Chrome's trace viewer.

Runs the quickstart scenario (two local nodes, four windows of generated
data) under a :class:`~repro.obs.tracer.RecordingTracer`, then writes all
three exporter formats:

* ``quickstart.trace.jsonl``  — lossless span + message records,
* ``quickstart.trace.json``   — Chrome ``trace_event`` format; open it in
  ``chrome://tracing`` or https://ui.perfetto.dev to see per-node compute
  and network lanes on the simulated timeline,
* ``quickstart.prom``         — the metrics registry as Prometheus text.

Finally it prints the per-phase breakdown — the same tables as
``python -m repro report quickstart.trace.jsonl`` — and checks that each
window's phase durations sum to its end-to-end latency.

Run with::

    python examples/trace_inspection.py
"""

from repro.obs.export import (
    trace_records,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.report import format_report, window_breakdown
from repro.obs.scenarios import run_scenario


def main() -> None:
    result = run_scenario("quickstart")
    print(f"scenario: {result.description}")
    print(f"windows : {len(result.report.outcomes)} completed, "
          f"{result.report.events_ingested} events ingested")
    print()

    n_records = write_jsonl("quickstart.trace.jsonl", result.tracer)
    n_events = write_chrome_trace("quickstart.trace.json", result.tracer)
    write_prometheus("quickstart.prom", result.tracer)
    print(f"wrote quickstart.trace.jsonl ({n_records} records)")
    print(f"wrote quickstart.trace.json  ({n_events} Chrome trace events — "
          "load in chrome://tracing or ui.perfetto.dev)")
    print("wrote quickstart.prom        (Prometheus text format)")
    print()

    records = trace_records(result.tracer)
    print(format_report(records))
    print()

    # The root's phase spans are contiguous by construction, so they
    # partition each window's latency exactly.
    for breakdown in window_breakdown(records):
        assert breakdown.is_consistent, breakdown
    print("every window's phases sum to its end-to-end latency ✓")


if __name__ == "__main__":
    main()
