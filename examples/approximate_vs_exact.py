"""Approximate sketches versus exact Dema: the accuracy/network trade-off.

The paper positions Dema against t-digest and q-digest; KLL (the Apache
DataSketches workhorse) joins as the modern representative.  The sketches
ship tiny summaries but answer approximately; Dema ships slightly more
(synopses plus candidate events) and answers exactly.  This example
quantifies that trade-off on one dataset.

Run with::

    python examples/approximate_vs_exact.py
"""

import random

from repro import QDigest, TDigest, dema_quantile, exact_quantile, make_events
from repro.sketches.kll import KllSketch
from repro.bench.reporting import format_bytes, format_table
from repro.streaming.events import EVENT_WIRE_BYTES


def main() -> None:
    rng = random.Random(2025)
    per_node = 40_000
    readings = {
        1: [rng.lognormvariate(3.0, 0.6) for _ in range(per_node)],
        2: [rng.lognormvariate(3.2, 0.5) for _ in range(per_node)],
    }
    all_values = [v for values in readings.values() for v in values]
    q = 0.95
    truth = exact_quantile(all_values, q)

    # --- Dema: exact, ships synopses + candidates ---------------------
    windows = {
        node_id: make_events(values, node_id=node_id)
        for node_id, values in readings.items()
    }
    dema = dema_quantile(windows, q=q, gamma=400)
    dema_bytes = dema.transfer_events * EVENT_WIRE_BYTES

    # --- t-digest: approximate, ships centroids ------------------------
    digests = []
    for values in readings.values():
        digest = TDigest(100)
        digest.add_all(values)
        digests.append(digest)
    merged = TDigest.merge_all(digests)
    tdigest_value = merged.quantile(q)
    tdigest_bytes = sum(len(d.to_centroid_tuples()) * 16 for d in digests)

    # --- KLL: mergeable compactor sketch --------------------------------
    kll_parts = []
    for node_id, values in readings.items():
        sketch = KllSketch(200, seed=node_id)
        sketch.add_all(values)
        kll_parts.append(sketch)
    kll_merged = kll_parts[0]
    kll_merged.merge(kll_parts[1])
    kll_value = kll_merged.quantile(q)
    kll_bytes = sum(len(p.to_weighted_tuples()) * 16 for p in kll_parts)

    # --- q-digest: approximate over a quantized universe ----------------
    quantizers = []
    for values in readings.values():
        quantizer = QDigest.for_range(512, 0.0, max(all_values), depth=14)
        quantizer.add_all(values)
        quantizers.append(quantizer)
    merged_qd = quantizers[0]
    merged_qd.digest.merge(quantizers[1].digest)
    qdigest_value = merged_qd.quantile(q)
    qdigest_bytes = merged_qd.digest.node_count * 12

    def error(value: float) -> str:
        relative = abs(value - truth) / truth
        return "exact" if relative == 0 else f"{relative:.3%}"

    rows = [
        ["dema", f"{dema.value:9.3f}", error(dema.value),
         format_bytes(dema_bytes)],
        ["t-digest", f"{tdigest_value:9.3f}", error(tdigest_value),
         format_bytes(tdigest_bytes)],
        ["kll", f"{kll_value:9.3f}", error(kll_value),
         format_bytes(kll_bytes)],
        ["q-digest", f"{qdigest_value:9.3f}", error(qdigest_value),
         format_bytes(qdigest_bytes)],
    ]
    print(f"95th percentile over {len(all_values):,} readings "
          f"(ground truth {truth:.3f})")
    print(format_table(["method", "answer", "error", "bytes shipped"], rows))
    print()
    print("Sketches ship the least but drift from the truth; Dema pays a")
    print("small, bounded premium in bytes for a bit-exact answer.")


if __name__ == "__main__":
    main()
