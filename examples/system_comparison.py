"""Side-by-side comparison of Dema and the paper's baselines.

Runs the identical workload through all four systems on identical simulated
hardware — Scotty (centralized), Desis (decentralized sorting), Tdigest
(approximate sketches) and Dema — and prints the comparison the paper's
evaluation section is built around: result agreement, network bytes, and
result latency.

Run with::

    python examples/system_comparison.py
"""

from repro import QuantileQuery, build_system
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.reporting import format_bytes, format_seconds, format_table
from repro.bench.workloads import bench_topology


def main() -> None:
    query = QuantileQuery(q=0.5, window_length_ms=1_000, gamma=100)
    topology = bench_topology(2)
    config = GeneratorConfig(event_rate=3_000.0, duration_s=4.0, seed=99)
    streams = workload([1, 2], config)

    reports = {}
    for system in ("scotty", "desis", "tdigest", "dema"):
        engine = build_system(system, query, topology)
        reports[system] = engine.run(streams)

    truth = {o.window: o.value for o in reports["scotty"].outcomes}

    rows = []
    for system, report in reports.items():
        worst_error = max(
            abs(o.value - truth[o.window]) / abs(truth[o.window])
            for o in report.outcomes
            if o.value is not None
        )
        rows.append([
            system,
            "exact" if worst_error == 0 else f"{worst_error:.3%} off",
            format_bytes(report.network.total_bytes),
            format_seconds(report.latency.p50),
        ])

    print(format_table(
        ["system", "worst error vs truth", "network", "latency p50"],
        rows,
        title="Identical 4-second workload, 2 edge nodes, 1-second medians",
    ))
    print()
    dema_bytes = reports["dema"].network.total_bytes
    scotty_bytes = reports["scotty"].network.total_bytes
    print(
        f"Dema matched the centralized ground truth on every window while "
        f"moving {1 - dema_bytes / scotty_bytes:.1%} fewer bytes."
    )


if __name__ == "__main__":
    main()
