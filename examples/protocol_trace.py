"""Watch the Dema protocol on the wire, message by message.

Attaches a trace hook to the simulator and runs one tiny window through a
two-node deployment, printing every message: the synopsis batches of the
identification step, the candidate requests, the candidate events of the
calculation step — and how few bytes the whole exchange takes compared to
the raw data.

Run with::

    python examples/protocol_trace.py
"""

from repro import DemaEngine, QuantileQuery, TopologyConfig, make_events
from repro.network.simulator import MessageTrace


def main() -> None:
    trace: list[MessageTrace] = []
    query = QuantileQuery(q=0.5, window_length_ms=1_000, gamma=4)
    engine = DemaEngine(
        query, TopologyConfig(n_local_nodes=2), trace=trace.append
    )

    # Two tiny local windows with overlapping value ranges.
    streams = {
        1: make_events([12, 3, 7, 15, 9, 1, 11, 5], node_id=1,
                       timestamp_step=100),
        2: make_events([8, 14, 2, 10, 6, 13, 4, 16], node_id=2,
                       timestamp_step=100),
    }
    report = engine.run(streams)

    print(f"query   : {query.describe()}")
    print(f"result  : median = {report.outcomes[0].value} over "
          f"{report.outcomes[0].global_window_size} events")
    print()
    print("protocol trace (root is node 0):")
    for entry in trace:
        print("  " + entry.describe())
    print()
    total = sum(entry.message.wire_bytes for entry in trace)
    raw = sum(len(events) for events in streams.values()) * 16
    print(f"total on the wire : {total} B")
    print(f"raw forwarding    : {raw} B")
    print()
    print(f"On a toy 16-event window the protocol overhead dominates "
          f"({total / raw:.0%} of raw) — which is exactly the Section 3.3 "
          "cost model's point: γ and the window size must be in proportion. "
          "At realistic window sizes the same exchange costs a few percent "
          "of raw (Figure 6a).")


if __name__ == "__main__":
    main()
