"""Walkthrough of the adaptive slice factor (Section 3.3).

Shows the cost model ``Cost(γ) = 2·l_G/γ + m·(γ-2)`` in action: how the
modelled transfer cost varies with γ for a given window, where the
closed-form optimum lies, and how the controller tracks a drifting workload
window by window.

Run with::

    python examples/adaptive_gamma_walkthrough.py
"""

import math

from repro import AdaptiveGammaController, optimal_gamma
from repro.core.adaptive import transfer_cost


def cost_curve() -> None:
    l_g, m = 100_000, 4
    print(f"Transfer-cost model for a window of l_G={l_g:,} events, "
          f"m={m} candidate slices")
    print(f"{'γ':>8}  {'synopsis events':>15}  {'candidate events':>16}  "
          f"{'total':>9}")
    for gamma in (2, 10, 50, 100, 224, 500, 2_000, 10_000, 50_000):
        synopsis_part = 2 * l_g / gamma
        candidate_part = m * (gamma - 2)
        total = transfer_cost(gamma, l_g, m)
        marker = "  <- optimum region" if gamma == 224 else ""
        print(f"{gamma:>8}  {synopsis_part:15,.0f}  {candidate_part:16,.0f}  "
              f"{total:9,.0f}{marker}")
    best = optimal_gamma(l_g, m)
    print(f"\nClosed form: γ* = sqrt(2·l_G/m) = "
          f"{math.sqrt(2 * l_g / m):,.1f} -> integer optimum {best}\n")


def drifting_workload() -> None:
    controller = AdaptiveGammaController(gamma=100)
    print("Controller tracking a drifting event rate (γ re-optimized per window)")
    print(f"{'window':>7}  {'l_G observed':>12}  {'m':>3}  {'next γ':>7}  "
          f"{'modelled cost':>13}")
    for window_index in range(8):
        l_g = int(50_000 * (1.0 + 0.8 * math.sin(window_index / 1.5)))
        m = 3 + window_index % 3
        gamma = controller.observe(l_g, m)
        print(f"{window_index:>7}  {l_g:>12,}  {m:>3}  {gamma:>7}  "
              f"{controller.expected_cost():>13,.0f}")
    print()
    print("γ shrinks when windows shrink (fewer synopses needed) and grows")
    print("again as the rate recovers — no operator tuning required.")


if __name__ == "__main__":
    cost_curve()
    drifting_workload()
