"""Legacy setup shim.

Kept so that ``pip install -e .`` works on offline machines without the
``wheel`` package; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
