"""Tests for the from-scratch merging t-digest."""

import math
import random

import pytest

from repro.errors import SketchError
from repro.sketches.scale_functions import K0
from repro.sketches.tdigest import Centroid, TDigest


def uniform_data(n=10_000, seed=0):
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


class TestCentroid:
    def test_invalid_weight_rejected(self):
        with pytest.raises(SketchError):
            Centroid(mean=1.0, weight=0.0)


class TestBasics:
    def test_count_tracks_additions(self):
        digest = TDigest(100)
        digest.add_all([1.0, 2.0, 3.0])
        assert digest.count == 3

    def test_min_max_exact(self):
        digest = TDigest(100)
        digest.add_all([5.0, -2.0, 7.5])
        assert digest.min == -2.0
        assert digest.max == 7.5

    def test_empty_digest_queries_rejected(self):
        digest = TDigest(100)
        with pytest.raises(SketchError):
            digest.quantile(0.5)
        with pytest.raises(SketchError):
            digest.cdf(0.0)
        with pytest.raises(SketchError):
            digest.min

    def test_invalid_q_rejected(self):
        digest = TDigest(100)
        digest.add(1.0)
        with pytest.raises(SketchError):
            digest.quantile(1.5)

    def test_invalid_compression_rejected(self):
        with pytest.raises(SketchError):
            TDigest(5)

    def test_invalid_weight_rejected(self):
        digest = TDigest(100)
        with pytest.raises(SketchError):
            digest.add(1.0, weight=0.0)

    def test_single_value(self):
        digest = TDigest(100)
        digest.add(42.0)
        assert digest.quantile(0.5) == 42.0

    def test_weighted_add(self):
        digest = TDigest(100)
        digest.add(1.0, weight=99.0)
        digest.add(100.0, weight=1.0)
        assert digest.count == 100.0
        assert digest.quantile(0.5) < 10.0


class TestCompression:
    def test_centroid_count_bounded(self):
        data = uniform_data(50_000)
        digest = TDigest(100)
        digest.add_all(data)
        # Dunning & Ertl bound: at most ~2*delta centroids after merging.
        assert digest.centroid_count <= 2 * 100

    def test_total_weight_preserved(self):
        data = uniform_data(10_000)
        digest = TDigest(100)
        digest.add_all(data)
        assert sum(c.weight for c in digest.centroids()) == pytest.approx(
            len(data)
        )

    def test_centroids_sorted_by_mean(self):
        digest = TDigest(100)
        digest.add_all(uniform_data(5_000))
        means = [c.mean for c in digest.centroids()]
        assert means == sorted(means)

    def test_custom_scale_function(self):
        digest = TDigest(100, scale=K0(100))
        digest.add_all(uniform_data(5_000))
        assert digest.centroid_count <= 200


class TestAccuracy:
    @pytest.mark.parametrize("q", [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99])
    def test_rank_error_small(self, q):
        data = uniform_data(20_000, seed=3)
        digest = TDigest(100)
        digest.add_all(data)
        estimate = digest.quantile(q)
        actual_rank = sum(1 for v in data if v <= estimate) / len(data)
        assert abs(actual_rank - q) < 0.02

    def test_extreme_quantiles_bounded_by_min_max(self):
        data = uniform_data(5_000)
        digest = TDigest(100)
        digest.add_all(data)
        assert digest.quantile(0.0) >= digest.min - 1e-12
        assert digest.quantile(1.0) <= digest.max + 1e-12

    def test_quantile_monotone_in_q(self):
        digest = TDigest(100)
        digest.add_all(uniform_data(5_000, seed=9))
        qs = [i / 50 for i in range(51)]
        values = [digest.quantile(q) for q in qs]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_gaussian_median(self):
        rng = random.Random(4)
        data = [rng.gauss(10, 2) for _ in range(30_000)]
        digest = TDigest(100)
        digest.add_all(data)
        assert digest.quantile(0.5) == pytest.approx(10.0, abs=0.1)


class TestCdf:
    def test_cdf_bounds(self):
        digest = TDigest(100)
        digest.add_all(uniform_data(5_000))
        assert digest.cdf(-1.0) == 0.0
        assert digest.cdf(2.0) == 1.0

    def test_cdf_approximates_uniform(self):
        digest = TDigest(100)
        digest.add_all(uniform_data(20_000, seed=5))
        for x in (0.1, 0.5, 0.9):
            assert digest.cdf(x) == pytest.approx(x, abs=0.02)

    def test_cdf_monotone(self):
        digest = TDigest(100)
        digest.add_all(uniform_data(5_000, seed=6))
        xs = [i / 50 for i in range(51)]
        cdfs = [digest.cdf(x) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))

    def test_cdf_quantile_roundtrip(self):
        digest = TDigest(200)
        digest.add_all(uniform_data(20_000, seed=7))
        for q in (0.2, 0.5, 0.8):
            assert digest.cdf(digest.quantile(q)) == pytest.approx(q, abs=0.02)


class TestMerging:
    def test_merge_preserves_count_and_extremes(self):
        data = uniform_data(10_000, seed=8)
        left, right = TDigest(100), TDigest(100)
        left.add_all(data[:5000])
        right.add_all(data[5000:])
        left.merge(right)
        assert left.count == 10_000
        assert left.min == min(data)
        assert left.max == max(data)

    def test_merged_accuracy_close_to_single(self):
        data = uniform_data(20_000, seed=9)
        whole = TDigest(100)
        whole.add_all(data)
        parts = [TDigest(100) for _ in range(4)]
        for i, part in enumerate(parts):
            part.add_all(data[i * 5000 : (i + 1) * 5000])
        merged = TDigest.merge_all(parts)
        for q in (0.25, 0.5, 0.75):
            assert merged.quantile(q) == pytest.approx(
                whole.quantile(q), abs=0.02
            )

    def test_merge_empty_is_noop(self):
        digest = TDigest(100)
        digest.add_all([1.0, 2.0])
        digest.merge(TDigest(100))
        assert digest.count == 2

    def test_merge_all_empty(self):
        merged = TDigest.merge_all([TDigest(100), TDigest(100)])
        assert merged.count == 0


class TestSerialization:
    def test_roundtrip(self):
        digest = TDigest(100)
        digest.add_all(uniform_data(5_000, seed=10))
        pairs = digest.to_centroid_tuples()
        restored = TDigest.from_centroid_tuples(pairs)
        assert restored.count == pytest.approx(digest.count)
        assert restored.quantile(0.5) == pytest.approx(
            digest.quantile(0.5), abs=0.02
        )

    def test_empty_roundtrip(self):
        restored = TDigest.from_centroid_tuples(())
        assert restored.count == 0

    def test_serialized_size_much_smaller_than_data(self):
        digest = TDigest(100)
        digest.add_all(uniform_data(100_000, seed=11))
        assert len(digest.to_centroid_tuples()) < 1000

    def test_roundtrip_with_extremes_preserves_min_max(self):
        # A tail centroid's mean sits strictly inside the data range once
        # it holds more than one point; only the shipped exact extremes
        # keep q→0 / q→1 answers exact after deserialization.
        digest = TDigest(100)
        digest.add_all(uniform_data(5_000, seed=12))
        restored = TDigest.from_centroid_tuples(
            digest.to_centroid_tuples(),
            minimum=digest.min,
            maximum=digest.max,
        )
        assert restored.min == digest.min
        assert restored.max == digest.max
        for q in (1e-6, 1.0 - 1e-9):
            assert restored.quantile(q) == pytest.approx(
                digest.quantile(q), abs=1e-9
            )

    def test_roundtrip_without_extremes_flattens_tails(self):
        # The contract violation the extremes fix: without them the
        # restored digest can only bound the range by centroid means.
        digest = TDigest(100)
        digest.add_all(uniform_data(5_000, seed=13))
        restored = TDigest.from_centroid_tuples(digest.to_centroid_tuples())
        # For this seed the first centroid holds several points, so its
        # mean sits strictly above the true minimum; a singleton tail
        # centroid (weight 1) legitimately coincides with the extreme.
        assert digest.centroids()[0].weight > 1
        assert restored.min > digest.min
        assert restored.max <= digest.max


class TestFractionalWeights:
    def test_merge_preserves_fractional_total_weight(self):
        # Regression: the compression pass used to truncate the merged
        # total to int before sizing centroids, so digests whose weights
        # came from upstream merges (fractional) compressed against the
        # wrong capacity.  The total must flow through as a float.
        pairs = tuple((float(i), 0.7) for i in range(10))
        left = TDigest.from_centroid_tuples(pairs, minimum=0.0, maximum=9.0)
        right = TDigest.from_centroid_tuples(
            tuple((float(i) + 0.5, 0.7) for i in range(10)),
            minimum=0.5, maximum=9.5,
        )
        left.merge(right)
        assert left.count == pytest.approx(14.0)
        assert sum(c.weight for c in left.centroids()) == pytest.approx(14.0)
        assert left.min == 0.0
        assert left.max == 9.5
        assert 0.0 <= left.quantile(0.5) <= 9.5

    def test_unit_weight_workloads_unaffected(self):
        # For integer totals the float total is numerically identical, so
        # ordinary (weight-1) digests produce the same centroids as before.
        data = uniform_data(2_000, seed=14)
        digest = TDigest(100)
        digest.add_all(data)
        total = sum(c.weight for c in digest.centroids())
        assert total == float(int(total)) == 2_000.0
