"""Tests for t-digest scale functions."""

import pytest

from repro.errors import SketchError
from repro.sketches.scale_functions import K0, K1, K2


@pytest.mark.parametrize("cls", [K0, K1, K2])
class TestAllScaleFunctions:
    def test_monotone_in_q(self, cls):
        scale = cls(100.0)
        ks = [scale.k(q / 100, 10_000) for q in range(1, 100)]
        assert all(a < b for a, b in zip(ks, ks[1:]))

    def test_invalid_delta_rejected(self, cls):
        with pytest.raises(SketchError):
            cls(0.0)

    def test_max_weight_at_least_one(self, cls):
        scale = cls(100.0)
        for q in (0.001, 0.5, 0.999):
            assert scale.max_centroid_weight(q, 100_000) >= 1.0

    def test_delta_exposed(self, cls):
        assert cls(42.0).delta == 42.0


class TestK0:
    def test_uniform_budget(self):
        scale = K0(100.0)
        mid = scale.max_centroid_weight(0.5, 10_000)
        edge = scale.max_centroid_weight(0.05, 10_000)
        assert mid == pytest.approx(edge, rel=0.05)

    def test_k_linear(self):
        scale = K0(100.0)
        assert scale.k(0.5, 1000) == pytest.approx(25.0)


class TestK1:
    def test_tails_get_smaller_centroids(self):
        scale = K1(100.0)
        mid = scale.max_centroid_weight(0.5, 100_000)
        tail = scale.max_centroid_weight(0.01, 100_000)
        assert tail < mid / 3

    def test_bounded_range(self):
        scale = K1(100.0)
        assert scale.k(0.0, 1000) == pytest.approx(-25.0)
        assert scale.k(1.0, 1000) == pytest.approx(25.0)

    def test_clamps_out_of_range_q(self):
        scale = K1(100.0)
        assert scale.k(-0.1, 1000) == scale.k(0.0, 1000)
        assert scale.k(1.1, 1000) == scale.k(1.0, 1000)


class TestK2:
    def test_even_stronger_tail_bias_than_k1(self):
        k1, k2 = K1(100.0), K2(100.0)
        n = 100_000
        ratio_k1 = k1.max_centroid_weight(0.001, n) / k1.max_centroid_weight(0.5, n)
        ratio_k2 = k2.max_centroid_weight(0.001, n) / k2.max_centroid_weight(0.5, n)
        assert ratio_k2 < ratio_k1

    def test_finite_at_extremes(self):
        scale = K2(100.0)
        assert scale.k(0.0, 1000) == scale.k(0.0, 1000)  # not NaN
        assert abs(scale.k(0.0, 1000)) < float("inf")
