"""Tests for the from-scratch KLL sketch."""

import random

import pytest

from repro.errors import SketchError
from repro.sketches.kll import KllSketch


def uniform(n=20_000, seed=0):
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


class TestBasics:
    def test_count_and_extremes(self):
        sketch = KllSketch(64)
        sketch.add_all([3.0, -1.0, 7.0])
        assert sketch.count == 3
        assert sketch.min == -1.0
        assert sketch.max == 7.0

    def test_empty_queries_rejected(self):
        sketch = KllSketch(64)
        with pytest.raises(SketchError):
            sketch.quantile(0.5)
        with pytest.raises(SketchError):
            sketch.rank(0.0)
        with pytest.raises(SketchError):
            sketch.min

    def test_invalid_k_rejected(self):
        with pytest.raises(SketchError):
            KllSketch(4)

    def test_invalid_q_rejected(self):
        sketch = KllSketch(64)
        sketch.add(1.0)
        with pytest.raises(SketchError):
            sketch.quantile(1.5)

    def test_extreme_quantiles_exact(self):
        sketch = KllSketch(64)
        sketch.add_all(uniform(5_000))
        assert sketch.quantile(0.0) == sketch.min
        assert sketch.quantile(1.0) == sketch.max

    def test_small_input_near_exact(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        sketch = KllSketch(64)
        sketch.add_all(values)
        assert sketch.quantile(0.5) == 3.0


class TestCompaction:
    def test_footprint_sublinear(self):
        sketch = KllSketch(100)
        sketch.add_all(uniform(50_000))
        assert sketch.size < 600

    def test_weight_conserved(self):
        sketch = KllSketch(100)
        sketch.add_all(uniform(12_345))
        total_weight = sum(w for _, w in sketch.to_weighted_tuples())
        assert total_weight == 12_345

    def test_deterministic_per_seed(self):
        data = uniform(5_000, seed=2)
        a, b = KllSketch(64, seed=9), KllSketch(64, seed=9)
        a.add_all(data)
        b.add_all(data)
        assert a.to_weighted_tuples() == b.to_weighted_tuples()


class TestAccuracy:
    @pytest.mark.parametrize("q", [0.05, 0.25, 0.5, 0.75, 0.95])
    def test_rank_error_within_bound(self, q):
        data = uniform(30_000, seed=3)
        sketch = KllSketch(200)
        sketch.add_all(data)
        estimate = sketch.quantile(q)
        true_rank = sum(1 for v in data if v <= estimate) / len(data)
        assert abs(true_rank - q) <= 2 * sketch.rank_error_bound()

    def test_quantile_monotone(self):
        sketch = KllSketch(100)
        sketch.add_all(uniform(10_000, seed=4))
        values = [sketch.quantile(i / 20) for i in range(21)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_rank_quantile_consistency(self):
        sketch = KllSketch(200)
        sketch.add_all(uniform(20_000, seed=5))
        for q in (0.2, 0.5, 0.8):
            assert sketch.rank(sketch.quantile(q)) == pytest.approx(
                q, abs=2 * sketch.rank_error_bound()
            )


class TestMerge:
    def test_merge_conserves_count_and_extremes(self):
        data = uniform(10_000, seed=6)
        a, b = KllSketch(100, seed=1), KllSketch(100, seed=2)
        a.add_all(data[:5_000])
        b.add_all(data[5_000:])
        a.merge(b)
        assert a.count == 10_000
        assert a.min == min(data)
        assert a.max == max(data)

    def test_merged_accuracy(self):
        data = uniform(20_000, seed=7)
        parts = [KllSketch(200, seed=i) for i in range(4)]
        for i, value in enumerate(data):
            parts[i % 4].add(value)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        for q in (0.25, 0.5, 0.75):
            estimate = merged.quantile(q)
            true_rank = sum(1 for v in data if v <= estimate) / len(data)
            assert abs(true_rank - q) <= 3 * merged.rank_error_bound()

    def test_merge_empty_noop(self):
        sketch = KllSketch(64)
        sketch.add_all([1.0, 2.0])
        sketch.merge(KllSketch(64))
        assert sketch.count == 2


class TestSerialization:
    def test_roundtrip(self):
        sketch = KllSketch(100)
        sketch.add_all(uniform(10_000, seed=8))
        restored = KllSketch.from_weighted_tuples(
            sketch.to_weighted_tuples(), k=100
        )
        assert restored.count == sketch.count
        assert restored.quantile(0.5) == pytest.approx(
            sketch.quantile(0.5), abs=0.05
        )

    def test_empty_roundtrip(self):
        assert KllSketch.from_weighted_tuples(()).count == 0

    def test_invalid_weight_rejected(self):
        with pytest.raises(SketchError):
            KllSketch.from_weighted_tuples([(1.0, 3)])
        with pytest.raises(SketchError):
            KllSketch.from_weighted_tuples([(1.0, 0)])


class TestBatchEquivalence:
    def test_add_all_bit_identical_to_per_value_adds(self):
        # The chunked fast path must hit the same compaction points with
        # the same RNG coins as the per-value loop: identical retained
        # items, weights, and extremes — not merely similar ranks.
        data = uniform(12_347, seed=9)
        batched = KllSketch(200, seed=3)
        batched.add_all(data)
        single = KllSketch(200, seed=3)
        for value in data:
            single.add(value)
        assert batched.to_weighted_tuples() == single.to_weighted_tuples()
        assert (batched.min, batched.max) == (single.min, single.max)
        assert batched.count == single.count

    def test_interleaved_batches_match_one_stream(self):
        data = uniform(5_001, seed=10)
        interleaved = KllSketch(200, seed=3)
        interleaved.add_all(data[:100])
        for value in data[100:150]:
            interleaved.add(value)
        interleaved.add_all(data[150:])
        single = KllSketch(200, seed=3)
        for value in data:
            single.add(value)
        assert interleaved.to_weighted_tuples() == single.to_weighted_tuples()
