"""Tests for the from-scratch q-digest."""

import math
import random

import pytest

from repro.errors import SketchError
from repro.sketches.qdigest import QDigest


class TestBasics:
    def test_add_and_count(self):
        digest = QDigest(k=16, depth=8)
        digest.add_all([1, 2, 3, 3])
        assert digest.n == 4

    def test_universe_size(self):
        assert QDigest(k=4, depth=10).universe == 1024

    def test_out_of_universe_rejected(self):
        digest = QDigest(k=4, depth=4)
        with pytest.raises(SketchError):
            digest.add(16)
        with pytest.raises(SketchError):
            digest.add(-1)

    def test_invalid_count_rejected(self):
        with pytest.raises(SketchError):
            QDigest(k=4, depth=4).add(1, count=0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SketchError):
            QDigest(k=0)
        with pytest.raises(SketchError):
            QDigest(k=4, depth=0)
        with pytest.raises(SketchError):
            QDigest(k=4, depth=63)

    def test_empty_query_rejected(self):
        with pytest.raises(SketchError):
            QDigest(k=4).quantile(0.5)

    def test_invalid_q_rejected(self):
        digest = QDigest(k=4)
        digest.add(1)
        with pytest.raises(SketchError):
            digest.quantile(0.0)


class TestCompression:
    def test_node_count_bounded(self):
        rng = random.Random(0)
        digest = QDigest(k=32, depth=12)
        for _ in range(20_000):
            digest.add(rng.randrange(4096))
        digest.compress()
        # Shrivastava et al.: at most 3k nodes after compression.
        assert digest.node_count <= 3 * 32 + 32  # small slack for laziness

    def test_count_preserved_by_compress(self):
        rng = random.Random(1)
        digest = QDigest(k=8, depth=10)
        for _ in range(5_000):
            digest.add(rng.randrange(1024))
        before = digest.n
        digest.compress()
        assert digest.n == before

    def test_rank_error_bound_formula(self):
        digest = QDigest(k=100, depth=10)
        for value in range(1000):
            digest.add(value)
        assert digest.rank_error_bound() == pytest.approx(1000 * 10 / 100)


class TestAccuracy:
    @pytest.mark.parametrize("q", [0.1, 0.25, 0.5, 0.75, 0.9])
    def test_rank_error_within_bound(self, q):
        rng = random.Random(2)
        values = [rng.randrange(1 << 12) for _ in range(20_000)]
        digest = QDigest(k=256, depth=12)
        digest.add_all(values)
        estimate = digest.quantile(q)
        true_rank = math.ceil(q * len(values))
        rank_lo = sum(1 for v in values if v < estimate)
        rank_hi = sum(1 for v in values if v <= estimate)
        bound = digest.rank_error_bound()
        assert rank_lo - bound <= true_rank <= rank_hi + bound

    def test_exact_on_tiny_input(self):
        digest = QDigest(k=1000, depth=6)
        digest.add_all([1, 2, 3, 4, 5])
        assert digest.quantile(0.5) == 3

    def test_quantile_monotone(self):
        rng = random.Random(3)
        digest = QDigest(k=64, depth=10)
        for _ in range(5_000):
            digest.add(rng.randrange(1024))
        values = [digest.quantile(q / 20) for q in range(1, 21)]
        assert all(a <= b for a, b in zip(values, values[1:]))


class TestMerging:
    def test_merge_counts(self):
        a, b = QDigest(k=16, depth=8), QDigest(k=16, depth=8)
        a.add_all([1, 2, 3])
        b.add_all([4, 5])
        a.merge(b)
        assert a.n == 5

    def test_merge_depth_mismatch_rejected(self):
        with pytest.raises(SketchError):
            QDigest(k=16, depth=8).merge(QDigest(k=16, depth=9))

    def test_merged_accuracy_within_bound(self):
        rng = random.Random(4)
        values = [rng.randrange(1 << 10) for _ in range(10_000)]
        parts = [QDigest(k=128, depth=10) for _ in range(4)]
        for i, value in enumerate(values):
            parts[i % 4].add(value)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        assert merged.n == len(values)
        estimate = merged.quantile(0.5)
        true_rank = math.ceil(0.5 * len(values))
        rank_lo = sum(1 for v in values if v < estimate)
        rank_hi = sum(1 for v in values if v <= estimate)
        bound = merged.rank_error_bound()
        assert rank_lo - bound <= true_rank <= rank_hi + bound


class TestQuantizer:
    def test_real_values_roundtrip(self):
        rng = random.Random(5)
        values = [rng.uniform(-10, 10) for _ in range(20_000)]
        quantizer = QDigest.for_range(256, -10, 10, depth=12)
        quantizer.add_all(values)
        estimate = quantizer.quantile(0.5)
        ordered = sorted(values)
        true_median = ordered[len(ordered) // 2]
        assert estimate == pytest.approx(true_median, abs=0.5)

    def test_values_clamped_to_range(self):
        quantizer = QDigest.for_range(16, 0, 1, depth=8)
        quantizer.add(5.0)  # clamped to 1.0
        quantizer.add(-5.0)  # clamped to 0.0
        assert quantizer.digest.n == 2

    def test_invalid_range_rejected(self):
        with pytest.raises(SketchError):
            QDigest.for_range(16, 1.0, 1.0)
