"""Chaos runner substrate dispatch: scenario/flag validation.

The runner routes each scenario by its substrate — flat, mesh, or
query — and must reject impossible combinations up front instead of
booting a cluster that cannot exercise the fault: mesh and query
scenarios live only on the live substrate, and the mesh-only flags
are meaningless on a flat topology.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults.runner import run_chaos
from repro.faults.scenarios import SCENARIOS


class TestSubstrateDispatch:
    @pytest.mark.parametrize(
        "scenario", ["kill-shard", "kill-shard-with-relay"]
    )
    def test_mesh_scenario_rejects_sim_mode(self, scenario):
        with pytest.raises(ConfigurationError, match="live substrate"):
            run_chaos(scenario, mode="sim")

    def test_query_scenario_rejects_sim_mode(self):
        with pytest.raises(ConfigurationError, match="live substrate"):
            run_chaos("driver-drop", mode="sim")

    def test_flat_scenario_rejects_mesh_flags(self):
        with pytest.raises(ConfigurationError, match="mesh scenarios only"):
            run_chaos("crash-reconnect", mode="sim", shards=2)
        with pytest.raises(ConfigurationError, match="mesh scenarios only"):
            run_chaos("crash-reconnect", mode="sim", relay_fanin=3)

    def test_single_shard_mesh_rejected(self):
        """A lone root has no successor — refuse before booting."""
        with pytest.raises(ConfigurationError, match="at least 2 shards"):
            run_chaos("kill-shard", mode="live", shards=1)

    def test_substrates_are_known(self):
        assert {s.substrate for s in SCENARIOS.values()} <= {
            "flat",
            "mesh",
            "query",
        }
