"""Fault plan tests: validation, determinism and schedule semantics."""

import pytest

from repro.core.reliability import ReliabilityConfig
from repro.errors import ConfigurationError
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    ToleranceConfig,
    describe_event,
)
from repro.faults.scenarios import SCENARIOS, build_plan


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultEvent(at_s=1.0, kind="meteor-strike", node=1)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match="fault time"):
            FaultEvent(at_s=-0.1, kind="crash", node=1)

    @pytest.mark.parametrize("kind", ["crash", "restart", "drop_link"])
    def test_node_scoped_kinds_need_a_node(self, kind):
        with pytest.raises(ConfigurationError, match="needs a target node"):
            FaultEvent(at_s=1.0, kind=kind)

    @pytest.mark.parametrize("kind", ["partition_start", "partition_heal"])
    def test_partitions_take_no_node(self, kind):
        with pytest.raises(ConfigurationError, match="takes no target node"):
            FaultEvent(at_s=1.0, kind=kind, node=1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError, match="duration"):
            FaultEvent(at_s=1.0, kind="drop_link", node=1, duration_s=-1.0)


class TestDescribeEvent:
    def test_node_scoped_format(self):
        event = FaultEvent(at_s=1.25, kind="crash", node=2)
        assert describe_event(event) == "crash local 2 @1.250s"

    def test_duration_suffix(self):
        event = FaultEvent(
            at_s=0.5, kind="drop_link", node=1, duration_s=0.125
        )
        assert describe_event(event) == "drop_link local 1 @0.500s for 0.125s"

    def test_partition_has_no_target(self):
        event = FaultEvent(at_s=2.0, kind="partition_start")
        assert describe_event(event) == "partition_start @2.000s"

    def test_kill_shard_names_a_shard_not_a_local(self):
        event = FaultEvent(at_s=1.5, kind="kill_shard", node=0)
        assert describe_event(event) == "kill_shard shard 0 @1.500s"

    def test_driver_drop_has_no_target(self):
        event = FaultEvent(at_s=1.0, kind="driver_drop")
        assert describe_event(event) == "driver_drop @1.000s"


class TestFaultPlanValidation:
    def test_horizon_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            FaultPlan(seed=1, horizon_s=0.0)

    def test_double_crash_without_restart_rejected(self):
        with pytest.raises(ConfigurationError, match="crashes twice"):
            FaultPlan(seed=1, horizon_s=3.0, events=(
                FaultEvent(at_s=1.0, kind="crash", node=1),
                FaultEvent(at_s=2.0, kind="crash", node=1),
            ))

    def test_restart_without_crash_rejected(self):
        with pytest.raises(ConfigurationError, match="without a prior crash"):
            FaultPlan(seed=1, horizon_s=3.0, events=(
                FaultEvent(at_s=1.0, kind="restart", node=1),
            ))

    def test_heal_without_partition_rejected(self):
        with pytest.raises(ConfigurationError, match="without a prior start"):
            FaultPlan(seed=1, horizon_s=3.0, events=(
                FaultEvent(at_s=1.0, kind="partition_heal"),
            ))

    def test_double_partition_start_rejected(self):
        with pytest.raises(ConfigurationError, match="starts twice"):
            FaultPlan(seed=1, horizon_s=3.0, events=(
                FaultEvent(at_s=1.0, kind="partition_start"),
                FaultEvent(at_s=2.0, kind="partition_start"),
            ))

    def test_crash_restart_crash_is_valid(self):
        plan = FaultPlan(seed=1, horizon_s=5.0, events=(
            FaultEvent(at_s=1.0, kind="crash", node=1),
            FaultEvent(at_s=2.0, kind="restart", node=1),
            FaultEvent(at_s=3.0, kind="crash", node=1),
        ))
        assert plan.crash_intervals() == {1: [(1.0, 2.0), (3.0, None)]}


class TestSchedule:
    def test_sorted_by_time_then_kind_precedence(self):
        plan = FaultPlan(seed=1, horizon_s=5.0, events=(
            FaultEvent(at_s=2.0, kind="restart", node=1),
            FaultEvent(at_s=1.0, kind="crash", node=1),
            FaultEvent(at_s=2.0, kind="crash", node=2),
        ))
        assert [e.kind for e in plan.schedule()] == [
            "crash", "crash", "restart",
        ]

    def test_described_matches_schedule_order(self):
        plan = FaultPlan(seed=1, horizon_s=5.0, events=(
            FaultEvent(at_s=2.0, kind="restart", node=1),
            FaultEvent(at_s=1.0, kind="crash", node=1),
        ))
        assert plan.described() == (
            "crash local 1 @1.000s", "restart local 1 @2.000s",
        )

    def test_partition_intervals_open_ended(self):
        plan = FaultPlan(seed=1, horizon_s=5.0, events=(
            FaultEvent(at_s=1.0, kind="partition_start"),
        ))
        assert plan.partition_intervals() == [(1.0, None)]


class TestScenarios:
    def test_every_scenario_builds_a_valid_plan(self):
        for name, scenario in SCENARIOS.items():
            plan = build_plan(name, seed=3, horizon_s=3.0, n_locals=2)
            assert plan.events, name
            assert all(e.at_s <= plan.horizon_s for e in plan.events), name
            targets = {e.node for e in plan.events if e.node is not None}
            if scenario.substrate == "mesh":
                # Mesh scenarios target 0-based shard indices.
                assert targets <= {0, 1}, name
            else:
                assert targets <= {1, 2}, name

    def test_same_seed_same_schedule(self):
        for name in SCENARIOS:
            first = build_plan(name, seed=9, horizon_s=3.0, n_locals=2)
            second = build_plan(name, seed=9, horizon_s=3.0, n_locals=2)
            assert first.described() == second.described(), name

    def test_different_seed_different_timings(self):
        name = "crash-reconnect"
        assert (
            build_plan(name, seed=1, horizon_s=3.0, n_locals=2).described()
            != build_plan(name, seed=2, horizon_s=3.0, n_locals=2).described()
        )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            build_plan("asteroid", seed=1, horizon_s=3.0, n_locals=2)


class TestToleranceConfigValidation:
    def test_defaults_are_valid(self):
        config = ToleranceConfig()
        assert config.reliability == ReliabilityConfig(
            timeout_s=0.15, max_retries=80
        )

    def test_heartbeat_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="heartbeat interval"):
            ToleranceConfig(heartbeat_interval_s=0.0)

    def test_dead_threshold_must_exceed_heartbeat(self):
        with pytest.raises(ConfigurationError, match="declare_dead_after_s"):
            ToleranceConfig(
                heartbeat_interval_s=0.5, declare_dead_after_s=0.5
            )

    def test_base_delay_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="base delay"):
            ToleranceConfig(reconnect_base_delay_s=0.0)

    def test_max_delay_must_cover_base(self):
        with pytest.raises(ConfigurationError, match="max delay"):
            ToleranceConfig(
                reconnect_base_delay_s=0.5, reconnect_max_delay_s=0.1
            )

    def test_jitter_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError, match="jitter"):
            ToleranceConfig(reconnect_jitter=-0.1)

    def test_attempts_must_be_at_least_one(self):
        with pytest.raises(ConfigurationError, match="attempts"):
            ToleranceConfig(reconnect_max_attempts=0)


def test_fault_kinds_are_the_tie_break_order():
    assert FAULT_KINDS == (
        "crash", "restart", "drop_link", "partition_start", "partition_heal",
        "kill_shard", "driver_drop",
    )
