"""Graceful degradation: a dead local degrades answers instead of hanging.

When the failure detector declares a local dead, the root must keep
answering from the survivors — marking each affected window with a
completeness fraction below 1.0 — rather than retrying forever or losing
the window.  Checked on both substrates.
"""

import contextlib
import functools
import signal

from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.core.reliability import ReliabilityConfig
from repro.faults.plan import ToleranceConfig
from repro.faults.runner import run_chaos
from repro.faults.scenarios import SCENARIOS, build_plan
from repro.faults.simulate import compile_plan
from repro.network.topology import TopologyConfig
from repro.bench.generator import GeneratorConfig, workload

SEED = 7
N_LOCALS = 2


@contextlib.contextmanager
def hard_timeout(seconds: int):
    def on_alarm(signum, frame):
        raise TimeoutError(f"degradation test exceeded {seconds}s wall clock")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@functools.lru_cache(maxsize=1)
def _sim_outcomes():
    """A dead-local plan compiled straight onto the simulator."""
    plan = build_plan(
        "dead-local", seed=SEED, horizon_s=3.0, n_locals=N_LOCALS
    )
    tolerance = ToleranceConfig()
    engine = DemaEngine(
        QuantileQuery(q=0.5, gamma=64),
        TopologyConfig(n_local_nodes=N_LOCALS),
        reliability=tolerance.reliability,
        degrade_after_retries=True,
    )
    applied = compile_plan(
        plan,
        engine.simulator,
        root=engine.root,
        detect_after_s=SCENARIOS["dead-local"].detect_after_s,
    )
    streams = workload(
        list(range(1, N_LOCALS + 1)),
        GeneratorConfig(event_rate=150.0, duration_s=3.0, seed=SEED),
    )
    report = engine.run(streams)
    return plan, applied, engine.root, report.outcomes


class TestSimulatorDegradation:
    def test_compiled_schedule_matches_the_plan(self):
        plan, applied, _root, _outcomes = _sim_outcomes()
        assert applied == list(plan.described())

    def test_windows_before_the_crash_stay_exact(self):
        plan, _applied, _root, outcomes = _sim_outcomes()
        crash_ms = plan.schedule()[0].at_s * 1000.0
        before = [o for o in outcomes if o.window.end <= crash_ms]
        assert before
        for outcome in before:
            assert outcome.completeness == 1.0
            assert not outcome.is_degraded

    def test_windows_after_the_crash_are_degraded_not_lost(self):
        plan, _applied, root, outcomes = _sim_outcomes()
        crash_ms = plan.schedule()[0].at_s * 1000.0
        after = [o for o in outcomes if o.window.start >= crash_ms]
        assert after
        for outcome in after:
            assert outcome.value is not None
            assert outcome.is_degraded
            # One of two locals answered.
            assert outcome.completeness == 0.5
        assert root.deaths_declared == 1
        assert root.aborted_windows == 0


@functools.lru_cache(maxsize=1)
def _live_report():
    with hard_timeout(120):
        return run_chaos(
            "dead-local",
            mode="live",
            seed=SEED,
            n_locals=N_LOCALS,
            transport="memory",
            time_scale=0.3,
        )


class TestLiveDegradation:
    def test_no_window_is_lost_or_wrong(self):
        report = _live_report()
        assert report.lost == 0
        assert report.mismatched == 0
        assert report.windows >= 3

    def test_detector_fired_and_degraded_the_tail(self):
        report = _live_report()
        assert report.locals_declared_dead == 1
        assert report.degraded >= 1
        assert report.reconnects == 0


class TestDegradationRequiresOptIn:
    def test_without_degrade_flag_windows_abort_instead(self):
        """degrade_after_retries=False keeps the strict abort behaviour."""
        plan = build_plan(
            "dead-local", seed=SEED, horizon_s=3.0, n_locals=N_LOCALS
        )
        engine = DemaEngine(
            QuantileQuery(q=0.5, gamma=64),
            TopologyConfig(n_local_nodes=N_LOCALS),
            reliability=ReliabilityConfig(timeout_s=0.05, max_retries=3),
            degrade_after_retries=False,
        )
        compile_plan(plan, engine.simulator, root=engine.root)
        streams = workload(
            list(range(1, N_LOCALS + 1)),
            GeneratorConfig(event_rate=150.0, duration_s=3.0, seed=SEED),
        )
        report = engine.run(streams)
        # Without detection + degradation the crashed local's windows
        # exhaust their retries and abort.
        assert engine.root.aborted_windows >= 1
        degraded = [o for o in report.outcomes if o.is_degraded]
        assert not degraded
