"""Chaos transport tests: severing, reorder, and the plan controller.

Event loops are driven with ``asyncio.run`` (no pytest-asyncio in the
container), and the wrapped streams are real in-memory pipes so severing
exercises the same wake-a-blocked-read path the live cluster relies on.
"""

import asyncio
import random

import pytest

from repro.errors import TransportError
from repro.faults.chaos import ChaosController, ChaosStream
from repro.faults.plan import FaultEvent, FaultPlan
from repro.network.messages import WatermarkMessage
from repro.runtime.codec import Hello
from repro.runtime.transport import memory_pipe
from repro.streaming.windows import Window

W = Window(0, 1000)


def _watermark(mark: int) -> WatermarkMessage:
    return WatermarkMessage(1, W, watermark_time=mark)


def _plan() -> FaultPlan:
    return FaultPlan(seed=5, horizon_s=3.0, events=(
        FaultEvent(at_s=1.0, kind="crash", node=1),
        FaultEvent(at_s=2.0, kind="restart", node=1),
    ))


class TestChaosStream:
    def test_passthrough_send_recv(self):
        async def scenario():
            near, far = memory_pipe()
            chaos = ChaosStream(near)
            await chaos.send(_watermark(5))
            assert await far.recv() == _watermark(5)
            await far.send(_watermark(7))
            assert await chaos.recv() == _watermark(7)
            assert chaos.stats is near.stats
            await chaos.close()

        asyncio.run(scenario())

    def test_severed_send_raises(self):
        async def scenario():
            near, _far = memory_pipe()
            chaos = ChaosStream(near)
            chaos.sever()
            assert chaos.severed
            with pytest.raises(TransportError, match="severed"):
                await chaos.send(_watermark(1))

        asyncio.run(scenario())

    def test_sever_wakes_blocked_recv_with_eof(self):
        async def scenario():
            near, _far = memory_pipe()
            chaos = ChaosStream(near)
            reader = asyncio.ensure_future(chaos.recv())
            await asyncio.sleep(0)
            assert not reader.done()
            chaos.sever()
            assert await asyncio.wait_for(reader, timeout=5) is None
            # Subsequent receives report EOF immediately.
            assert await chaos.recv() is None

        asyncio.run(scenario())

    def test_sever_closes_the_remote_side_too(self):
        async def scenario():
            near, far = memory_pipe()
            chaos = ChaosStream(near)
            chaos.sever()
            # The inner stream closes in the background; the peer sees EOF
            # exactly as if the process died.
            assert await asyncio.wait_for(far.recv(), timeout=5) is None

        asyncio.run(scenario())

    def test_external_cancel_wins_over_sever_race(self):
        async def scenario():
            near, _far = memory_pipe()
            chaos = ChaosStream(near)
            reader = asyncio.ensure_future(chaos.recv())
            await asyncio.sleep(0)
            # Sever (completing the cut_task future) and cancel in the
            # same tick: the reader must die cancelled, not hang.
            chaos.sever()
            reader.cancel()
            with pytest.raises(asyncio.CancelledError):
                await reader

        asyncio.run(scenario())

    def test_reorder_holds_one_frame_back(self):
        async def scenario():
            near, far = memory_pipe()
            chaos = ChaosStream(
                near, reorder_rate=1.0, rng=random.Random(0)
            )
            await chaos.send(_watermark(1))  # held
            await chaos.send(_watermark(2))  # flushes: 2 then 1
            assert await far.recv() == _watermark(2)
            assert await far.recv() == _watermark(1)

        asyncio.run(scenario())

    def test_hello_is_never_reordered(self):
        async def scenario():
            near, far = memory_pipe()
            chaos = ChaosStream(
                near, reorder_rate=1.0, rng=random.Random(0)
            )
            hello = Hello(node_id=1, role="local")
            await chaos.send(hello)
            received = await far.recv()
            assert isinstance(received, Hello)
            assert received.node_id == 1

        asyncio.run(scenario())

    def test_delay_still_delivers(self):
        async def scenario():
            near, far = memory_pipe()
            chaos = ChaosStream(near, delay_s=0.001)
            await far.send(_watermark(3))
            assert await chaos.recv() == _watermark(3)

        asyncio.run(scenario())


class TestChaosController:
    def test_sever_cuts_every_stream_of_the_local(self):
        async def scenario():
            controller = ChaosController(_plan())
            near_a, _ = memory_pipe()
            near_b, _ = memory_pipe()
            wrapped_a = controller.wrap(1, near_a)
            wrapped_b = controller.wrap(1, near_b)
            other, _ = memory_pipe()
            wrapped_other = controller.wrap(2, other)
            controller.sever(1)
            assert wrapped_a.severed and wrapped_b.severed
            assert not wrapped_other.severed

        asyncio.run(scenario())

    def test_partition_gates_redials(self):
        async def scenario():
            controller = ChaosController(_plan())
            near, _ = memory_pipe()
            wrapped = controller.wrap(1, near)
            assert controller.dial_allowed(1)
            controller.start_partition()
            assert controller.partitioned
            assert wrapped.severed
            assert not controller.dial_allowed(1)
            controller.heal_partition()
            assert controller.dial_allowed(1)

        asyncio.run(scenario())

    def test_record_uses_canonical_descriptions(self):
        controller = ChaosController(_plan())
        for event in controller.plan.schedule():
            controller.record(event)
        assert controller.applied == list(controller.plan.described())
