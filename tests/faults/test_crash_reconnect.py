"""Acceptance: scripted crash + restart mid-stream, every window recovered.

These are the headline robustness tests from the fault-injection issue: a
live in-memory cluster runs a seeded workload while the fault driver kills
a local server mid-stream and restarts it; reconnect + session resume must
recover *every* window bit-identically to the fault-free run.  A SIGALRM
hard timeout turns any hang into a failure (the container has no
pytest-timeout), and everything is seeded, so the test is deterministic.
"""

import contextlib
import functools
import signal

from repro.faults.runner import run_chaos
from repro.faults.scenarios import build_plan

SEED = 7
KWARGS = dict(
    seed=SEED,
    n_locals=2,
    streams_per_local=2,
    rate=300.0,
    duration_s=3.0,
    time_scale=0.3,
    gamma=64,
    q=0.5,
)


@contextlib.contextmanager
def hard_timeout(seconds: int):
    def on_alarm(signum, frame):
        raise TimeoutError(f"chaos test exceeded {seconds}s wall clock")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@functools.lru_cache(maxsize=None)
def _run(scenario: str, mode: str):
    with hard_timeout(120):
        return run_chaos(scenario, mode=mode, transport="memory", **KWARGS)


class TestCrashReconnectLive:
    def test_every_window_recovered_exactly(self):
        report = _run("crash-reconnect", "live")
        assert report.windows >= 3
        assert report.recovered == report.windows
        assert report.degraded == 0
        assert report.lost == 0
        assert report.mismatched == 0

    def test_the_crash_actually_happened(self):
        report = _run("crash-reconnect", "live")
        kinds = [line.split()[0] for line in report.applied]
        assert kinds == ["crash", "restart"]
        assert report.reconnects >= 1
        assert report.locals_declared_dead == 0

    def test_applied_schedule_matches_the_plan(self):
        report = _run("crash-reconnect", "live")
        assert report.applied == list(report.plan.described())


class TestSimLiveParity:
    def test_same_seed_same_fault_schedule_on_both_substrates(self):
        """The acceptance property: one plan, two worlds, same schedule."""
        live = _run("crash-reconnect", "live")
        sim = _run("crash-reconnect", "sim")
        assert live.applied == sim.applied
        assert live.applied == list(
            build_plan(
                "crash-reconnect",
                seed=SEED,
                horizon_s=KWARGS["duration_s"],
                n_locals=KWARGS["n_locals"],
            ).described()
        )

    def test_sim_crash_reconnect_also_recovers_everything(self):
        report = _run("crash-reconnect", "sim")
        assert report.recovered == report.windows
        assert report.lost == 0
        assert report.mismatched == 0


class TestOtherScenariosLive:
    def test_flaky_link_recovers_through_reconnect(self):
        report = _run("flaky-link", "live")
        assert report.recovered == report.windows
        assert report.lost == 0
        assert report.mismatched == 0
        assert report.reconnects >= 1

    def test_partition_heals_and_catches_up(self):
        report = _run("partition", "live")
        assert report.recovered == report.windows
        assert report.lost == 0
        assert report.mismatched == 0
        # Every local was cut and had to redial after the heal.
        assert report.reconnects >= KWARGS["n_locals"]
