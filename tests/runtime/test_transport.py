"""Transport tests: TCP and in-memory streams behave identically.

Both transports carry the same encoded frames through the same codec, so
every scenario here runs against both and the byte counters must agree to
the byte.  Tests drive real event loops via ``asyncio.run`` (the container
has no pytest-asyncio).
"""

import asyncio

import pytest

from repro.errors import TransportError
from repro.network.messages import (
    EventBatchMessage,
    GammaUpdateMessage,
    WatermarkMessage,
)
from repro.runtime import wire
from repro.runtime.codec import Hello
from repro.runtime.transport import (
    MemoryNetwork,
    TcpNetwork,
    memory_pipe,
)
from repro.streaming.events import Event
from repro.streaming.windows import Window

W = Window(0, 1000)

MESSAGES = [
    Hello(node_id=3, role="stream"),
    WatermarkMessage(3, W, watermark_time=500),
    EventBatchMessage(3, W, events=(Event(1.5, 10, 3, 0), Event(2.5, 20, 3, 1))),
    GammaUpdateMessage(0, W, gamma=64),
]


def _network(kind: str):
    return TcpNetwork() if kind == "tcp" else MemoryNetwork()


async def _echo_scenario(kind: str):
    network = _network(kind)
    received = []

    async def handler(stream):
        while (message := await stream.recv()) is not None:
            received.append(message)
            await stream.send(message)

    await network.listen(7, handler)
    client = await network.dial(7)
    echoed = []
    for message in MESSAGES:
        await client.send(message)
        echoed.append(await client.recv())
    stats = client.stats
    await client.close()
    await network.close()
    return received, echoed, stats


@pytest.mark.parametrize("kind", ["memory", "tcp"])
def test_echo_roundtrip(kind):
    received, echoed, stats = asyncio.run(_echo_scenario(kind))
    assert received == MESSAGES
    assert echoed == MESSAGES
    assert stats.messages_sent == stats.messages_received == len(MESSAGES)
    assert stats.bytes_sent == stats.bytes_received > 0


def test_transports_count_identical_bytes():
    _, _, memory_stats = asyncio.run(_echo_scenario("memory"))
    _, _, tcp_stats = asyncio.run(_echo_scenario("tcp"))
    # send_stall_s is measured wall-clock backpressure, not byte
    # accounting — everything else must agree to the byte.
    memory_stats.send_stall_s = tcp_stats.send_stall_s = 0.0
    assert memory_stats == tcp_stats


@pytest.mark.parametrize("kind", ["memory", "tcp"])
def test_dial_unknown_node(kind):
    async def scenario():
        network = _network(kind)
        try:
            with pytest.raises(TransportError, match="no listener"):
                await network.dial(99)
        finally:
            await network.close()

    asyncio.run(scenario())


@pytest.mark.parametrize("kind", ["memory", "tcp"])
def test_duplicate_listen_rejected(kind):
    async def scenario():
        network = _network(kind)

        async def handler(stream):
            await stream.recv()

        try:
            await network.listen(1, handler)
            with pytest.raises(TransportError, match="already listening"):
                await network.listen(1, handler)
        finally:
            await network.close()

    asyncio.run(scenario())


@pytest.mark.parametrize("kind", ["memory", "tcp"])
def test_clean_eof_on_close(kind):
    async def scenario():
        network = _network(kind)
        server_saw_eof = asyncio.Event()

        async def handler(stream):
            assert await stream.recv() == MESSAGES[0]
            assert await stream.recv() is None
            server_saw_eof.set()

        await network.listen(5, handler)
        client = await network.dial(5)
        await client.send(MESSAGES[0])
        await client.close()
        await asyncio.wait_for(server_saw_eof.wait(), timeout=5.0)
        # Once the server hangs up, the client side sees EOF too.
        assert await asyncio.wait_for(client.recv(), timeout=5.0) is None
        await network.close()

    asyncio.run(scenario())


def test_send_on_closed_memory_stream():
    async def scenario():
        a, _ = memory_pipe()
        await a.close()
        with pytest.raises(TransportError, match="closed"):
            await a.send(MESSAGES[1])

    asyncio.run(scenario())


def test_memory_backpressure_blocks_sender():
    async def scenario():
        a, b = memory_pipe(max_frames=2)
        await a.send(MESSAGES[1])
        await a.send(MESSAGES[1])
        third = asyncio.ensure_future(a.send(MESSAGES[1]))
        await asyncio.sleep(0)
        assert not third.done()  # inbox full: the sender is suspended
        assert await b.recv() == MESSAGES[1]
        await asyncio.wait_for(third, timeout=5.0)
        # Drain before closing: the EOF sentinel queues behind the frames.
        assert await b.recv() == MESSAGES[1]
        assert await b.recv() == MESSAGES[1]
        await a.close()
        assert await asyncio.wait_for(b.recv(), timeout=5.0) is None

    asyncio.run(scenario())


def test_tcp_mid_frame_death_raises():
    async def scenario():
        network = TcpNetwork()
        error = asyncio.Future()

        async def handler(stream):
            try:
                await stream.recv()
            except TransportError as exc:
                error.set_result(str(exc))

        port = await network.listen(9, handler)
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"\x07\x00")  # two bytes of a four-byte length prefix
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        message = await asyncio.wait_for(error, timeout=5.0)
        await network.close()
        return message

    assert "mid-frame" in asyncio.run(scenario())


def test_tcp_oversize_frame_announcement_raises():
    async def scenario():
        network = TcpNetwork()
        error = asyncio.Future()

        async def handler(stream):
            try:
                await stream.recv()
            except TransportError as exc:
                error.set_result(str(exc))

        port = await network.listen(9, handler)
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(wire.LENGTH_PREFIX.pack(wire.MAX_FRAME_BYTES + 1))
        await writer.drain()
        message = await asyncio.wait_for(error, timeout=5.0)
        writer.close()
        await writer.wait_closed()
        await network.close()
        return message

    assert "max" in asyncio.run(scenario())


class TestFailureLatch:
    def test_starts_clear(self):
        from repro.runtime.transport import FailureLatch

        async def scenario():
            latch = FailureLatch()
            assert latch.error is None
            assert not latch.event.is_set()

        asyncio.run(scenario())

    def test_first_error_wins(self):
        from repro.runtime.transport import FailureLatch

        async def scenario():
            latch = FailureLatch()
            first, second = ValueError("first"), ValueError("second")
            latch.record(first)
            latch.record(second)
            assert latch.error is first
            assert latch.event.is_set()

        asyncio.run(scenario())

    @pytest.mark.parametrize("kind", ["memory", "tcp"])
    def test_handler_exceptions_are_latched_not_swallowed(self, kind):
        """The satellite fix: a crashing connection handler must surface."""
        from repro.runtime.transport import FailureLatch, MemoryNetwork

        async def scenario():
            latch = FailureLatch()
            network = (
                TcpNetwork(failures=latch)
                if kind == "tcp"
                else MemoryNetwork(failures=latch)
            )

            async def handler(stream):
                raise RuntimeError("handler blew up")

            await network.listen(4, handler)
            client = await network.dial(4)
            await asyncio.wait_for(latch.event.wait(), timeout=5.0)
            await client.close()
            await network.close()
            return latch.error

        error = asyncio.run(scenario())
        assert isinstance(error, RuntimeError)
        assert "handler blew up" in str(error)
