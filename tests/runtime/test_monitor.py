"""Failure-detector heap hygiene under membership churn.

The root's monitor is a deadline heap with one live entry per monitored
local.  A local that gracefully departs never heartbeats again; its
entry must be *dropped* when it pops, not re-armed — otherwise it
accrues a spurious miss every interval and, past the silence threshold,
ends in a bogus death declaration for a node that said goodbye
properly.
"""

import asyncio

from repro.core.query import QuantileQuery
from repro.core.root_node import DemaRootNode
from repro.faults.plan import ToleranceConfig
from repro.runtime.servers import LiveFabric, RootServer

TOLERANCE = ToleranceConfig(
    heartbeat_interval_s=0.01, declare_dead_after_s=0.05
)


def make_root(loop_time: float) -> RootServer:
    return RootServer(
        DemaRootNode(
            0,
            local_ids=[1, 2, 3],
            query=QuantileQuery(q=0.5, gamma=32),
            ops_per_second=1e9,
        ),
        LiveFabric(loop_time),
        expected_windows=1,
        tolerance=TOLERANCE,
    )


def run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


class TestMonitorHeap:
    def test_departed_local_entry_dropped_not_rearmed(self):
        async def scenario():
            root = make_root(asyncio.get_event_loop().time())
            for local_id in (1, 2, 3):
                root._observe(local_id)
            assert len(root._deadlines) == 3
            # Local 2 leaves gracefully, then goes silent forever.
            root.node.remove_local(2, effective_from=1_000, now=0.0)
            assert 2 not in root.node.current_members
            root.start_monitor()
            try:
                # Long enough for every armed deadline to pop at least
                # once and for a silent *member* to be declared dead.
                await asyncio.sleep(0.12)
            finally:
                await root.stop_monitor()
            # The leaver's entry is gone from both heap and enrollment…
            assert all(entry[1] != 2 for entry in root._deadlines)
            assert 2 not in root._monitored
            # …and it was never declared dead (locals 1 and 3 were,
            # being silent members past the threshold).
            assert 2 not in root.node.dead_nodes
            assert root.node.dead_nodes == {1, 3}

        run(scenario())

    def test_dead_local_entry_dropped_on_pop(self):
        async def scenario():
            root = make_root(asyncio.get_event_loop().time())
            root._observe(1)
            root.node.mark_dead(1, 0.0)
            root.start_monitor()
            try:
                await asyncio.sleep(0.05)
            finally:
                await root.stop_monitor()
            assert root._deadlines == []
            assert 1 not in root._monitored

        run(scenario())

    def test_heap_shrinks_under_join_leave_churn(self):
        """Churning joiners never accumulate tombstoned heap entries."""

        async def scenario():
            root = make_root(asyncio.get_event_loop().time())
            root.start_monitor()
            try:
                for round_no in range(5):
                    joiner = 10 + round_no
                    root.node.add_local(joiner, first_window_start=0)
                    root._observe(joiner)
                    root.node.remove_local(
                        joiner, effective_from=1_000, now=0.0
                    )
                    await asyncio.sleep(0.02)
                # Give the last round's deadline time to pop.
                await asyncio.sleep(0.03)
            finally:
                await root.stop_monitor()
            live = {entry[1] for entry in root._deadlines}
            assert not (live & set(range(10, 15)))
            assert not (root._monitored & set(range(10, 15)))

        run(scenario())

    def test_silent_member_still_declared_dead(self):
        """The fix must not blunt real detection: a silent member dies."""

        async def scenario():
            root = make_root(asyncio.get_event_loop().time())
            root._observe(1)
            root.start_monitor()
            try:
                await asyncio.sleep(0.12)
            finally:
                await root.stop_monitor()
            assert 1 in root.node.dead_nodes
            assert root.locals_declared_dead == 1
            assert root.heartbeat_misses > 0

        run(scenario())
