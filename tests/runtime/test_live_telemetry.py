"""Acceptance tests for the live telemetry plane.

The headline claims from the tracing issue, each pinned here:

* **Causal timelines** — a traced live run yields a complete per-window
  timeline spanning all three layers (streams → locals → root), with
  every wire hop attributed to a parent span, on both transports.
* **Scrape endpoint** — ``/metrics`` serves valid Prometheus text while
  the cluster is live (plus ``/healthz``, ``/summary``, ``/timeline``).
* **Flight recorder** — when the cluster's :class:`FailureLatch` trips
  under chaos, the ring buffer is dumped at the moment of death and the
  dump is non-empty.
* **Zero-cost off, cheap on** — results with telemetry enabled are
  bit-identical to a bare run, within a bounded wall-clock overhead.

Everything is seeded; SIGALRM hard timeouts turn hangs into failures.
"""

import contextlib
import functools
import json
import queue
import re
import signal
import threading
import urllib.error
import urllib.request

import pytest

from repro.bench.generator import GeneratorConfig, workload
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.errors import TransportError
from repro.faults.plan import FaultEvent, FaultPlan, ToleranceConfig
from repro.network.topology import TopologyConfig
from repro.obs.live import (
    LIVE_PHASES,
    TelemetryConfig,
    timeline_tree,
    window_timeline,
)
from repro.obs.tracer import RecordingTracer
from repro.runtime.cluster import LiveClusterConfig, run_live

#: Fixed γ, fixed seed: both substrates and both telemetry settings must
#: agree bit-for-bit, so nothing may feed timing back into the answer.
QUERY = QuantileQuery(q=0.5, gamma=64)

N_LOCALS = 2

#: Live phases that only exist because a frame arrived: each must parent
#: onto the span named in that frame's trace-context extension.
_WIRE_HOP_PHASES = frozenset(LIVE_PHASES) - {"live_stream_batch", "live_synopsis"}


@contextlib.contextmanager
def hard_timeout(seconds: int):
    def on_alarm(signum, frame):
        raise TimeoutError(f"telemetry test exceeded {seconds}s wall clock")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@functools.lru_cache(maxsize=1)
def _streams():
    generated = workload(
        list(range(1, N_LOCALS + 1)),
        GeneratorConfig(event_rate=300.0, duration_s=3.0, seed=11),
    )
    return {node: tuple(events) for node, events in generated.items()}


@functools.lru_cache(maxsize=1)
def _simulated_values():
    report = DemaEngine(
        QUERY, TopologyConfig(n_local_nodes=N_LOCALS)
    ).run({node: list(events) for node, events in _streams().items()})
    return {
        outcome.window: outcome.value
        for outcome in report.outcomes
        if outcome.value is not None
    }


def _live_values(report):
    return {
        outcome.window: outcome.value
        for outcome in report.outcomes
        if outcome.value is not None
    }


def _config(**overrides):
    defaults = dict(
        n_locals=N_LOCALS,
        streams_per_local=2,
        query=QUERY,
        transport="memory",
        timeout_s=60.0,
    )
    defaults.update(overrides)
    return LiveClusterConfig(**defaults)


@functools.lru_cache(maxsize=None)
def _traced_run(transport: str):
    """One tolerant, fully-traced run; cached per transport."""
    tracer = RecordingTracer()
    config = _config(
        transport=transport,
        # Tolerant mode is what sends WindowReleaseMessage — without it the
        # lifecycle has no live_release hop to trace.
        tolerance=ToleranceConfig(),
        telemetry=TelemetryConfig(),
    )
    with hard_timeout(120):
        report = run_live(config, _streams(), tracer=tracer)
    return report, tracer


# ----------------------------------------------------------------------
# Causal timelines across the wire, both transports.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("transport", ["memory", "tcp"])
class TestCausalTimeline:
    def test_results_stay_bit_identical_under_tracing(self, transport):
        report, _ = _traced_run(transport)
        expected = _simulated_values()
        assert len(expected) >= 3
        assert _live_values(report) == expected

    def test_first_window_covers_every_phase_and_layer(self, transport):
        _, tracer = _traced_run(transport)
        timeline = window_timeline(tracer.spans, 0)
        # Every lifecycle phase appears...
        assert set(LIVE_PHASES) <= set(timeline["phases"])
        # ...across all three layers: root 0, locals 1..2, streams 3+.
        nodes = set(timeline["nodes"])
        assert 0 in nodes
        assert nodes & set(range(1, N_LOCALS + 1))
        assert any(node > N_LOCALS for node in nodes)

    def test_every_wire_hop_has_a_resolvable_parent(self, transport):
        _, tracer = _traced_run(transport)
        timeline = window_timeline(tracer.spans, 0)
        ids = {row["id"] for row in timeline["spans"]}
        hops = [
            row for row in timeline["spans"] if row["name"] in _WIRE_HOP_PHASES
        ]
        assert hops
        for row in hops:
            assert row["parent"] is not None, row["name"]
            assert row["parent"] in ids, row["name"]

    def test_timeline_tree_roots_fan_out(self, transport):
        _, tracer = _traced_run(transport)
        tree = timeline_tree(window_timeline(tracer.spans, 0))
        roots = {root["name"] for root in tree}
        # Roots are spans that start a trace on their own clock: the stream
        # batches and the locals' seal decision (min-watermark has no
        # single causal parent).
        assert roots == {"live_stream_batch", "live_synopsis"}
        assert all(root["children"] for root in tree)

    def test_every_window_is_reconstructable(self, transport):
        report, tracer = _traced_run(transport)
        length = QUERY.window_length_ms
        for window in _live_values(report):
            timeline = window_timeline(tracer.spans, window.start)
            assert set(LIVE_PHASES) <= set(timeline["phases"]), window
        assert report.telemetry["traced_live_spans"] > 0
        assert length == 1000  # three windows in the 3 s workload


# ----------------------------------------------------------------------
# The scrape endpoint, hit while the cluster is actually serving.
# ----------------------------------------------------------------------

#: One Prometheus text-format sample line.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
    r"([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$"
)


def _get(port: int, path: str) -> tuple[int, str]:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10.0
    ) as response:
        return response.status, response.read().decode("utf-8")


def test_scrape_endpoint_serves_during_a_live_run():
    ports: "queue.Queue[int]" = queue.Queue()
    outcome: dict = {}

    config = _config(
        streams_per_local=1,
        time_scale=1.0,  # paced: the run stays alive long enough to scrape
        telemetry=TelemetryConfig(http_port=0, announce=ports.put),
    )
    streams = workload(
        [1, 2], GeneratorConfig(event_rate=150.0, duration_s=2.0, seed=23)
    )

    def runner():
        try:
            outcome["report"] = run_live(config, streams)
        except BaseException as exc:  # surfaced after join
            outcome["error"] = exc

    thread = threading.Thread(target=runner, daemon=True)
    with hard_timeout(120):
        thread.start()
        port = ports.get(timeout=30.0)

        status, text = _get(port, "/metrics")
        assert status == 200
        lines = [line for line in text.splitlines() if line]
        assert any(line.startswith("# HELP") for line in lines)
        assert any(line.startswith("# TYPE") for line in lines)
        samples = [line for line in lines if not line.startswith("#")]
        assert samples
        for line in samples:
            assert _SAMPLE_RE.match(line), line
        assert "live_event_loop_lag_seconds" in text

        status, text = _get(port, "/healthz")
        assert status == 200
        assert json.loads(text) == {"ok": True}

        status, text = _get(port, "/summary")
        assert status == 200
        summary = json.loads(text)
        assert summary["transport"] == "memory"
        assert summary["windows_expected"] >= 1
        assert {link["layer"] for link in summary["links"]} == {
            "stream_local", "local_root",
        }

        status, text = _get(port, "/timeline/0")
        assert status == 200
        timeline = json.loads(text)
        assert timeline["window_start"] == 0
        assert timeline["trace_id"] == 0

        thread.join(timeout=60.0)
    assert not thread.is_alive()
    assert "error" not in outcome, outcome.get("error")
    assert outcome["report"].telemetry["http_port"] == port
    assert outcome["report"].telemetry["sampler_samples"] > 0


def test_endpoint_rejects_unknown_paths_and_bad_windows():
    ports: "queue.Queue[int]" = queue.Queue()
    config = _config(
        streams_per_local=1,
        time_scale=1.0,
        telemetry=TelemetryConfig(http_port=0, announce=ports.put),
    )
    streams = workload(
        [1, 2], GeneratorConfig(event_rate=100.0, duration_s=1.0, seed=29)
    )
    done: dict = {}

    def runner():
        try:
            done["report"] = run_live(config, streams)
        except BaseException as exc:
            done["error"] = exc

    thread = threading.Thread(target=runner, daemon=True)
    with hard_timeout(120):
        thread.start()
        port = ports.get(timeout=30.0)
        for path in ("/nope", "/timeline/not-a-number"):
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(port, path)
            assert info.value.code in (400, 404)
        thread.join(timeout=60.0)
    assert "error" not in done, done.get("error")


# ----------------------------------------------------------------------
# Flight recorder: dump at the moment the failure latch trips.
# ----------------------------------------------------------------------


def test_flight_recorder_dumps_when_the_latch_trips(tmp_path):
    dump = tmp_path / "flight.jsonl"
    # Partition the locals off the root and never heal; with a single dial
    # attempt each local exhausts its reconnects and the latch trips.
    plan = FaultPlan(
        seed=7,
        horizon_s=3.0,
        events=(FaultEvent(at_s=0.3, kind="partition_start"),),
    )
    config = _config(
        streams_per_local=1,
        time_scale=0.3,
        faults=plan,
        tolerance=ToleranceConfig(
            reconnect_base_delay_s=0.01,
            reconnect_max_delay_s=0.02,
            reconnect_jitter=0.0,
            reconnect_max_attempts=1,
        ),
        telemetry=TelemetryConfig(flight_recorder_path=str(dump)),
    )
    with hard_timeout(120), pytest.raises(TransportError, match="task failed"):
        run_live(config, _streams())

    assert dump.exists()
    rows = [json.loads(line) for line in dump.read_text().splitlines()]
    assert len(rows) > 1  # header plus actual evidence
    header = rows[0]
    assert header["kind"] == "flight_recorder_header"
    assert header["reason"]
    assert header["retained"] == len(rows) - 1
    # The ring held real telemetry, not just the header.
    kinds = {row["kind"] for row in rows[1:]}
    assert kinds & {"span", "message", "event"}


def test_flight_recorder_stays_quiet_on_a_healthy_run(tmp_path):
    dump = tmp_path / "flight.jsonl"
    config = _config(
        streams_per_local=1,
        telemetry=TelemetryConfig(flight_recorder_path=str(dump)),
    )
    with hard_timeout(120):
        report = run_live(config, _streams())
    assert _live_values(report) == _simulated_values()
    assert not dump.exists()
    assert report.telemetry["flight_recorder_dumped"] is False


# ----------------------------------------------------------------------
# Telemetry is bit-identical on results and cheap on wall clock.
# ----------------------------------------------------------------------


def test_telemetry_results_bit_identical_within_overhead_budget():
    import time

    with hard_timeout(240):
        started = time.perf_counter()
        bare = run_live(_config(), _streams())
        t_off = time.perf_counter() - started

        started = time.perf_counter()
        traced = run_live(
            _config(telemetry=TelemetryConfig()), _streams()
        )
        t_on = time.perf_counter() - started

    assert _live_values(bare) == _live_values(traced) == _simulated_values()
    assert traced.telemetry["traced_live_spans"] > 0
    # 10% budget with absolute slack for scheduler noise on short runs.
    assert t_on <= 1.10 * t_off + 0.25, (t_on, t_off)
