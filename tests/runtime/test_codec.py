"""Codec tests: lossless round trips and byte-exact size accounting.

The central invariants — ``len(encode_payload(m)) == m.payload_bytes`` and
``len(encode_frame(m)) == m.wire_bytes`` — are what let the discrete-event
simulator charge exactly the bytes the live runtime puts on a socket.
Round trips are checked at the bit level (re-encode and compare frames) so
NaN payloads, whose dataclasses are never ``==`` to anything, still count.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.synopsis import SliceSynopsis
from repro.errors import CodecError
from repro.network.messages import (
    MESSAGE_HEADER_BYTES,
    CandidateEventsMessage,
    CandidateRequestMessage,
    DigestMessage,
    EventBatchMessage,
    GammaUpdateMessage,
    HeartbeatMessage,
    JoinMessage,
    LeaveMessage,
    Message,
    PartialAggregateMessage,
    QDigestMessage,
    QueryAckMessage,
    QueryDeregisterMessage,
    QueryRegisterMessage,
    QueryResultMessage,
    RelayRunsMessage,
    RelaySynopsisMessage,
    ResultAckMessage,
    ResultMessage,
    RouteUpdateMessage,
    ShardFailoverMessage,
    SortedRunMessage,
    SynopsisMessage,
    SynopsisRequestMessage,
    TelemetryDigestMessage,
    TelemetrySnapshotMessage,
    WatermarkMessage,
    WindowReleaseMessage,
)
from repro.runtime import wire
from repro.runtime.codec import (
    HELLO_TAG,
    TAG_BY_TYPE,
    TYPE_BY_TAG,
    Hello,
    decode_body,
    decode_body_traced,
    decode_frame,
    decode_frame_traced,
    decode_payload,
    encode_frame,
    encode_hello,
    encode_payload,
    tag_of,
)
from repro.obs.live.context import TraceContext
from repro.streaming.events import Event
from repro.streaming.windows import Window

# ----------------------------------------------------------------------
# Strategies.
# ----------------------------------------------------------------------

u32 = st.integers(min_value=0, max_value=2**32 - 1)
u64 = st.integers(min_value=0, max_value=2**64 - 1)
f64 = st.floats(width=64)  # NaN and infinities included
finite_f64 = st.floats(width=64, allow_nan=False)

windows = st.builds(
    lambda start, length: Window(start, start + length),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.integers(min_value=1, max_value=2**20),
)

events = st.builds(Event, value=f64, timestamp=u32, node_id=u32, seq=u32)
event_batches = st.lists(events, max_size=30).map(tuple)

#: Key selectors are arbitrary UTF-8 text on the wire (validation happens
#: in QuerySpec, above the codec) — including astral-plane codepoints,
#: whose UTF-8 length differs from their codepoint count.
selector_text = st.text(max_size=24)
window_kinds = st.sampled_from(["tumbling", "sliding", "session"])


@st.composite
def synopses(draw):
    keys = sorted(
        [
            (draw(finite_f64), draw(u32), draw(u32)),
            (draw(finite_f64), draw(u32), draw(u32)),
        ]
    )
    n_slices = draw(st.integers(min_value=1, max_value=64))
    return SliceSynopsis(
        first_key=keys[0],
        last_key=keys[1],
        count=draw(st.integers(min_value=1, max_value=2**32 - 1)),
        node_id=draw(u32),
        slice_index=draw(st.integers(min_value=0, max_value=n_slices - 1)),
        n_slices=n_slices,
    )


@st.composite
def relay_synopsis_sections(draw):
    """Sections whose dropped fields (owner, index, total) reconstruct.

    The compact wire form omits ``node_id`` (section header),
    ``slice_index`` (position) and ``n_slices`` (section length), so only
    sections consistent with those conventions round-trip to equal
    objects — which is exactly what a relay combining complete, ordered
    batches produces.
    """
    sections = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        node_id = draw(u32)
        n = draw(st.integers(min_value=0, max_value=4))
        batch = []
        for index in range(n):
            keys = sorted(
                [
                    (draw(finite_f64), draw(u32), draw(u32)),
                    (draw(finite_f64), draw(u32), draw(u32)),
                ]
            )
            batch.append(
                SliceSynopsis(
                    first_key=keys[0],
                    last_key=keys[1],
                    count=draw(st.integers(min_value=1, max_value=2**32 - 1)),
                    node_id=node_id,
                    slice_index=index,
                    n_slices=n,
                )
            )
        sections.append((node_id, draw(u64), tuple(batch)))
    return tuple(sections)


@st.composite
def relay_run_sections(draw):
    return tuple(
        (
            draw(u32),
            draw(u32),
            draw(st.lists(events, max_size=6).map(tuple)),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    )


def _with_header(payload_strategy):
    """Wrap a payload-fields strategy with the shared header fields."""
    return st.tuples(u32, windows, u32, payload_strategy)


messages = st.one_of(
    _with_header(st.none()).map(lambda t: Message(t[0], t[1], t[2])),
    _with_header(event_batches).map(
        lambda t: EventBatchMessage(t[0], t[1], t[2], t[3])
    ),
    _with_header(event_batches).map(
        lambda t: SortedRunMessage(t[0], t[1], t[2], t[3])
    ),
    _with_header(
        st.tuples(st.lists(synopses(), max_size=8).map(tuple), u64)
    ).map(lambda t: SynopsisMessage(t[0], t[1], t[2], t[3][0], t[3][1])),
    _with_header(st.lists(u32, max_size=30).map(tuple)).map(
        lambda t: CandidateRequestMessage(t[0], t[1], t[2], t[3])
    ),
    _with_header(st.tuples(u32, event_batches)).map(
        lambda t: CandidateEventsMessage(t[0], t[1], t[2], t[3][0], t[3][1])
    ),
    _with_header(st.none()).map(
        lambda t: SynopsisRequestMessage(t[0], t[1], t[2])
    ),
    _with_header(st.none()).map(
        lambda t: WindowReleaseMessage(t[0], t[1], t[2])
    ),
    _with_header(st.integers(min_value=2, max_value=2**32 - 1)).map(
        lambda t: GammaUpdateMessage(t[0], t[1], t[2], t[3])
    ),
    _with_header(
        st.tuples(
            st.lists(st.tuples(f64, f64), max_size=20).map(tuple), f64, f64
        )
    ).map(lambda t: DigestMessage(t[0], t[1], t[2], t[3][0], t[3][1], t[3][2])),
    _with_header(st.tuples(st.lists(f64, max_size=8).map(tuple), u64)).map(
        lambda t: PartialAggregateMessage(t[0], t[1], t[2], t[3][0], t[3][1])
    ),
    _with_header(
        st.tuples(
            st.lists(st.tuples(u32, u64, u32), max_size=20).map(tuple), u64
        )
    ).map(lambda t: QDigestMessage(t[0], t[1], t[2], t[3][0], t[3][1])),
    _with_header(u64).map(lambda t: WatermarkMessage(t[0], t[1], t[2], t[3])),
    _with_header(st.tuples(f64, u64)).map(
        lambda t: ResultMessage(t[0], t[1], t[2], t[3][0], t[3][1])
    ),
    _with_header(u64).map(lambda t: HeartbeatMessage(t[0], t[1], t[2], t[3])),
    _with_header(
        st.tuples(u32, f64, window_kinds, u64, u64, u32, u64, selector_text)
    ).map(
        lambda t: QueryRegisterMessage(
            t[0], t[1], t[2],
            query_id=t[3][0], q=t[3][1], kind=t[3][2], length_ms=t[3][3],
            step_ms=t[3][4], gamma=t[3][5], freshness_ms=t[3][6],
            selector=t[3][7],
        )
    ),
    _with_header(st.tuples(u32, st.booleans(), selector_text)).map(
        lambda t: QueryAckMessage(
            t[0], t[1], t[2],
            query_id=t[3][0], accepted=t[3][1], reason=t[3][2],
        )
    ),
    _with_header(st.tuples(u32, f64, u64, u64)).map(
        lambda t: QueryResultMessage(
            t[0], t[1], t[2],
            query_id=t[3][0], value=t[3][1],
            global_window_size=t[3][2], rank=t[3][3],
        )
    ),
    _with_header(u32).map(
        lambda t: QueryDeregisterMessage(t[0], t[1], t[2], query_id=t[3])
    ),
    _with_header(st.integers(min_value=-(2**40), max_value=2**40)).map(
        lambda t: JoinMessage(t[0], t[1], t[2], first_window_start=t[3])
    ),
    _with_header(st.integers(min_value=-(2**40), max_value=2**40)).map(
        lambda t: LeaveMessage(t[0], t[1], t[2], effective_from=t[3])
    ),
    _with_header(st.tuples(u64, st.lists(u32, max_size=12).map(tuple))).map(
        lambda t: RouteUpdateMessage(
            t[0], t[1], t[2], epoch=t[3][0], members=t[3][1]
        )
    ),
    _with_header(relay_synopsis_sections()).map(
        lambda t: RelaySynopsisMessage(t[0], t[1], t[2], sections=t[3])
    ),
    _with_header(relay_run_sections()).map(
        lambda t: RelayRunsMessage(t[0], t[1], t[2], sections=t[3])
    ),
    _with_header(st.tuples(u64, st.lists(u32, max_size=8).map(tuple))).map(
        lambda t: ShardFailoverMessage(
            t[0], t[1], t[2], epoch=t[3][0], dead=t[3][1]
        )
    ),
    _with_header(u64).map(
        lambda t: ResultAckMessage(t[0], t[1], t[2], cursor=t[3])
    ),
    # Fleet telemetry (tags 27–28): stat names and metric names are
    # arbitrary UTF-8 on the wire, like query selectors.
    _with_header(
        st.tuples(
            u64, st.lists(st.tuples(selector_text, f64), max_size=8).map(tuple)
        )
    ).map(
        lambda t: TelemetrySnapshotMessage(
            t[0], t[1], t[2], sequence=t[3][0], stats=t[3][1]
        )
    ),
    _with_header(
        st.tuples(
            selector_text,
            u64,
            st.lists(st.tuples(f64, f64), max_size=20).map(tuple),
            f64,
            f64,
        )
    ).map(
        lambda t: TelemetryDigestMessage(
            t[0], t[1], t[2],
            metric=t[3][0], sequence=t[3][1], centroids=t[3][2],
            minimum=t[3][3], maximum=t[3][4],
        )
    ),
)


# ----------------------------------------------------------------------
# Property tests: sizes and round trips for every message type.
# ----------------------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(messages)
def test_sizes_and_roundtrip(message):
    payload = encode_payload(message)
    assert len(payload) == message.payload_bytes

    frame = encode_frame(message)
    assert len(frame) == message.wire_bytes
    assert len(frame) == MESSAGE_HEADER_BYTES + message.payload_bytes

    decoded = decode_frame(frame)
    assert type(decoded) is type(message)
    assert decoded.sender == message.sender
    assert decoded.window == message.window
    assert decoded.group_id == message.group_id
    # Bit-level round trip holds even for NaN payloads; object equality
    # additionally holds whenever no NaN is involved.
    assert encode_frame(decoded) == frame
    if "nan" not in repr(message):
        assert decoded == message


@settings(max_examples=300, deadline=None)
@given(messages)
def test_decode_body_matches_decode_frame(message):
    frame = encode_frame(message)
    body = frame[wire.LENGTH_PREFIX.size:]
    assert encode_frame(decode_body(body)) == frame


@settings(max_examples=100, deadline=None)
@given(messages)
def test_decode_payload_entry_point(message):
    decoded = decode_payload(
        tag_of(message),
        encode_payload(message),
        sender=message.sender,
        window=message.window,
        group_id=message.group_id,
    )
    assert encode_frame(decoded) == encode_frame(message)


# ----------------------------------------------------------------------
# Representative instances: explicit payload arithmetic per type.
# ----------------------------------------------------------------------

W = Window(0, 1000)
E = Event(value=1.5, timestamp=10, node_id=3, seq=7)
S = SliceSynopsis(
    first_key=(1.0, 3, 0),
    last_key=(2.0, 3, 5),
    count=6,
    node_id=3,
    slice_index=0,
    n_slices=2,
)

SAMPLES = [
    (Message(1, W), 0),
    (EventBatchMessage(1, W, events=(E, E)), 4 + 2 * 20),
    (SortedRunMessage(1, W, events=(E,)), 4 + 20),
    (SynopsisMessage(1, W, synopses=(S,), local_window_size=6), 4 + 8 + 48),
    (CandidateRequestMessage(0, W, slice_indices=(0, 1, 2)), 4 + 3 * 4),
    (CandidateEventsMessage(1, W, slice_index=1, events=(E,)), 4 + 4 + 20),
    (SynopsisRequestMessage(0, W), 0),
    (WindowReleaseMessage(0, W), 0),
    (GammaUpdateMessage(0, W, gamma=64), 4),
    (
        DigestMessage(1, W, centroids=((1.0, 2.0),), minimum=0.5, maximum=1.5),
        4 + 2 * 8 + 16,
    ),
    (
        PartialAggregateMessage(1, W, state=(1.0, 2.0, 3.0), local_window_size=5),
        4 + 8 + 3 * 8,
    ),
    (QDigestMessage(1, W, nodes=((1, 2, 3),), local_count=9), 4 + 8 + 16),
    (WatermarkMessage(5, W, watermark_time=999), 8),
    (ResultMessage(0, W, value=1.5, global_window_size=10), 8 + 8),
    (HeartbeatMessage(1, W, sequence=17), 8),
    # Query plane (tags 16–19): the register fixed part is 44 bytes, the
    # ack fixed part 8; both carry a u32-counted UTF-8 tail.
    (
        QueryRegisterMessage(
            9001, W, query_id=7, q=0.9, kind="sliding", length_ms=1000,
            step_ms=500, gamma=32, selector="mod:3:1",
        ),
        44 + 4 + 7,
    ),
    (
        QueryAckMessage(0, W, query_id=7, accepted=False, reason="no"),
        8 + 4 + 2,
    ),
    (
        QueryResultMessage(
            0, W, query_id=7, value=1.5, global_window_size=10, rank=5
        ),
        28,
    ),
    (QueryDeregisterMessage(9001, W, query_id=7), 4),
    # Mesh membership + relay aggregation (tags 20–24).
    (JoinMessage(3, W, first_window_start=1000), 8),
    (LeaveMessage(3, W, effective_from=2000), 8),
    (RouteUpdateMessage(0, W, epoch=2, members=(1, 2, 3)), 8 + 4 + 3 * 4),
    # One section of two compact synopses: count + (16 + 2·36).
    (
        RelaySynopsisMessage(
            9, W,
            sections=(
                (
                    3,
                    12,
                    (
                        SliceSynopsis(
                            first_key=(1.0, 3, 0), last_key=(2.0, 3, 5),
                            count=6, node_id=3, slice_index=0, n_slices=2,
                        ),
                        SliceSynopsis(
                            first_key=(2.5, 3, 6), last_key=(3.0, 3, 11),
                            count=6, node_id=3, slice_index=1, n_slices=2,
                        ),
                    ),
                ),
            ),
        ),
        4 + 16 + 2 * 36,
    ),
    # Two run sections: count + 2·(12 + 1·20).
    (
        RelayRunsMessage(
            9, W, sections=((3, 0, (E,)), (4, 1, (E,))),
        ),
        4 + 2 * (12 + 20),
    ),
    # Failover + durable query plane (tags 25–26): epoch u64 plus a
    # u32-counted dead-shard list; result-cursor ack is a bare u64.
    (ShardFailoverMessage(0, W, epoch=3, dead=(0, 2)), 8 + 4 + 2 * 4),
    (ResultAckMessage(9001, W, cursor=7), 8),
    # Fleet telemetry (tags 27–28): a snapshot is sequence u64 + stat
    # count + per-stat (u32-counted UTF-8 name + f64 value); a digest is
    # a u32-counted metric name, sequence u64, then the DigestMessage
    # layout (centroid count, min/max f64, 16-byte centroid pairs).
    (
        TelemetrySnapshotMessage(
            3, W, sequence=5,
            stats=(("frames_sent", 12.0), ("lag_s", 0.5)),
        ),
        8 + 4 + (4 + 11 + 8) + (4 + 5 + 8),
    ),
    (
        TelemetryDigestMessage(
            3, W, metric="seal_to_result_s", sequence=2,
            centroids=((1.0, 2.0),), minimum=0.5, maximum=1.5,
        ),
        4 + 16 + 8 + 4 + 2 * 8 + 16,
    ),
]


def test_samples_cover_every_registered_type():
    assert {type(m) for m, _ in SAMPLES} == set(TAG_BY_TYPE)
    assert TYPE_BY_TAG == {tag: cls for cls, tag in TAG_BY_TYPE.items()}
    assert HELLO_TAG not in TYPE_BY_TAG  # control frame, not a message


@pytest.mark.parametrize(
    "message,expected_payload",
    SAMPLES,
    ids=[type(m).__name__ for m, _ in SAMPLES],
)
def test_representative_sizes(message, expected_payload):
    assert message.payload_bytes == expected_payload
    assert message.wire_bytes == MESSAGE_HEADER_BYTES + expected_payload
    assert len(encode_payload(message)) == expected_payload
    assert decode_frame(encode_frame(message)) == message


def test_nan_and_infinity_survive_the_wire():
    message = EventBatchMessage(
        1,
        W,
        events=(
            Event(float("nan"), 1, 1, 1),
            Event(float("inf"), 2, 1, 2),
            Event(float("-inf"), 3, 1, 3),
            Event(-0.0, 4, 1, 4),
        ),
    )
    decoded = decode_frame(encode_frame(message))
    values = [e.value for e in decoded.events]
    assert math.isnan(values[0])
    assert values[1] == float("inf")
    assert values[2] == float("-inf")
    assert math.copysign(1.0, values[3]) == -1.0


def test_large_synopsis_batch_roundtrip():
    synopses = tuple(
        SliceSynopsis(
            first_key=(float(i), 1, i * 10),
            last_key=(float(i) + 0.5, 1, i * 10 + 9),
            count=10,
            node_id=1,
            slice_index=i,
            n_slices=500,
        )
        for i in range(500)
    )
    message = SynopsisMessage(1, W, synopses=synopses, local_window_size=5000)
    assert message.payload_bytes == 4 + 8 + 500 * 48
    assert decode_frame(encode_frame(message)) == message


def test_unicode_selector_counts_utf8_bytes():
    # Payload size follows the UTF-8 encoding, not the codepoint count:
    # "κλειδί-🔑" is 8 codepoints but 17 UTF-8 bytes.
    selector = "κλειδί-🔑"
    assert len(selector) == 8 and len(selector.encode("utf-8")) == 17
    message = QueryRegisterMessage(1, W, query_id=1, selector=selector)
    assert message.payload_bytes == 44 + 4 + 17
    decoded = decode_frame(encode_frame(message))
    assert decoded == message
    assert decoded.selector == selector


def test_query_ack_unicode_reason_roundtrip():
    message = QueryAckMessage(
        0, W, query_id=3, accepted=False, reason="пока нет — später"
    )
    assert message.payload_bytes == 8 + 4 + len(
        message.reason.encode("utf-8")
    )
    assert decode_frame(encode_frame(message)) == message


# ----------------------------------------------------------------------
# Hello control frames.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("role", ["stream", "local", "root", "driver", "relay"])
def test_hello_roundtrip(role):
    frame = encode_hello(Hello(node_id=9, role=role))
    assert len(frame) == MESSAGE_HEADER_BYTES + wire.U32_BYTES + wire.I64_BYTES
    assert decode_frame(frame) == Hello(node_id=9, role=role)


@pytest.mark.parametrize("resume_from", [-1, 0, 3000, 2**40])
def test_hello_resume_cursor_roundtrip(resume_from):
    hello = Hello(node_id=2, role="local", resume_from=resume_from)
    decoded = decode_frame(encode_hello(hello))
    assert decoded == hello
    assert decoded.resume_from == resume_from


def test_hello_rejects_unknown_role():
    with pytest.raises(CodecError, match="unknown hello role"):
        Hello(node_id=1, role="observer")


def test_hello_rejects_unknown_role_code():
    frame = bytearray(encode_hello(Hello(node_id=1, role="root")))
    # The role u32 sits right after the header, before the resume cursor.
    frame[MESSAGE_HEADER_BYTES:MESSAGE_HEADER_BYTES + 4] = wire.U32.pack(99)
    with pytest.raises(CodecError, match="role code 99"):
        decode_frame(bytes(frame))


# ----------------------------------------------------------------------
# Header extensions: trace context and forward compatibility.
# ----------------------------------------------------------------------

contexts = st.builds(
    TraceContext,
    trace_id=u64,
    span_id=u64,
    sampled=st.booleans(),
)

#: Extension block framing cost: count byte + (type, length) + 17-byte body.
_EXT_BLOCK_BYTES = (
    wire.EXT_COUNT.size + wire.EXT_HEADER.size + wire.TRACE_CONTEXT_EXT_BYTES
)


def _frame_with_extensions(message, ext_block: bytes) -> bytes:
    """Hand-assemble a frame with an arbitrary extension block."""
    plain = encode_frame(message)
    body = bytearray(plain[wire.LENGTH_PREFIX.size:])
    body[2:4] = wire.FLAG_EXTENSIONS.to_bytes(2, "little")
    body[wire.HEADER.size:wire.HEADER.size] = ext_block
    return wire.LENGTH_PREFIX.pack(len(body)) + bytes(body)


@settings(max_examples=300, deadline=None)
@given(messages, contexts)
def test_trace_context_roundtrip(message, context):
    frame = encode_frame(message, context)
    # Telemetry overhead is real, accounted bytes: exactly one ext block.
    assert len(frame) == message.wire_bytes + _EXT_BLOCK_BYTES

    decoded, got = decode_frame_traced(frame)
    assert got == context
    assert encode_frame(decoded, got) == frame

    body = frame[wire.LENGTH_PREFIX.size:]
    decoded2, got2 = decode_body_traced(body)
    assert got2 == context
    assert encode_frame(decoded2) == encode_frame(message)


@settings(max_examples=100, deadline=None)
@given(messages)
def test_frame_without_context_has_no_extension_bytes(message):
    frame = encode_frame(message, None)
    assert frame == encode_frame(message)
    assert len(frame) == message.wire_bytes
    decoded, context = decode_frame_traced(frame)
    assert context is None
    assert encode_frame(decoded) == frame


@settings(max_examples=100, deadline=None)
@given(contexts)
def test_legacy_decoders_discard_context(context):
    message = WatermarkMessage(5, W, watermark_time=42)
    frame = encode_frame(message, context)
    assert decode_frame(frame) == message
    assert decode_body(frame[wire.LENGTH_PREFIX.size:]) == message


def test_unknown_extension_type_is_skipped():
    # A future peer attaches an extension type we have never heard of:
    # the decoder must step over it by its declared length.
    message = WatermarkMessage(5, W, watermark_time=42)
    ext = (
        wire.EXT_COUNT.pack(1)
        + wire.EXT_HEADER.pack(200, 5)
        + b"\xaa" * 5
    )
    decoded, context = decode_frame_traced(_frame_with_extensions(message, ext))
    assert decoded == message
    assert context is None


def test_unknown_extension_before_trace_context():
    message = WatermarkMessage(5, W, watermark_time=42)
    trace_body = wire.TRACE_CONTEXT_EXT.pack(7, 9, wire.TRACE_SAMPLED_BIT)
    ext = (
        wire.EXT_COUNT.pack(2)
        + wire.EXT_HEADER.pack(200, 3)
        + b"\xbb" * 3
        + wire.EXT_HEADER.pack(wire.EXT_TRACE_CONTEXT, len(trace_body))
        + trace_body
    )
    decoded, context = decode_frame_traced(_frame_with_extensions(message, ext))
    assert decoded == message
    assert context == TraceContext(trace_id=7, span_id=9, sampled=True)


def test_malformed_trace_context_extension_rejected():
    message = WatermarkMessage(5, W, watermark_time=42)
    ext = (
        wire.EXT_COUNT.pack(1)
        + wire.EXT_HEADER.pack(wire.EXT_TRACE_CONTEXT, 3)
        + b"\x00" * 3
    )
    with pytest.raises(CodecError, match="trace-context extension of 3"):
        decode_frame_traced(_frame_with_extensions(message, ext))


#: One section-context entry's framing cost: (type, length) + 17-byte body.
_SECTION_ENTRY_BYTES = wire.EXT_HEADER.size + wire.TRACE_CONTEXT_EXT_BYTES


@st.composite
def relay_messages_with_section_contexts(draw):
    """Relay frames whose per-section contexts align with the sections."""
    if draw(st.booleans()):
        sections = draw(relay_synopsis_sections())
        cls = RelaySynopsisMessage
    else:
        sections = draw(relay_run_sections())
        cls = RelayRunsMessage
    section_contexts = tuple(
        draw(st.one_of(st.none(), contexts)) for _ in sections
    )
    return cls(
        draw(u32), draw(windows), draw(u32),
        sections=sections, section_contexts=section_contexts,
    )


@settings(max_examples=200, deadline=None)
@given(relay_messages_with_section_contexts())
def test_section_context_roundtrip(message):
    frame = encode_frame(message)
    # One extension entry per section — absent contexts ship the marker
    # so alignment survives untraced children.  Real, accounted bytes.
    expected_ext = (
        wire.EXT_COUNT.size + len(message.sections) * _SECTION_ENTRY_BYTES
        if message.sections
        else 0
    )
    assert len(frame) == message.wire_bytes + expected_ext

    decoded = decode_frame(frame)
    assert decoded.section_contexts == message.section_contexts
    # Bit-level round trip holds even for NaN payloads; object equality
    # additionally holds whenever no NaN is involved.
    assert encode_frame(decoded) == frame
    if "nan" not in repr(message):
        assert decoded == message


@settings(max_examples=100, deadline=None)
@given(relay_messages_with_section_contexts(), contexts)
def test_section_contexts_compose_with_frame_context(message, context):
    decoded, got = decode_frame_traced(encode_frame(message, context))
    assert got == context
    assert decoded.section_contexts == message.section_contexts


def test_section_context_count_mismatch_rejected():
    message = RelayRunsMessage(9, W, sections=((3, 0, (E,)), (4, 1, (E,))))
    ext = (
        wire.EXT_COUNT.pack(1)
        + wire.EXT_HEADER.pack(
            wire.EXT_SECTION_CONTEXT, wire.TRACE_CONTEXT_EXT_BYTES
        )
        + wire.TRACE_CONTEXT_EXT.pack(7, 9, 0)
    )
    with pytest.raises(CodecError, match="1 section-context extensions"):
        decode_frame_traced(_frame_with_extensions(message, ext))


def test_malformed_section_context_extension_rejected():
    message = RelayRunsMessage(9, W, sections=((3, 0, (E,)),))
    ext = (
        wire.EXT_COUNT.pack(1)
        + wire.EXT_HEADER.pack(wire.EXT_SECTION_CONTEXT, 5)
        + b"\x00" * 5
    )
    with pytest.raises(CodecError, match="section-context extension of 5"):
        decode_frame_traced(_frame_with_extensions(message, ext))


def test_section_context_on_sectionless_message_ignored():
    # A confused peer attaches section contexts to a frame type that has
    # no sections: the entries are decoded and dropped, not an error —
    # same forward-compatibility posture as unknown extension types.
    message = WatermarkMessage(5, W, watermark_time=42)
    ext = (
        wire.EXT_COUNT.pack(1)
        + wire.EXT_HEADER.pack(
            wire.EXT_SECTION_CONTEXT, wire.TRACE_CONTEXT_EXT_BYTES
        )
        + wire.TRACE_CONTEXT_EXT.pack(7, 9, 0)
    )
    decoded, context = decode_frame_traced(_frame_with_extensions(message, ext))
    assert decoded == message
    assert context is None


def test_truncated_extension_block_rejected():
    # Announces one extension, then the frame ends mid-block.
    message = WatermarkMessage(5, W, watermark_time=42)
    plain = encode_frame(message)
    header_end = wire.LENGTH_PREFIX.size + wire.HEADER.size
    body = bytearray(plain[wire.LENGTH_PREFIX.size:header_end])
    body[2:4] = wire.FLAG_EXTENSIONS.to_bytes(2, "little")
    body += wire.EXT_COUNT.pack(1)  # count says 1, then nothing follows
    frame = wire.LENGTH_PREFIX.pack(len(body)) + bytes(body)
    with pytest.raises(CodecError, match="truncated"):
        decode_frame_traced(frame)


# ----------------------------------------------------------------------
# Error paths.
# ----------------------------------------------------------------------

_FRAME = encode_frame(WatermarkMessage(5, W, watermark_time=42))
# Offsets into the full frame: 4-byte length prefix, then the header.
_VERSION_AT = wire.LENGTH_PREFIX.size
_TAG_AT = _VERSION_AT + 1
_FLAGS_AT = _TAG_AT + 1


def _mutated(offset: int, value: int) -> bytes:
    frame = bytearray(_FRAME)
    frame[offset] = value
    return bytes(frame)


def test_version_mismatch_rejected():
    with pytest.raises(CodecError, match="version mismatch"):
        decode_frame(_mutated(_VERSION_AT, wire.WIRE_VERSION + 1))


def test_unknown_tag_rejected():
    with pytest.raises(CodecError, match="unknown frame type tag 200"):
        decode_frame(_mutated(_TAG_AT, 200))


def test_unknown_flag_bits_rejected():
    # Bit 0 is FLAG_EXTENSIONS (assigned); bit 1 is the lowest unknown bit.
    with pytest.raises(CodecError, match="unknown flag bits"):
        decode_frame(_mutated(_FLAGS_AT, 2))


def test_truncated_payload_rejected():
    with pytest.raises(CodecError, match="truncated"):
        decode_payload(
            tag_of(WatermarkMessage(5, W)), b"\x00" * 7, sender=5, window=W
        )


def test_trailing_payload_bytes_rejected():
    with pytest.raises(CodecError, match="trailing"):
        decode_payload(
            tag_of(WatermarkMessage(5, W)), b"\x00" * 9, sender=5, window=W
        )


def test_frame_shorter_than_length_prefix():
    with pytest.raises(CodecError, match="shorter than its length prefix"):
        decode_frame(b"\x01")


def test_frame_length_prefix_mismatch():
    with pytest.raises(CodecError, match="length prefix says"):
        decode_frame(_FRAME + b"\x00")


def test_oversize_length_prefix_rejected():
    frame = wire.LENGTH_PREFIX.pack(wire.MAX_FRAME_BYTES + 1)
    with pytest.raises(CodecError, match="exceeds MAX_FRAME_BYTES"):
        decode_frame(frame + b"\x00" * 8)


def test_body_shorter_than_header():
    with pytest.raises(CodecError, match="shorter than"):
        decode_body(b"\x00" * (wire.HEADER.size - 1))


def test_unregistered_type_has_no_tag():
    class Unregistered(Message):
        pass

    stranger = Unregistered(1, W)
    with pytest.raises(CodecError, match="no wire tag"):
        tag_of(stranger)
    with pytest.raises(CodecError, match="no payload encoder"):
        encode_payload(stranger)


def test_decode_payload_unknown_tag():
    with pytest.raises(CodecError, match="unknown frame type tag"):
        decode_payload(99, b"", sender=0, window=W)


def test_shard_failover_truncated_dead_list_rejected():
    # The count announces two dead shards, then the payload ends one
    # u32 short: the decoder must reject, never fabricate a shard map.
    message = ShardFailoverMessage(0, W, epoch=3, dead=(0, 2))
    payload = encode_payload(message)
    with pytest.raises(CodecError, match="truncated"):
        decode_payload(tag_of(message), payload[:-4], sender=0, window=W)


def test_shard_failover_trailing_bytes_rejected():
    message = ShardFailoverMessage(0, W, epoch=3, dead=(0,))
    payload = encode_payload(message) + b"\x00"
    with pytest.raises(CodecError, match="trailing"):
        decode_payload(tag_of(message), payload, sender=0, window=W)


def test_telemetry_snapshot_truncated_stat_rejected():
    # The stat count announces two entries, then the payload ends mid
    # way through the second value: reject, never invent a gauge.
    message = TelemetrySnapshotMessage(
        3, W, sequence=5, stats=(("a", 1.0), ("b", 2.0))
    )
    payload = encode_payload(message)
    with pytest.raises(CodecError, match="truncated"):
        decode_payload(tag_of(message), payload[:-4], sender=3, window=W)


def test_telemetry_snapshot_trailing_bytes_rejected():
    message = TelemetrySnapshotMessage(3, W, sequence=5, stats=(("a", 1.0),))
    payload = encode_payload(message) + b"\x00"
    with pytest.raises(CodecError, match="trailing"):
        decode_payload(tag_of(message), payload, sender=3, window=W)


def test_telemetry_snapshot_overlong_name_rejected():
    # A stat-name byte count pointing past the end of the payload.
    message = TelemetrySnapshotMessage(3, W, sequence=5, stats=(("ab", 1.0),))
    payload = bytearray(encode_payload(message))
    # The name count sits after sequence (8) and stat count (4).
    payload[12:16] = wire.U32.pack(1000)
    with pytest.raises(CodecError, match="truncated"):
        decode_payload(tag_of(message), bytes(payload), sender=3, window=W)


def test_telemetry_digest_truncated_centroids_rejected():
    message = TelemetryDigestMessage(
        3, W, metric="m", sequence=1,
        centroids=((1.0, 2.0), (3.0, 4.0)), minimum=1.0, maximum=3.0,
    )
    payload = encode_payload(message)
    with pytest.raises(CodecError, match="truncated"):
        decode_payload(tag_of(message), payload[:-8], sender=3, window=W)


def test_telemetry_digest_trailing_bytes_rejected():
    message = TelemetryDigestMessage(
        3, W, metric="m", sequence=1,
        centroids=((1.0, 2.0),), minimum=1.0, maximum=1.0,
    )
    payload = encode_payload(message) + b"\x00"
    with pytest.raises(CodecError, match="trailing"):
        decode_payload(tag_of(message), payload, sender=3, window=W)


def test_result_ack_truncated_cursor_rejected():
    message = ResultAckMessage(9001, W, cursor=7)
    with pytest.raises(CodecError, match="truncated"):
        decode_payload(tag_of(message), b"\x00" * 7, sender=9001, window=W)


def test_result_ack_trailing_bytes_rejected():
    message = ResultAckMessage(9001, W, cursor=7)
    with pytest.raises(CodecError, match="trailing"):
        decode_payload(tag_of(message), b"\x00" * 9, sender=9001, window=W)


# Columnar event arrays are decoded as one zero-copy tail slice, so the
# decoder must check the byte length itself: a payload whose event array
# is not a whole number of 20-byte strides (or disagrees with the
# announced count) is rejected outright — iter_unpack's old behavior of
# silently dropping a truncated final event is exactly the bug this
# guards against.


@pytest.mark.parametrize(
    "factory",
    [
        lambda events: EventBatchMessage(1, W, events=events),
        lambda events: SortedRunMessage(1, W, events=events),
        lambda events: CandidateEventsMessage(
            1, W, slice_index=0, events=events
        ),
    ],
    ids=["event_batch", "sorted_run", "candidate_events"],
)
def test_event_array_stride_mismatch_rejected(factory):
    message = factory((E, E, E))
    payload = encode_payload(message)
    for cut in (1, 19):  # mid-event truncation from either end of a stride
        with pytest.raises(CodecError, match="stride"):
            decode_payload(
                tag_of(message), payload[:-cut], sender=1, window=W
            )
    with pytest.raises(CodecError, match="stride"):  # oversize, non-stride
        decode_payload(
            tag_of(message), payload + b"\x00" * 7, sender=1, window=W
        )


@pytest.mark.parametrize(
    "factory",
    [
        lambda events: EventBatchMessage(1, W, events=events),
        lambda events: SortedRunMessage(1, W, events=events),
        lambda events: CandidateEventsMessage(
            1, W, slice_index=0, events=events
        ),
    ],
    ids=["event_batch", "sorted_run", "candidate_events"],
)
def test_event_array_count_mismatch_rejected(factory):
    # A whole extra (or missing) event is stride-aligned, so only the
    # announced count can catch it.
    message = factory((E, E))
    payload = encode_payload(message)
    extra = wire.EVENT.pack(E.value, E.timestamp, E.node_id, E.seq)
    with pytest.raises(CodecError, match="announced"):
        decode_payload(tag_of(message), payload + extra, sender=1, window=W)
    with pytest.raises(CodecError, match="announced"):
        decode_payload(
            tag_of(message), payload[:-wire.EVENT.size], sender=1, window=W
        )


def test_relay_runs_truncated_section_events_rejected():
    message = RelayRunsMessage(9, W, sections=((3, 0, (E, E)),))
    payload = encode_payload(message)
    with pytest.raises(CodecError, match="truncated"):
        decode_payload(tag_of(message), payload[:-3], sender=9, window=W)


def test_relay_runs_section_count_overruns_rejected():
    # The section header announces more events than the payload holds.
    message = RelayRunsMessage(9, W, sections=((3, 0, (E,)),))
    payload = bytearray(encode_payload(message))
    # Section event count sits after the section count (4) and the
    # node_id + slice_index pair (8).
    payload[12:16] = wire.U32.pack(2)
    with pytest.raises(CodecError, match="truncated"):
        decode_payload(tag_of(message), bytes(payload), sender=9, window=W)
