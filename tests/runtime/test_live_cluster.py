"""Live cluster tests: the asyncio runtime against the simulator.

The headline assertion is bit-identical equivalence: the same seeded
workload through ``DemaEngine`` (simulated) and ``run_live`` (real codec,
real transport) produces exactly the same quantile per window, because the
operators are literally the same objects on both substrates.

The TCP smoke test is wrapped in a SIGALRM hard timeout so a wedged event
loop fails the suite instead of hanging it (the container has no
pytest-timeout).
"""

import contextlib
import functools
import signal

import pytest

from repro.bench.generator import GeneratorConfig, workload
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.errors import ConfigurationError
from repro.network.topology import TopologyConfig
from repro.obs.tracer import RecordingTracer
from repro.runtime.cluster import LiveClusterConfig, run_live
from repro.streaming.events import Event

#: Fixed γ: adaptive γ would feed back each substrate's own timing, which
#: is exactly the nondeterminism the equivalence claim excludes.
QUERY = QuantileQuery(q=0.5, gamma=64)

N_LOCALS = 2


@contextlib.contextmanager
def hard_timeout(seconds: int):
    def on_alarm(signum, frame):
        raise TimeoutError(f"live test exceeded {seconds}s wall clock")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@functools.lru_cache(maxsize=1)
def _streams():
    generated = workload(
        list(range(1, N_LOCALS + 1)),
        GeneratorConfig(event_rate=300.0, duration_s=3.0, seed=11),
    )
    return {node: tuple(events) for node, events in generated.items()}


@functools.lru_cache(maxsize=1)
def _simulated_values():
    report = DemaEngine(
        QUERY, TopologyConfig(n_local_nodes=N_LOCALS)
    ).run({node: list(events) for node, events in _streams().items()})
    return {
        outcome.window: outcome.value
        for outcome in report.outcomes
        if outcome.value is not None
    }


def _live_values(report):
    return {
        outcome.window: outcome.value
        for outcome in report.outcomes
        if outcome.value is not None
    }


def _config(**overrides):
    defaults = dict(
        n_locals=N_LOCALS,
        streams_per_local=2,
        query=QUERY,
        transport="memory",
        timeout_s=60.0,
    )
    defaults.update(overrides)
    return LiveClusterConfig(**defaults)


def test_memory_run_matches_simulator_bit_exactly():
    with hard_timeout(120):
        report = run_live(_config(), _streams())
    expected = _simulated_values()
    assert len(expected) >= 3  # the workload touches at least three windows
    assert _live_values(report) == expected


def test_tcp_smoke():
    """Full topology (1 root, 2 locals, 4 streams) over real sockets."""
    with hard_timeout(120):
        report = run_live(_config(transport="tcp"), _streams())

    assert _live_values(report) == _simulated_values()
    assert report.windows >= 3
    assert report.transport == "tcp"
    assert report.events_sent == sum(len(s) for s in _streams().values())
    assert report.events_per_second > 0
    assert set(report.bytes_by_layer) == {"stream_local", "local_root"}
    assert all(b > 0 for b in report.bytes_by_layer.values())
    assert report.total_bytes == sum(report.bytes_by_layer.values())
    assert report.seal_to_result.count == len(_live_values(report))
    assert report.seal_to_result.max >= 0.0


def test_paced_replay_respects_time_scale():
    streams = {1: tuple(Event(float(i), i * 10, 1, i) for i in range(100))}
    with hard_timeout(120):
        report = run_live(
            _config(n_locals=1, streams_per_local=1, time_scale=0.25),
            streams,
        )
    # 990 ms of event time at 0.25 wall seconds per event-time second.
    assert report.wall_seconds >= 0.2
    assert len(_live_values(report)) == 1


def test_tracer_records_live_links_and_messages():
    tracer = RecordingTracer()
    with hard_timeout(120):
        run_live(_config(), _streams(), tracer=tracer)

    kinds = {type(trace.message).__name__ for trace in tracer.messages}
    assert "SynopsisMessage" in kinds
    assert "CandidateEventsMessage" in kinds

    registry = tracer.registry
    # Every local ↔ root link got byte and message gauges.
    for local_id in range(1, N_LOCALS + 1):
        up = registry.value("live_link_bytes", src=str(local_id), dst="0")
        down = registry.value("live_link_bytes", src="0", dst=str(local_id))
        assert up > 0 and down > 0
        assert registry.value(
            "live_link_messages", src=str(local_id), dst="0"
        ) > 0


def test_clean_run_reports_no_fault_activity():
    """Without fault injection the tolerance counters stay at zero."""
    with hard_timeout(120):
        report = run_live(_config(), _streams())
    assert report.reconnects == 0
    assert report.heartbeat_misses == 0
    assert report.degraded_windows == 0
    assert report.locals_declared_dead == 0
    assert report.dropped_sends == 0
    assert report.windows_lost == 0
    assert report.fault_events == []


class TestConfigValidation:
    def test_rejects_bad_transport(self):
        with pytest.raises(ConfigurationError, match="transport"):
            LiveClusterConfig(transport="carrier-pigeon")

    def test_rejects_zero_locals(self):
        with pytest.raises(ConfigurationError, match="local"):
            LiveClusterConfig(n_locals=0)

    def test_rejects_zero_streams(self):
        with pytest.raises(ConfigurationError, match="stream"):
            LiveClusterConfig(streams_per_local=0)

    def test_rejects_negative_time_scale(self):
        with pytest.raises(ConfigurationError, match="time_scale"):
            LiveClusterConfig(time_scale=-1.0)

    def test_rejects_faults_without_pacing(self):
        from repro.faults.scenarios import build_plan

        plan = build_plan(
            "crash-reconnect", seed=1, horizon_s=3.0, n_locals=2
        )
        with pytest.raises(ConfigurationError, match="time_scale"):
            LiveClusterConfig(faults=plan)

    def test_rejects_sliding_windows(self):
        sliding = QuantileQuery(
            q=0.5, gamma=64, window_length_ms=1000, window_step_ms=500
        )
        with pytest.raises(ConfigurationError, match="tumbling"):
            run_live(_config(query=sliding), _streams())

    def test_rejects_unknown_stream_keys(self):
        with pytest.raises(ConfigurationError, match="unknown local nodes"):
            run_live(_config(), {99: (Event(1.0, 0, 99, 0),)})

    def test_rejects_empty_workload(self):
        with pytest.raises(ConfigurationError, match="at least one event"):
            run_live(_config(), {1: (), 2: ()})
