"""Fleet telemetry plane: uplink, collector merge, bench and rendering.

The plane's core claim is tested here in isolation: per-node t-digest
uplinks, merged by the collector, reproduce the percentiles a central
observer would compute from every raw sample — at a fraction of the
bytes — and duplicated or re-ordered uplinks (relay replay, failover
reconnects) can never double-count because digests are cumulative and
sequence-stamped.
"""

import json
import random

import pytest

from repro.network.messages import (
    HeartbeatMessage,
    TelemetryDigestMessage,
    TelemetrySnapshotMessage,
)
from repro.obs.fleet import (
    FLEET_QUANTILES,
    FleetCollector,
    TelemetryUplink,
    fleet_benchmark,
    write_fleet_bench,
)
from repro.obs.live.top import render_fleet
from repro.runtime.codec import decode_frame, encode_frame
from repro.sketches.tdigest import TDigest
from repro.streaming.windows import Window

W = Window(0, 1000)


class TestTelemetryUplink:
    def test_idle_node_builds_no_frames(self):
        assert TelemetryUplink(1).build(W) == []

    def test_build_is_snapshot_then_sorted_digests(self):
        uplink = TelemetryUplink(7)
        uplink.observe("z_metric", 1.0)
        uplink.observe("a_metric", 2.0)
        uplink.set_stat("frames_sent", 3.0)
        frames = uplink.build(W)
        assert isinstance(frames[0], TelemetrySnapshotMessage)
        assert frames[0].stats == (("frames_sent", 3.0),)
        assert [f.metric for f in frames[1:]] == ["a_metric", "z_metric"]
        assert all(f.sender == 7 for f in frames)

    def test_sequence_increments_per_build(self):
        uplink = TelemetryUplink(1)
        uplink.set_stat("x", 1.0)
        first = uplink.build(W)
        second = uplink.build(W)
        assert first[0].sequence == 1
        assert second[0].sequence == 2
        assert uplink.sequence == 2

    def test_digests_are_cumulative(self):
        # Every uplink ships the full digest since start — the property
        # that makes last-write-wins at the collector lossless.
        uplink = TelemetryUplink(1)
        for value in (1.0, 2.0):
            uplink.observe("m", value)
        uplink.build(W)
        for value in (3.0, 4.0):
            uplink.observe("m", value)
        (_, digest) = uplink.build(W)
        total = sum(weight for _, weight in digest.centroids)
        assert total == 4
        assert digest.minimum == 1.0
        assert digest.maximum == 4.0
        assert uplink.samples == 4


class TestFleetCollector:
    def _pump(self, collector, uplink, *, through_wire=True):
        for frame in uplink.build(W):
            if through_wire:
                frame = decode_frame(encode_frame(frame))
            assert collector.on_message(frame)

    def test_non_telemetry_frames_are_not_absorbed(self):
        collector = FleetCollector()
        assert not collector.on_message(HeartbeatMessage(1, W, sequence=3))
        assert collector.frames == 0

    def test_merged_percentiles_match_central_oracle(self):
        # Three nodes each observe a disjoint slice of one sample set;
        # the merged fleet view must agree with a central digest over
        # all samples to within t-digest interpolation.
        rng = random.Random(7)
        samples = [rng.lognormvariate(-4.0, 1.0) for _ in range(3000)]
        collector = FleetCollector()
        for node in range(3):
            uplink = TelemetryUplink(node + 1)
            for value in samples[node::3]:
                uplink.observe("seal_to_result_s", value)
            self._pump(collector, uplink)
        central = TDigest(50.0)
        for value in samples:
            central.add(value)
        merged = collector.percentiles("seal_to_result_s")
        assert merged["count"] == len(samples)
        assert merged["min"] == min(samples)
        assert merged["max"] == max(samples)
        for q in FLEET_QUANTILES:
            reference = central.quantile(q)
            assert merged[f"p{int(q * 100)}"] == pytest.approx(
                reference, rel=0.05
            )

    def test_replayed_uplinks_are_idempotent(self):
        # A relay replaying a buffered frame after failover delivers the
        # same sequence twice: the collector must not double-count.
        uplink = TelemetryUplink(1)
        uplink.observe("m", 1.0)
        uplink.set_stat("windows_sealed", 2.0)
        frames = uplink.build(W)
        collector = FleetCollector()
        for _ in range(3):
            for frame in frames:
                collector.on_message(frame)
        assert collector.merged("m").count == 1
        assert collector.stat_sum("windows_sealed") == 2.0
        assert collector.report()["stale_frames"] == 2 * len(frames)

    def test_out_of_order_uplink_never_rolls_backwards(self):
        # Sequence 2 routed through a fast path arrives before the
        # sequence-1 frame a slow relay replays: keep sequence 2.
        collector = FleetCollector()
        late = TelemetryDigestMessage(
            1, W, metric="m", sequence=1,
            centroids=((1.0, 1.0),), minimum=1.0, maximum=1.0,
        )
        fresh = TelemetryDigestMessage(
            1, W, metric="m", sequence=2,
            centroids=((1.0, 1.0), (2.0, 1.0)), minimum=1.0, maximum=2.0,
        )
        collector.on_message(fresh)
        collector.on_message(late)
        assert collector.merged("m").count == 2

    def test_stat_sum_and_max_span_senders(self):
        collector = FleetCollector()
        for node, age in ((1, 0.5), (2, 1.5)):
            uplink = TelemetryUplink(node)
            uplink.set_stat("oldest_pending_age_s", age)
            self._pump(collector, uplink)
        assert collector.stat_sum("oldest_pending_age_s") == 2.0
        assert collector.stat_max("oldest_pending_age_s") == 1.5
        assert collector.stat_max("absent_stat") == 0.0

    def test_empty_metric_reports_zero_count(self):
        assert FleetCollector().percentiles("nothing") == {"count": 0.0}

    def test_report_shape_and_failovers(self):
        collector = FleetCollector()
        uplink = TelemetryUplink(1)
        uplink.observe("m", 1.0)
        self._pump(collector, uplink)
        collector.record_failover(1048576, 1048577, 1, 0.25)
        report = collector.report()
        assert json.loads(json.dumps(report)) == report  # JSON-ready
        assert report["digest_count"] == 1
        assert report["senders"] == [1]
        assert report["metrics"]["m"]["count"] == 1
        assert report["failovers"] == [
            {"dead": 1048576, "successor": 1048577, "epoch": 1, "at": 0.25}
        ]


class TestFleetBench:
    def test_digest_uplink_beats_raw_shipping(self):
        result = fleet_benchmark(
            curve=(2, 4), samples_per_round=1500, rounds=2, seed=1
        )
        assert [point["n_locals"] for point in result["curve"]] == [2, 4]
        for point in result["curve"]:
            assert point["digest_uplink_bytes"] > 0
            assert point["digest_fraction_of_raw"] < 0.10
            assert point["savings"] == pytest.approx(
                1.0 - point["digest_fraction_of_raw"]
            )

    def test_artifact_round_trips_through_json(self, tmp_path):
        path = tmp_path / "BENCH_fleet.json"
        written = write_fleet_bench(
            str(path), curve=(2,), samples_per_round=100, rounds=1
        )
        assert json.loads(path.read_text()) == written
        assert written["benchmark"] == "fleet_telemetry"


class TestRenderFleet:
    def test_dashboard_shows_the_whole_mesh(self):
        collector = FleetCollector()
        uplink = TelemetryUplink(1)
        uplink.observe("seal_to_result_s", 0.05)
        for frame in uplink.build(W):
            collector.on_message(frame)
        collector.record_failover(1048576, 1048577, 1, 0.25)
        fleet = collector.report()
        fleet.update({
            "windows": {"expected": 4, "answered": 4, "completeness": 1.0},
            "epoch": 1,
            "staleness_s": 0.002,
            "shards": [{
                "index": 0, "node_id": 1048576, "live": True,
                "windows_answered": 4, "windows_expected": 4,
                "windows_adopted": 0, "heartbeat_misses": 0,
            }],
            "relays": [{
                "index": 0, "frames_combined": 8, "sections_combined": 32,
                "singleton_forwards": 0, "frames_replayed": 0,
            }],
        })
        text = render_fleet(fleet)
        assert "windows 4/4 (completeness 1.00) epoch 1" in text
        assert "seal_to_result_s" in text
        assert "METRIC" in text and "SHARD" in text and "RELAY" in text
        assert "failover: shard 1048576 -> 1048577 at 0.250s (epoch 1)" in text

    def test_empty_fleet_renders_without_error(self):
        text = render_fleet(FleetCollector().report())
        assert "windows 0/0" in text
