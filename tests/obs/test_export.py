"""Tests for the JSONL, Chrome trace and Prometheus exporters."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.network.messages import Message, SynopsisMessage
from repro.obs.events import MessageTrace, message_to_dict
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    trace_records,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.tracer import RecordingTracer
from repro.streaming.windows import Window

WINDOW = Window(0, 1000)


def sample_tracer() -> RecordingTracer:
    tracer = RecordingTracer()
    parent = tracer.begin("window", 0, 1.0, window=WINDOW)
    tracer.record("identification", 0, 1.0, 1.1, window=WINDOW, parent=parent)
    tracer.end(parent, 1.5)
    message = SynopsisMessage(sender=1, window=WINDOW)
    tracer.record_message(MessageTrace(0.9, 1.0, 1, 0, message))
    lost = Message(sender=2, window=WINDOW)
    tracer.record_message(MessageTrace(0.95, None, 2, 0, lost))
    return tracer


class TestMessageToDict:
    def test_fields(self):
        message = SynopsisMessage(sender=1, window=WINDOW)
        row = message_to_dict(MessageTrace(0.9, 1.0, 1, 0, message))
        assert row["kind"] == "message"
        assert row["type"] == "SynopsisMessage"
        assert row["src"] == 1
        assert row["dst"] == 0
        assert row["sent"] == 0.9
        assert row["delivered"] == 1.0
        assert row["bytes"] == message.wire_bytes
        assert row["window"] == [0, 1000]

    def test_lost_message_has_null_delivery(self):
        row = message_to_dict(
            MessageTrace(0.9, None, 1, 0, Message(sender=1, window=WINDOW))
        )
        assert row["delivered"] is None

    def test_slice_identity_surfaced_when_present(self):
        from repro.network.messages import (
            CandidateEventsMessage,
            CandidateRequestMessage,
        )

        run = CandidateEventsMessage(sender=1, window=WINDOW, slice_index=3)
        row = message_to_dict(MessageTrace(0.9, 1.0, 1, 0, run))
        assert row["slice"] == 3
        assert "slices" not in row

        request = CandidateRequestMessage(
            sender=0, window=WINDOW, slice_indices=(2, 3)
        )
        row = message_to_dict(MessageTrace(0.9, 1.0, 0, 1, request))
        assert row["slices"] == [2, 3]
        assert "slice" not in row

    def test_messages_without_slices_omit_the_keys(self):
        row = message_to_dict(
            MessageTrace(0.9, 1.0, 1, 0, Message(sender=1, window=WINDOW))
        )
        assert "slice" not in row
        assert "slices" not in row


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "run.trace.jsonl"
        count = write_jsonl(path, tracer)
        assert count == 4
        rows = read_jsonl(path)
        assert rows == trace_records(tracer)

    def test_lines_are_independent_json(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        write_jsonl(path, sample_tracer())
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 4
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "span"}\n\n{"kind": "message"}\n')
        assert len(read_jsonl(path)) == 2

    def test_read_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            read_jsonl(path)

    def test_read_rejects_records_without_kind(self, tmp_path):
        path = tmp_path / "alien.jsonl"
        path.write_text('{"name": "window"}\n')
        with pytest.raises(ConfigurationError):
            read_jsonl(path)


class TestChromeTrace:
    def test_document_shape(self):
        document = chrome_trace(trace_records(sample_tracer()))
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        phases = {event["ph"] for event in document["traceEvents"]}
        assert phases == {"X", "M"}

    def test_spans_on_compute_track_in_microseconds(self):
        document = chrome_trace(trace_records(sample_tracer()))
        span = next(
            e for e in document["traceEvents"] if e["name"] == "identification"
        )
        assert span["pid"] == 0
        assert span["tid"] == 0
        assert span["ts"] == pytest.approx(1.0e6)
        assert span["dur"] == pytest.approx(0.1e6)

    def test_messages_on_sender_network_track(self):
        document = chrome_trace(trace_records(sample_tracer()))
        message = next(
            e for e in document["traceEvents"]
            if e["name"].startswith("SynopsisMessage")
        )
        assert message["pid"] == 1
        assert message["tid"] == 1
        assert message["args"]["lost"] is False

    def test_lost_message_zero_duration(self):
        document = chrome_trace(trace_records(sample_tracer()))
        lost = next(
            e for e in document["traceEvents"]
            if e.get("args", {}).get("lost") is True
        )
        assert lost["dur"] == 0.0

    def test_metadata_names_root_process(self):
        document = chrome_trace(trace_records(sample_tracer()))
        names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["name"] == "process_name"
        }
        assert "node 0 (root)" in names

    def test_write_accepts_tracer_or_records(self, tmp_path):
        tracer = sample_tracer()
        from_tracer = write_chrome_trace(tmp_path / "a.json", tracer)
        from_records = write_chrome_trace(
            tmp_path / "b.json", trace_records(tracer)
        )
        assert from_tracer == from_records
        document = json.loads((tmp_path / "a.json").read_text())
        assert len(document["traceEvents"]) == from_tracer


class TestPrometheusFile:
    def test_write(self, tmp_path):
        path = tmp_path / "run.prom"
        write_prometheus(path, sample_tracer())
        text = path.read_text()
        assert "# TYPE spans_total counter" in text
        assert 'messages_lost_total{type="Message"} 1' in text
