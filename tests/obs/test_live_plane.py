"""Unit tests for the live telemetry plane's building blocks.

The full-cluster behavior (timelines across real transports, mid-run
scrapes, crash dumps) lives in ``tests/runtime/test_live_telemetry.py``;
this module pins the pieces in isolation: trace-context semantics and
propagation, deterministic sampling, the flight-recorder ring, timeline
reconstruction from synthetic spans, config validation, and the runtime
sampler against hand-built streams.
"""

import asyncio
import json

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.obs.live import (
    LIVE_PHASES,
    FlightRecorder,
    RuntimeSampler,
    TelemetryConfig,
    TraceContext,
    context_scope,
    current_context,
    should_sample,
    timeline_tree,
    trace_id_for_window,
    window_timeline,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer

u64 = st.integers(min_value=0, max_value=2**64 - 1)


# ----------------------------------------------------------------------
# TraceContext and the ambient contextvar.
# ----------------------------------------------------------------------


class TestTraceContext:
    def test_child_keeps_trace_and_sampling(self):
        parent = TraceContext(trace_id=9, span_id=4, sampled=False)
        child = parent.child(17)
        assert child == TraceContext(trace_id=9, span_id=17, sampled=False)

    @pytest.mark.parametrize("field", ["trace_id", "span_id"])
    @pytest.mark.parametrize("value", [-1, 2**64])
    def test_ids_must_fit_in_u64(self, field, value):
        kwargs = {"trace_id": 1, "span_id": 1, field: value}
        with pytest.raises(ValueError, match="u64"):
            TraceContext(**kwargs)

    def test_scope_nests_and_restores(self):
        assert current_context() is None
        outer = TraceContext(1, 2)
        inner = TraceContext(1, 3)
        with context_scope(outer):
            assert current_context() == outer
            with context_scope(inner):
                assert current_context() == inner
            assert current_context() == outer
        assert current_context() is None

    def test_asyncio_tasks_inherit_the_ambient_context(self):
        async def main():
            async def probe():
                return current_context()

            with context_scope(TraceContext(5, 6)):
                traced = asyncio.ensure_future(probe())
            untraced = asyncio.ensure_future(probe())
            return await traced, await untraced

        traced, untraced = asyncio.run(main())
        assert traced == TraceContext(5, 6)
        assert untraced is None


class TestSampling:
    @given(u64)
    def test_extremes(self, trace_id):
        assert should_sample(trace_id, 1.0)
        assert not should_sample(trace_id, 0.0)

    @given(u64, st.floats(min_value=0.0, max_value=1.0))
    def test_deterministic(self, trace_id, rate):
        assert should_sample(trace_id, rate) == should_sample(trace_id, rate)

    def test_rate_roughly_honored(self):
        # Window starts are the real trace-id population: multiples of 1000.
        ids = [trace_id_for_window(i * 1000) for i in range(2000)]
        hits = sum(should_sample(t, 0.25) for t in ids)
        assert 0.15 * len(ids) < hits < 0.35 * len(ids)

    @given(st.integers(min_value=0, max_value=2**63))
    def test_window_trace_ids_are_stable(self, start):
        assert trace_id_for_window(start) == trace_id_for_window(start)
        assert 0 <= trace_id_for_window(start) <= 2**64 - 1


# ----------------------------------------------------------------------
# TelemetryConfig validation.
# ----------------------------------------------------------------------


class TestTelemetryConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_rate": -0.1},
            {"sample_rate": 1.5},
            {"http_port": -1},
            {"http_port": 70000},
            {"sampler_interval_s": -1.0},
            {"flight_recorder_capacity": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(**kwargs)

    def test_defaults_are_valid_and_frozen(self):
        config = TelemetryConfig()
        assert config.sample_rate == 1.0
        assert config.http_port is None
        with pytest.raises(AttributeError):
            config.sample_rate = 0.5


# ----------------------------------------------------------------------
# FlightRecorder ring semantics and dump format.
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_evicts_oldest(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "fr.jsonl", capacity=3)
        for i in range(5):
            recorder.event("tick", i=i)
        assert len(recorder) == 3
        assert recorder.recorded == 5
        path = recorder.dump(reason="test")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0] == {
            "kind": "flight_recorder_header",
            "reason": "test",
            "capacity": 3,
            "recorded": 5,
            "retained": 3,
        }
        assert [row["i"] for row in rows[1:]] == [2, 3, 4]

    def test_on_failure_names_the_exception(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "fr.jsonl")
        recorder.event("before-death")
        recorder.on_failure(RuntimeError("boom"))
        assert recorder.dumped
        header = json.loads(
            (tmp_path / "fr.jsonl").read_text().splitlines()[0]
        )
        assert header["reason"] == "RuntimeError: boom"

    def test_dump_creates_parent_directories(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "deep" / "er" / "fr.jsonl")
        recorder.dump()
        assert (tmp_path / "deep" / "er" / "fr.jsonl").exists()

    def test_capacity_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(tmp_path / "fr.jsonl", capacity=0)

    def test_taps_a_recording_tracer(self, tmp_path):
        tracer = RecordingTracer()
        recorder = FlightRecorder(tmp_path / "fr.jsonl", capacity=8)
        tracer.on_record = recorder.record
        tracer.record("seal", 1, 0.0, 0.5)
        assert len(recorder) == 1
        assert recorder.dump().read_text().count('"kind": "span"') == 1


# ----------------------------------------------------------------------
# Timeline reconstruction from synthetic spans.
# ----------------------------------------------------------------------


def _synthetic_trace(tracer: RecordingTracer, window_start: int) -> None:
    """One window's live lifecycle: batch → ingest → ... → release."""
    trace_id = trace_id_for_window(window_start)
    batch = tracer.begin(
        "live_stream_batch", 3, 0.00, trace_id=trace_id
    )
    ingest = tracer.begin(
        "live_ingest", 1, 0.01, parent=batch, trace_id=trace_id
    )
    tracer.end(ingest, 0.02)
    tracer.end(batch, 0.02)
    seal = tracer.begin("live_synopsis", 1, 0.03, trace_id=trace_id)
    tracer.end(seal, 0.04)
    ident = tracer.begin(
        "live_identification", 0, 0.05, parent=seal, trace_id=trace_id
    )
    tracer.end(ident, 0.06)
    fetch = tracer.begin(
        "live_candidate_fetch", 1, 0.07, parent=ident, trace_id=trace_id
    )
    tracer.end(fetch, 0.08)
    calc = tracer.begin(
        "live_calculation", 0, 0.09, parent=fetch, trace_id=trace_id
    )
    tracer.end(calc, 0.10)
    release = tracer.begin(
        "live_release", 1, 0.11, parent=calc, trace_id=trace_id
    )
    tracer.end(release, 0.12)


class TestTimeline:
    def test_filters_by_window_trace_id(self):
        tracer = RecordingTracer()
        _synthetic_trace(tracer, 0)
        _synthetic_trace(tracer, 1000)
        tracer.record("unrelated_span", 9, 0.0, 1.0)  # no trace_id attr

        timeline = window_timeline(tracer.spans, 1000)
        assert timeline["trace_id"] == 1000
        assert len(timeline["spans"]) == 7
        assert timeline["phases"] == sorted(LIVE_PHASES)
        assert timeline["nodes"] == [0, 1, 3]

    def test_spans_ordered_by_start_time(self):
        tracer = RecordingTracer()
        _synthetic_trace(tracer, 0)
        starts = [row["start"] for row in window_timeline(tracer.spans, 0)["spans"]]
        assert starts == sorted(starts)

    def test_tree_nests_by_parentage(self):
        tracer = RecordingTracer()
        _synthetic_trace(tracer, 0)
        tree = timeline_tree(window_timeline(tracer.spans, 0))
        assert [root["name"] for root in tree] == [
            "live_stream_batch", "live_synopsis",
        ]
        batch, seal = tree
        assert [c["name"] for c in batch["children"]] == ["live_ingest"]
        chain = []
        node = seal
        while True:
            chain.append(node["name"])
            if not node["children"]:
                break
            (node,) = node["children"]
        assert chain == [
            "live_synopsis",
            "live_identification",
            "live_candidate_fetch",
            "live_calculation",
            "live_release",
        ]

    def test_empty_window_yields_empty_timeline(self):
        timeline = window_timeline([], 5000)
        assert timeline["spans"] == []
        assert timeline["phases"] == []
        assert timeline_tree(timeline) == []


# ----------------------------------------------------------------------
# RuntimeSampler against hand-built streams.
# ----------------------------------------------------------------------


class TestRuntimeSampler:
    def test_samples_loop_lag_and_stream_gauges(self):
        from repro.runtime.transport import memory_pipe

        async def main():
            registry = MetricsRegistry()
            sampler = RuntimeSampler(registry, interval_s=0.01)
            a, b = memory_pipe()
            sampler.register_stream(a, src=3, dst=1)
            sampler.start()
            await asyncio.sleep(0.08)
            await sampler.stop()
            return registry, sampler.samples

        registry, samples = asyncio.run(main())
        assert samples >= 2
        text = registry.render_prometheus()
        assert "live_event_loop_lag_seconds" in text
        assert 'live_send_backlog{dst="1",src="3"}' in text

    def test_stop_without_start_is_safe(self):
        async def main():
            sampler = RuntimeSampler(MetricsRegistry(), interval_s=0.01)
            await sampler.stop()
            return sampler.samples

        assert asyncio.run(main()) == 0
