"""Tests for the metrics registry and its Prometheus text rendering."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("windows_completed_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4.0

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("bytes_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("messages_total", type="SynopsisMessage")
        second = registry.counter("messages_total", type="SynopsisMessage")
        assert first is second

    def test_label_sets_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("messages_total", type="SynopsisMessage").inc()
        registry.counter("messages_total", type="ResultMessage").inc(2)
        assert registry.value("messages_total", type="SynopsisMessage") == 1
        assert registry.value("messages_total", type="ResultMessage") == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("channel_bytes", src="1", dst="0").inc(10)
        assert registry.value("channel_bytes", dst="0", src="1") == 10


class TestGauge:
    def test_set_and_shift(self):
        gauge = MetricsRegistry().gauge("node_cpu_busy_fraction", node="1")
        gauge.set(0.75)
        assert gauge.value == 0.75
        gauge.inc(-0.25)
        assert gauge.value == pytest.approx(0.5)


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("lat", (), (0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)
        assert histogram.cumulative_buckets() == [
            (0.1, 1), (1.0, 2), (math.inf, 3),
        ]

    def test_quantile_from_buckets(self):
        histogram = Histogram("lat", (), (0.1, 1.0, 10.0))
        for _ in range(9):
            histogram.observe(0.05)
        histogram.observe(2.0)
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(0.99) == 10.0

    def test_quantile_empty_is_zero(self):
        assert Histogram("lat", (), (1.0,)).quantile(0.5) == 0.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat", (), (1.0, 0.1))

    def test_default_buckets_cover_span_durations(self):
        assert DEFAULT_BUCKETS[0] <= 1e-5
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("messages_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("messages_total")

    def test_value_of_untouched_metric_is_zero(self):
        assert MetricsRegistry().value("nothing", type="x") == 0.0

    def test_value_refuses_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("span_duration_seconds")
        with pytest.raises(ConfigurationError):
            registry.value("span_duration_seconds")

    def test_instruments_sorted_by_family_then_labels(self):
        registry = MetricsRegistry()
        registry.counter("b_total", type="z")
        registry.counter("b_total", type="a")
        registry.counter("a_total")
        names = [
            (instrument.name, instrument.labels)
            for instrument in registry.instruments()
        ]
        assert names == [
            ("a_total", ()),
            ("b_total", (("type", "a"),)),
            ("b_total", (("type", "z"),)),
        ]


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter(
            "messages_total", "Messages sent by type.", type="SynopsisMessage"
        ).inc(7)
        registry.gauge("node_cpu_busy_fraction", node="0").set(0.25)
        text = registry.render_prometheus()
        assert "# HELP messages_total Messages sent by type." in text
        assert "# TYPE messages_total counter" in text
        assert 'messages_total{type="SynopsisMessage"} 7' in text
        assert 'node_cpu_busy_fraction{node="0"} 0.25' in text
        assert text.endswith("\n")

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 0.55" in text
        assert "lat_seconds_count 2" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_help_appears_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("bytes_total", "Bytes by type.", type="A").inc()
        registry.counter("bytes_total", "Bytes by type.", type="B").inc()
        text = registry.render_prometheus()
        assert text.count("# HELP bytes_total") == 1
        assert text.count("# TYPE bytes_total") == 1

    def test_label_values_escape_backslash_quote_newline(self):
        # The three characters the Prometheus text exposition format
        # requires escaping inside a label value, together in one value.
        registry = MetricsRegistry()
        registry.counter(
            "errors_total", reason='disk "C:\\" failed\nretrying'
        ).inc()
        text = registry.render_prometheus()
        assert (
            'errors_total{reason="disk \\"C:\\\\\\" failed\\nretrying"} 1'
            in text
        )
        # Rendering never leaks a raw newline into the middle of a line.
        assert all(
            line.startswith(("#", "errors_total"))
            for line in text.strip().splitlines()
        )

    def test_plain_label_values_render_unchanged(self):
        registry = MetricsRegistry()
        registry.gauge("up", job="mesh-shard_0.example:9100/fleet").set(1.0)
        assert 'up{job="mesh-shard_0.example:9100/fleet"} 1' in (
            MetricsRegistry.render_prometheus(registry)
        )

    def test_escaped_rendering_roundtrips_each_character(self):
        from repro.obs.metrics import _escape_label_value

        assert _escape_label_value("\\") == "\\\\"
        assert _escape_label_value('"') == '\\"'
        assert _escape_label_value("\n") == "\\n"
        assert _escape_label_value("plain") == "plain"
        # Escaping composes: one pass over the value, no double-escapes.
        assert _escape_label_value('\\"\n') == '\\\\\\"\\n'
