"""Tests for the span tracer: nesting, ordering, no-op path, messages."""

import pytest

from repro.errors import ConfigurationError
from repro.network.messages import (
    EventBatchMessage,
    Message,
    SynopsisRequestMessage,
)
from repro.obs.events import MessageTrace
from repro.obs.tracer import NOOP_TRACER, RecordingTracer, Span, Tracer, span_to_dict
from repro.streaming.events import make_events
from repro.streaming.windows import Window

WINDOW = Window(0, 1000)


class TestNoopTracer:
    def test_disabled_flag(self):
        assert NOOP_TRACER.enabled is False
        assert Tracer().enabled is False

    def test_all_methods_are_inert(self):
        tracer = Tracer()
        span_id = tracer.begin("ingest", 1, 0.0, window=WINDOW, events=5)
        assert span_id == 0
        tracer.end(span_id, 1.0)  # never raises, even for unknown ids
        assert tracer.record("slice", 1, 0.0, 1.0) == 0
        tracer.record_message(
            MessageTrace(0.0, 0.1, 1, 0, Message(sender=1, window=WINDOW))
        )
        tracer.finalize(None, 1.0)

    def test_shared_instance_holds_no_state(self):
        NOOP_TRACER.begin("window", 0, 0.0)
        assert not hasattr(NOOP_TRACER, "_spans")


class TestSpan:
    def test_duration(self):
        span = Span(1, None, "ingest", 2, 0.5, 0.75)
        assert span.duration == pytest.approx(0.25)

    def test_to_dict_round_trip_fields(self):
        span = Span(3, 1, "identification", 0, 1.0, 1.25,
                    window=WINDOW, attrs={"ops": 7})
        row = span_to_dict(span)
        assert row["kind"] == "span"
        assert row["id"] == 3
        assert row["parent"] == 1
        assert row["window"] == [0, 1000]
        assert row["attrs"] == {"ops": 7}

    def test_to_dict_without_window(self):
        row = span_to_dict(Span(1, None, "ingest", 2, 0.0, 0.1))
        assert row["window"] is None
        assert row["parent"] is None


class TestRecordingSpans:
    def test_begin_end_lifecycle(self):
        tracer = RecordingTracer()
        span_id = tracer.begin("window", 0, 1.0, window=WINDOW)
        assert span_id == 1
        assert tracer.open_spans == 1
        tracer.end(span_id, 1.5, candidate_events=32)
        assert tracer.open_spans == 0
        (span,) = tracer.spans
        assert span.name == "window"
        assert span.duration == pytest.approx(0.5)
        assert span.attrs["candidate_events"] == 32

    def test_nesting_via_parent_id(self):
        tracer = RecordingTracer()
        parent = tracer.begin("window", 0, 1.0, window=WINDOW)
        child = tracer.record(
            "identification", 0, 1.0, 1.1, window=WINDOW, parent=parent
        )
        tracer.end(parent, 1.5)
        spans = {span.name: span for span in tracer.spans}
        assert spans["identification"].parent_id == parent
        assert spans["window"].parent_id is None
        assert child != parent

    def test_zero_parent_normalizes_to_none(self):
        # Instrumentation sites pass the id a possibly-no-op begin returned;
        # the no-op tracer returns 0, which must not become a parent link.
        tracer = RecordingTracer()
        tracer.record("ingest", 1, 0.0, 0.1, parent=0)
        assert tracer.spans[0].parent_id is None

    def test_spans_ordered_by_start_time(self):
        tracer = RecordingTracer()
        late = tracer.begin("calculation", 0, 2.0)
        early = tracer.begin("ingest", 1, 0.5)
        tracer.end(late, 2.5)
        tracer.end(early, 0.6)
        assert [span.name for span in tracer.spans] == ["ingest", "calculation"]

    def test_interleaved_spans_across_nodes(self):
        # The discrete-event clock interleaves work from different nodes;
        # spans must close independently of open/close order.
        tracer = RecordingTracer()
        a = tracer.begin("slice", 1, 1.0)
        b = tracer.begin("slice", 2, 1.01)
        tracer.end(b, 1.02)
        tracer.end(a, 1.05)
        assert tracer.open_spans == 0
        assert [span.node_id for span in tracer.spans] == [1, 2]

    def test_ending_unknown_span_raises(self):
        tracer = RecordingTracer()
        span_id = tracer.begin("window", 0, 0.0)
        tracer.end(span_id, 1.0)
        with pytest.raises(ConfigurationError):
            tracer.end(span_id, 2.0)

    def test_span_metrics_feed_registry(self):
        tracer = RecordingTracer()
        tracer.record("ingest", 1, 0.0, 0.25)
        tracer.record("ingest", 1, 1.0, 1.25)
        assert tracer.registry.value("spans_total", phase="ingest") == 2
        assert tracer.registry.value(
            "span_seconds_total", phase="ingest"
        ) == pytest.approx(0.5)


class TestRecordingMessages:
    def _trace(self, message, *, delivered=0.1):
        return MessageTrace(
            sent_at=0.0, delivered_at=delivered,
            src=message.sender, dst=0, message=message,
        )

    def test_message_metrics(self):
        tracer = RecordingTracer()
        events = tuple(make_events([1.0, 2.0], node_id=1))
        message = EventBatchMessage(sender=1, window=WINDOW, events=events)
        tracer.record_message(self._trace(message))
        registry = tracer.registry
        assert registry.value("messages_total", type="EventBatchMessage") == 1
        assert registry.value(
            "bytes_total", type="EventBatchMessage"
        ) == message.wire_bytes
        assert registry.value(
            "events_on_wire_total", type="EventBatchMessage"
        ) == 2

    def test_lost_message_counted(self):
        tracer = RecordingTracer()
        message = Message(sender=1, window=WINDOW)
        tracer.record_message(self._trace(message, delivered=None))
        assert tracer.registry.value("messages_lost_total", type="Message") == 1

    def test_duplicate_protocol_message_is_retransmit(self):
        tracer = RecordingTracer()
        for _ in range(3):
            message = SynopsisRequestMessage(sender=0, window=WINDOW)
            trace = MessageTrace(0.0, 0.1, src=0, dst=1, message=message)
            tracer.record_message(trace)
        assert tracer.registry.value(
            "retransmits_total", type="SynopsisRequestMessage"
        ) == 2

    def test_streaming_messages_never_count_as_retransmits(self):
        tracer = RecordingTracer()
        events = tuple(make_events([1.0], node_id=1))
        for _ in range(5):
            message = EventBatchMessage(sender=1, window=WINDOW, events=events)
            tracer.record_message(self._trace(message))
        assert tracer.registry.value(
            "retransmits_total", type="EventBatchMessage"
        ) == 0

    def test_messages_preserved_in_send_order(self):
        tracer = RecordingTracer()
        first = Message(sender=1, window=WINDOW)
        second = Message(sender=2, window=WINDOW)
        tracer.record_message(MessageTrace(0.0, 0.1, 1, 0, first))
        tracer.record_message(MessageTrace(0.2, 0.3, 2, 0, second))
        assert [trace.src for trace in tracer.messages] == [1, 2]


class TestRecords:
    def test_timeline_order_mixes_spans_and_messages(self):
        tracer = RecordingTracer()
        tracer.record("slice", 1, 0.5, 0.6)
        message = Message(sender=1, window=WINDOW)
        tracer.record_message(MessageTrace(0.2, 0.3, 1, 0, message))
        kinds = [row["kind"] for row in tracer.records()]
        assert kinds == ["message", "span"]
