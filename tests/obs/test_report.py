"""Tests for the per-phase / per-window breakdown report."""

import pytest

from repro.obs.report import (
    format_report,
    message_summary,
    phase_summary,
    reliability_summary,
    window_breakdown,
)


def span(id_, name, start, end, *, parent=None, node=0, window=(0, 1000)):
    return {
        "kind": "span", "id": id_, "parent": parent, "name": name,
        "node": node, "start": start, "end": end,
        "window": list(window) if window else None, "attrs": {},
    }


def message(type_, *, bytes_=100, events=0, delivered=1.0, src=1, dst=0,
            window=(0, 1000), **extra):
    return {
        "kind": "message", "type": type_, "src": src, "dst": dst,
        "sent": 0.9, "delivered": delivered, "bytes": bytes_,
        "events": events, "window": list(window), **extra,
    }


class TestPhaseSummary:
    def test_aggregates_per_name(self):
        records = [
            span(1, "ingest", 0.0, 0.2, node=1),
            span(2, "ingest", 1.0, 1.1, node=2),
            span(3, "calculation", 0.0, 0.05),
        ]
        summaries = {s.name: s for s in phase_summary(records)}
        ingest = summaries["ingest"]
        assert ingest.count == 2
        assert ingest.total_s == pytest.approx(0.3)
        assert ingest.mean_s == pytest.approx(0.15)
        assert ingest.max_s == pytest.approx(0.2)

    def test_ordered_by_total_time(self):
        records = [
            span(1, "short", 0.0, 0.01),
            span(2, "long", 0.0, 1.0),
        ]
        assert [s.name for s in phase_summary(records)] == ["short", "long"][::-1]

    def test_ignores_messages(self):
        assert phase_summary([message("SynopsisMessage")]) == []


class TestMessageSummary:
    def test_aggregates_per_type(self):
        records = [
            message("SynopsisMessage", bytes_=50),
            message("SynopsisMessage", bytes_=70, delivered=None),
            message("CandidateEventsMessage", bytes_=500, events=10),
        ]
        summaries = {s.type: s for s in message_summary(records)}
        synopsis = summaries["SynopsisMessage"]
        assert synopsis.count == 2
        assert synopsis.bytes == 120
        assert synopsis.lost == 1
        assert summaries["CandidateEventsMessage"].events == 10

    def test_ordered_by_bytes(self):
        records = [
            message("Small", bytes_=10),
            message("Big", bytes_=1000),
        ]
        assert [s.type for s in message_summary(records)] == ["Big", "Small"]


class TestReliabilitySummary:
    def test_counts_drops_per_link(self):
        records = [
            message("SynopsisMessage", src=1, dst=0),
            message("SynopsisMessage", src=2, dst=0, delivered=None,
                    window=(1000, 2000)),
            message("CandidateRequestMessage", src=0, dst=2),
        ]
        links = {(s.src, s.dst): s for s in reliability_summary(records)}
        assert links[(1, 0)].sent == 1
        assert links[(1, 0)].dropped == 0
        assert links[(2, 0)].dropped == 1
        assert links[(0, 2)].sent == 1

    def test_repeat_of_same_identity_is_a_retransmit(self):
        first = message("CandidateEventsMessage", **{"slice": 3})
        links = reliability_summary([first, dict(first)])
        (link,) = links
        assert link.sent == 2
        assert link.retransmits == 1

    def test_different_slices_are_not_retransmits(self):
        records = [
            message("CandidateEventsMessage", **{"slice": 3}),
            message("CandidateEventsMessage", **{"slice": 4}),
        ]
        (link,) = reliability_summary(records)
        assert link.retransmits == 0

    def test_streaming_types_never_count_as_retransmits(self):
        records = [
            message("EventBatchMessage"),
            message("EventBatchMessage"),
            message("HeartbeatMessage"),
            message("HeartbeatMessage"),
        ]
        (link,) = reliability_summary(records)
        assert link.sent == 4
        assert link.retransmits == 0

    def test_links_sorted_by_endpoint(self):
        records = [
            message("SynopsisMessage", src=2, dst=0),
            message("SynopsisMessage", src=0, dst=1),
        ]
        assert [(s.src, s.dst) for s in reliability_summary(records)] == [
            (0, 1), (2, 0),
        ]


class TestWindowBreakdown:
    def test_children_partition_the_window(self):
        records = [
            span(1, "window", 1.0, 1.4),
            span(2, "synopsis_wait", 1.0, 1.1, parent=1),
            span(3, "identification", 1.1, 1.2, parent=1),
            span(4, "candidate_fetch", 1.2, 1.35, parent=1),
            span(5, "calculation", 1.35, 1.4, parent=1),
        ]
        (breakdown,) = window_breakdown(records)
        assert breakdown.window == (0, 1000)
        assert breakdown.end_to_end_s == pytest.approx(0.4)
        assert breakdown.phase_sum_s == pytest.approx(0.4)
        assert breakdown.is_consistent

    def test_gap_between_phases_is_flagged(self):
        records = [
            span(1, "window", 1.0, 1.4),
            span(2, "synopsis_wait", 1.0, 1.1, parent=1),
            # 0.3 s unaccounted for
        ]
        (breakdown,) = window_breakdown(records)
        assert not breakdown.is_consistent

    def test_windowless_span_without_children_is_vacuously_consistent(self):
        # Baseline systems emit the end-to-end window span with no phases.
        (breakdown,) = window_breakdown([span(1, "window", 1.0, 1.4)])
        assert breakdown.phases == {}
        assert breakdown.is_consistent

    def test_unrelated_spans_not_attributed(self):
        records = [
            span(1, "window", 1.0, 1.4),
            span(2, "ingest", 0.5, 0.6, node=1),  # no parent link
        ]
        (breakdown,) = window_breakdown(records)
        assert "ingest" not in breakdown.phases

    def test_repeated_phases_accumulate(self):
        records = [
            span(1, "window", 1.0, 1.3),
            span(2, "candidate_fetch", 1.0, 1.1, parent=1),
            span(3, "candidate_fetch", 1.1, 1.3, parent=1),
        ]
        (breakdown,) = window_breakdown(records)
        assert breakdown.phases["candidate_fetch"] == pytest.approx(0.3)
        assert breakdown.is_consistent

    def test_sorted_by_window(self):
        records = [
            span(1, "window", 2.0, 2.4, window=(1000, 2000)),
            span(2, "window", 1.0, 1.4, window=(0, 1000)),
        ]
        assert [b.window for b in window_breakdown(records)] == [
            (0, 1000), (1000, 2000),
        ]


class TestFormatReport:
    def test_all_sections_present(self):
        records = [
            span(1, "window", 1.0, 1.4),
            span(2, "synopsis_wait", 1.0, 1.4, parent=1),
            message("SynopsisMessage", bytes_=50),
        ]
        text = format_report(records)
        assert "Span phases" in text
        assert "Network traffic" in text
        assert "Per-window latency breakdown (root)" in text
        assert "yes" in text

    def test_link_reliability_hidden_when_clean(self):
        text = format_report([message("SynopsisMessage")])
        assert "Link reliability" not in text

    def test_link_reliability_rendered_on_drops(self):
        records = [
            message("SynopsisMessage"),
            message("SynopsisMessage", delivered=None, window=(1000, 2000)),
        ]
        text = format_report(records)
        assert "Link reliability" in text
        assert "1 → 0" in text

    def test_link_reliability_rendered_on_retransmits(self):
        first = message("SynopsisMessage")
        text = format_report([first, dict(first)])
        assert "Link reliability" in text

    def test_inconsistent_window_marked(self):
        records = [
            span(1, "window", 1.0, 1.4),
            span(2, "synopsis_wait", 1.0, 1.1, parent=1),
        ]
        assert "NO" in format_report(records)

    def test_empty_trace(self):
        assert "empty trace" in format_report([])
