"""End-to-end tracing: engines, baselines, reliability and scenarios.

The load-bearing check lives here: the root's phase spans must partition
each window's end-to-end latency *exactly* (they are contiguous by
construction), for every system that can be traced.
"""

import pytest

from repro.bench.generator import GeneratorConfig, workload
from repro.bench.harness import run_workload
from repro.core.concurrent import ConcurrentDemaEngine
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.core.reliability import ReliabilityConfig
from repro.network.driver import MS_PER_SECOND
from repro.network.topology import TopologyConfig
from repro.obs.export import trace_records
from repro.obs.report import window_breakdown
from repro.obs.scenarios import SCENARIOS, run_scenario
from repro.obs.tracer import NOOP_TRACER, RecordingTracer
from repro.errors import ConfigurationError

ROOT_PHASES = {
    "synopsis_wait", "identification", "candidate_fetch", "calculation",
}


def small_streams(node_ids=(1, 2), rate=800.0, duration=3.0, seed=42):
    return workload(
        list(node_ids),
        GeneratorConfig(event_rate=rate, duration_s=duration, seed=seed),
    )


def traced_run(**engine_kwargs):
    tracer = RecordingTracer()
    query = engine_kwargs.pop("query", QuantileQuery(q=0.5, gamma=8))
    topology = engine_kwargs.pop("topology", TopologyConfig(n_local_nodes=2))
    engine = DemaEngine(query, topology, tracer=tracer, **engine_kwargs)
    report = engine.run(small_streams())
    return tracer, report


class TestNoopDefault:
    def test_engine_defaults_to_shared_noop(self):
        engine = DemaEngine(
            QuantileQuery(q=0.5, gamma=8), TopologyConfig(n_local_nodes=2)
        )
        assert engine.tracer is NOOP_TRACER
        for node in engine.simulator.nodes.values():
            assert node.tracer is NOOP_TRACER

    def test_untraced_run_identical_to_seed_behavior(self):
        query = QuantileQuery(q=0.5, gamma=8)
        plain = DemaEngine(query, TopologyConfig(n_local_nodes=2))
        plain_report = plain.run(small_streams())
        traced_tracer, traced_report = traced_run()
        assert [o.value for o in plain_report.outcomes] == [
            o.value for o in traced_report.outcomes
        ]
        assert [o.result_time for o in plain_report.outcomes] == [
            o.result_time for o in traced_report.outcomes
        ]


class TestTracedDema:
    def test_window_phases_sum_to_latency(self):
        tracer, report = traced_run()
        breakdowns = window_breakdown(trace_records(tracer))
        assert len(breakdowns) == len(report.outcomes)
        for breakdown in breakdowns:
            assert set(breakdown.phases) <= ROOT_PHASES
            assert breakdown.is_consistent, breakdown

    def test_window_spans_match_reported_latency(self):
        tracer, report = traced_run()
        by_window = {
            b.window: b for b in window_breakdown(trace_records(tracer))
        }
        for outcome in report.outcomes:
            key = (outcome.window.start, outcome.window.end)
            latency = outcome.result_time - outcome.window.end / MS_PER_SECOND
            assert by_window[key].end_to_end_s == pytest.approx(latency)

    def test_local_node_spans_recorded(self):
        tracer, _ = traced_run()
        names = {span.name for span in tracer.spans}
        assert {"ingest", "slice", "serve_candidates"} <= names

    def test_all_spans_closed_and_counters_set(self):
        tracer, report = traced_run()
        assert tracer.open_spans == 0
        assert tracer.registry.value("windows_completed_total") == len(
            report.outcomes
        )
        assert tracer.registry.value(
            "messages_total", type="SynopsisMessage"
        ) > 0

    def test_finalize_captures_node_gauges(self):
        tracer, _ = traced_run()
        busy = tracer.registry.value("node_cpu_busy_fraction", node="0")
        assert 0.0 < busy <= 1.0
        assert tracer.registry.value("channel_bytes", src="1", dst="0") > 0


class TestReliabilityRegression:
    def _lossy(self, loss_rate):
        tracer = RecordingTracer()
        engine = DemaEngine(
            QuantileQuery(q=0.5, gamma=8),
            TopologyConfig(n_local_nodes=2, loss_rate=loss_rate, loss_seed=7),
            reliability=ReliabilityConfig(timeout_s=0.05, max_retries=20),
            tracer=tracer,
        )
        report = engine.run(small_streams(rate=500.0, seed=7))
        return tracer, report

    def test_lossless_run_has_zero_retransmits(self):
        tracer, _ = self._lossy(0.0)
        total = sum(
            instrument.value
            for instrument in tracer.registry.instruments()
            if instrument.name == "retransmits_total"
        )
        assert total == 0

    def test_lossy_run_counts_retransmits_and_stays_exact(self):
        tracer, report = self._lossy(0.25)
        total = sum(
            instrument.value
            for instrument in tracer.registry.instruments()
            if instrument.name == "retransmits_total"
        )
        assert total > 0
        lost = sum(
            instrument.value
            for instrument in tracer.registry.instruments()
            if instrument.name == "messages_lost_total"
        )
        assert lost > 0
        # Retries recover the answer: results still come out.
        assert report.outcomes
        breakdowns = window_breakdown(trace_records(tracer))
        for breakdown in breakdowns:
            assert breakdown.is_consistent, breakdown


class TestTracedBaselines:
    @pytest.mark.parametrize(
        "system,phase",
        [
            ("scotty", "sort"),
            ("desis", "merge"),
            ("tdigest", "digest_merge"),
            ("qdigest", "digest_merge"),
            ("kll", "digest_merge"),
        ],
    )
    def test_baseline_emits_window_and_work_spans(self, system, phase):
        tracer = RecordingTracer()
        report = run_workload(
            system,
            QuantileQuery(q=0.5, gamma=8),
            TopologyConfig(n_local_nodes=2),
            small_streams(),
            tracer=tracer,
        )
        names = {span.name for span in tracer.spans}
        assert "window" in names
        assert phase in names
        assert tracer.registry.value("windows_completed_total") == len(
            report.outcomes
        )
        for breakdown in window_breakdown(trace_records(tracer)):
            assert breakdown.is_consistent  # vacuous: no phase partition

    def test_baselines_have_no_false_retransmits(self):
        for system in ("scotty", "desis", "tdigest"):
            tracer = RecordingTracer()
            run_workload(
                system,
                QuantileQuery(q=0.5, gamma=8),
                TopologyConfig(n_local_nodes=2),
                small_streams(),
                tracer=tracer,
            )
            total = sum(
                instrument.value
                for instrument in tracer.registry.instruments()
                if instrument.name == "retransmits_total"
            )
            assert total == 0, system


class TestTracedConcurrent:
    def test_concurrent_engine_records_root_phases(self):
        tracer = RecordingTracer()
        engine = ConcurrentDemaEngine(
            [QuantileQuery(q=0.5, gamma=8), QuantileQuery(q=0.9, gamma=8)],
            TopologyConfig(n_local_nodes=2),
            tracer=tracer,
        )
        report = engine.run(small_streams())
        names = {span.name for span in tracer.spans}
        assert {"identification", "calculation"} <= names
        assert tracer.open_spans == 0
        assert report.outcomes_for(0) and report.outcomes_for(1)


class TestScenarios:
    def test_every_scenario_runs_consistently(self):
        for name in SCENARIOS:
            result = run_scenario(name, seed=42)
            assert result.name == name
            assert result.tracer.open_spans == 0
            assert result.report.outcomes
            for breakdown in window_breakdown(trace_records(result.tracer)):
                assert breakdown.is_consistent, (name, breakdown)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario("nope")

    def test_lossy_scenario_shows_retransmits(self):
        result = run_scenario("lossy", seed=42)
        total = sum(
            instrument.value
            for instrument in result.tracer.registry.instruments()
            if instrument.name == "retransmits_total"
        )
        assert total > 0
