"""Out-of-order arrivals through the baseline systems."""

import dataclasses

import pytest

from repro.core.query import QuantileQuery
from repro.network.topology import TopologyConfig
from repro.streaming.aggregates import exact_quantile
from repro.streaming.windows import TumblingWindows
from repro.baselines.base import build_system
from repro.bench.generator import GeneratorConfig, SensorStreamGenerator

QUERY = QuantileQuery(q=0.5, gamma=30)
TOPO = TopologyConfig(n_local_nodes=2)


def delayed_arrivals(max_delay_ms, *, seed=13):
    base = GeneratorConfig(
        event_rate=600.0, duration_s=3.0, seed=seed,
        max_arrival_delay_ms=max_delay_ms,
    )
    arrivals = {}
    for node_id in (1, 2):
        config = dataclasses.replace(base, replay_offset=node_id)
        arrivals[node_id] = SensorStreamGenerator(
            config
        ).generate_with_arrivals(node_id)
    return arrivals


def ground_truth(arrivals):
    assigner = TumblingWindows(1000)
    per_window = {}
    for pairs in arrivals.values():
        for event, _ in pairs:
            per_window.setdefault(
                assigner.window_for(event.timestamp), []
            ).append(event.value)
    return {w: exact_quantile(v, 0.5) for w, v in per_window.items()}


@pytest.mark.parametrize("system", ["scotty", "desis", "tdigest"])
class TestBaselinesUnderDisorder:
    def test_exact_or_close_with_covering_lateness(self, system):
        arrivals = delayed_arrivals(60)
        engine = build_system(system, QUERY, TOPO)
        report = engine.run_unordered(arrivals, allowed_lateness_ms=80)
        truth = ground_truth(arrivals)
        assert len(report.outcomes) == len(truth)
        for outcome in report.outcomes:
            expected = truth[outcome.window]
            if system == "tdigest":
                assert outcome.value == pytest.approx(expected, rel=0.05)
            else:
                assert outcome.value == expected

    def test_insufficient_lateness_counts_drops(self, system):
        arrivals = delayed_arrivals(60)
        engine = build_system(system, QUERY, TOPO)
        engine.run_unordered(arrivals, allowed_lateness_ms=0)
        if system == "scotty":
            # Scotty's locals forward immediately; lateness shows at the root.
            dropped = engine.root.late_events
        else:
            dropped = sum(
                engine.simulator.nodes[i].late_events
                for i in engine.topology.local_ids
            )
        assert dropped > 0


class TestDesisScottyAgreementUnderDisorder:
    def test_same_retained_subset(self):
        # With a common lateness bound both exact systems retain the same
        # events, so their per-window answers agree even when drops happen.
        arrivals = delayed_arrivals(60)
        desis = build_system("desis", QUERY, TOPO).run_unordered(
            arrivals, allowed_lateness_ms=80
        )
        scotty = build_system("scotty", QUERY, TOPO).run_unordered(
            arrivals, allowed_lateness_ms=80
        )
        desis_values = {o.window: o.value for o in desis.outcomes}
        for outcome in scotty.outcomes:
            assert outcome.value == desis_values[outcome.window]
