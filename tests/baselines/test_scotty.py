"""Tests for the Scotty (centralized) baseline."""

import pytest

from repro.errors import AggregationError
from repro.network.channels import Channel
from repro.network.messages import (
    EventBatchMessage,
    GammaUpdateMessage,
    WatermarkMessage,
)
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import make_events
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.baselines.scotty import ScottyLocalNode, ScottyRootNode

WINDOW = Window(0, 1000)


class Sink(SimulatedNode):
    def __init__(self):
        super().__init__(0)
        self.received = []

    def on_message(self, message, now):
        self.received.append(message)


def deploy_local():
    simulator = Simulator()
    root = Sink()
    query = QuantileQuery(q=0.5, window_length_ms=1000)
    local = ScottyLocalNode(1, root_id=0, query=query, ops_per_second=1e9)
    simulator.add_node(root)
    simulator.add_node(local)
    simulator.connect(Channel(1, 0))
    return simulator, root, local


class TestLocal:
    def test_forwards_raw_batches_immediately(self):
        simulator, root, local = deploy_local()
        events = make_events(range(5), node_id=1, timestamp_step=10)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.run()
        batches = [m for m in root.received if isinstance(m, EventBatchMessage)]
        assert len(batches) == 1
        assert batches[0].events == tuple(events)

    def test_window_complete_sends_watermark(self):
        simulator, root, local = deploy_local()
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        watermarks = [m for m in root.received if isinstance(m, WatermarkMessage)]
        assert len(watermarks) == 1
        assert watermarks[0].watermark_time == 1000

    def test_empty_ingest_sends_nothing(self):
        simulator, root, local = deploy_local()
        simulator.schedule(0.1, lambda t: local.ingest([], t))
        simulator.run()
        assert root.received == []

    def test_unexpected_message_rejected(self):
        simulator, root, local = deploy_local()
        simulator.connect(Channel(0, 1))
        bad = GammaUpdateMessage(sender=0, window=WINDOW, gamma=5)
        simulator.schedule(0.0, lambda t: root.send(bad, 1, t))
        with pytest.raises(AggregationError):
            simulator.run()


def deploy_root(local_ids=(1, 2)):
    simulator = Simulator()
    query = QuantileQuery(q=0.5, window_length_ms=1000)
    root = ScottyRootNode(
        0, local_ids=list(local_ids), query=query, ops_per_second=1e9
    )
    simulator.add_node(root)
    senders = {}
    for local_id in local_ids:
        sender = SimulatedNode(local_id)
        simulator.add_node(sender)
        simulator.connect(Channel(local_id, 0))
        senders[local_id] = sender
    return simulator, root, senders


class TestRoot:
    def test_sorts_and_selects_median(self):
        simulator, root, senders = deploy_root()
        batch_a = EventBatchMessage(
            sender=1, window=WINDOW,
            events=tuple(make_events([5, 1, 9], node_id=1)),
        )
        batch_b = EventBatchMessage(
            sender=2, window=WINDOW,
            events=tuple(make_events([2, 8], node_id=2)),
        )
        simulator.schedule(0.1, lambda t: senders[1].send(batch_a, 0, t))
        simulator.schedule(0.2, lambda t: senders[2].send(batch_b, 0, t))
        for local_id in (1, 2):
            wm = WatermarkMessage(
                sender=local_id, window=WINDOW, watermark_time=1000
            )
            simulator.schedule(
                1.0, lambda t, s=senders[local_id], m=wm: s.send(m, 0, t)
            )
        simulator.run()
        assert len(root.records) == 1
        assert root.records[0].value == 5.0
        assert root.records[0].global_window_size == 5

    def test_waits_for_all_watermarks(self):
        simulator, root, senders = deploy_root()
        wm = WatermarkMessage(sender=1, window=WINDOW, watermark_time=1000)
        simulator.schedule(1.0, lambda t: senders[1].send(wm, 0, t))
        simulator.run()
        assert root.records == []

    def test_empty_window_emits_none(self):
        simulator, root, senders = deploy_root()
        for local_id in (1, 2):
            wm = WatermarkMessage(
                sender=local_id, window=WINDOW, watermark_time=1000
            )
            simulator.schedule(
                1.0, lambda t, s=senders[local_id], m=wm: s.send(m, 0, t)
            )
        simulator.run()
        assert root.records[0].value is None
        assert root.records[0].is_empty

    def test_unexpected_message_rejected(self):
        simulator, root, senders = deploy_root()
        bad = GammaUpdateMessage(sender=1, window=WINDOW, gamma=5)
        simulator.schedule(0.0, lambda t: senders[1].send(bad, 0, t))
        with pytest.raises(AggregationError):
            simulator.run()
