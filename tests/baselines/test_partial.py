"""Tests for decentralized partial aggregation (decomposable functions)."""

import statistics

import pytest

from repro.errors import AggregationError, ConfigurationError
from repro.network.topology import TopologyConfig
from repro.streaming.aggregates import get_function
from repro.streaming.windows import TumblingWindows
from repro.baselines.base import build_system
from repro.baselines.partial import (
    build_partial_system,
    deserialize_partial,
    serialize_partial,
)
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.workloads import bench_topology, median_query

TOPO = TopologyConfig(n_local_nodes=2)


def make_streams(rate=1_000.0, seconds=3.0, seed=31):
    return workload(
        [1, 2], GeneratorConfig(event_rate=rate, duration_s=seconds, seed=seed)
    )


def per_window_values(streams, window_length_ms=1000):
    assigner = TumblingWindows(window_length_ms)
    per_window = {}
    for events in streams.values():
        for event in events:
            per_window.setdefault(
                assigner.window_for(event.timestamp), []
            ).append(event.value)
    return per_window


class TestSerialization:
    @pytest.mark.parametrize(
        "name,values",
        [
            ("sum", [1.0, 2.5, -3.0]),
            ("count", [1.0, 2.0, 3.0]),
            ("min", [4.0, -1.0, 2.0]),
            ("max", [4.0, -1.0, 2.0]),
            ("average", [1.0, 2.0, 4.0]),
            ("variance", [1.0, 2.0, 4.0]),
            ("range", [1.0, 9.0, 5.0]),
        ],
    )
    def test_roundtrip_preserves_result(self, name, values):
        function = get_function(name)
        partial = None
        for value in values:
            lifted = function.lift(value)
            partial = (
                lifted if partial is None else function.combine(partial, lifted)
            )
        state = serialize_partial(function, partial)
        restored = deserialize_partial(function, state)
        assert function.lower(restored) == pytest.approx(
            function.lower(partial)
        )

    def test_state_is_constant_size(self):
        function = get_function("variance")
        small = function.lift(1.0)
        big = small
        for value in range(1_000):
            big = function.combine(big, function.lift(float(value)))
        assert len(serialize_partial(function, small)) == len(
            serialize_partial(function, big)
        )

    def test_non_decomposable_rejected(self):
        median = get_function("median")
        with pytest.raises(AggregationError):
            serialize_partial(median, median.lift(1.0))


class TestSystem:
    @pytest.mark.parametrize(
        "name,oracle",
        [
            ("sum", sum),
            ("count", len),
            ("min", min),
            ("max", max),
            ("average", statistics.fmean),
            ("variance", statistics.pvariance),
            ("range", lambda vs: max(vs) - min(vs)),
        ],
    )
    def test_exact_per_window(self, name, oracle):
        streams = make_streams()
        engine = build_partial_system(name, TOPO)
        report = engine.run(streams)
        truth = per_window_values(streams)
        assert len(report.outcomes) == len(truth)
        for record in report.outcomes:
            assert record.value == pytest.approx(
                float(oracle(truth[record.window]))
            )
            assert record.global_window_size == len(truth[record.window])

    def test_non_decomposable_function_rejected(self):
        with pytest.raises(ConfigurationError):
            build_partial_system("median", TOPO)
        with pytest.raises(ConfigurationError):
            build_partial_system("mode", TOPO)

    def test_network_cost_independent_of_rate(self):
        slow = build_partial_system("sum", TOPO).run(make_streams(rate=500))
        fast = build_partial_system("sum", TOPO).run(make_streams(rate=4_000))
        assert fast.network.total_bytes == slow.network.total_bytes

    def test_motivating_contrast_with_dema(self):
        # The paper's intro in one assertion: decomposable partials cost a
        # constant per window, while an exact median needs Dema's synopsis
        # + candidate traffic — still far below raw forwarding.
        streams = make_streams(rate=3_000)
        sum_bytes = build_partial_system(
            "sum", bench_topology(2)
        ).run(streams).network.total_bytes
        dema_bytes = build_system(
            "dema", median_query(100), bench_topology(2)
        ).run(streams).network.total_bytes
        scotty_bytes = build_system(
            "scotty", median_query(100), bench_topology(2)
        ).run(streams).network.total_bytes
        assert sum_bytes < dema_bytes < scotty_bytes
        assert sum_bytes < 0.05 * scotty_bytes

    def test_custom_window_length(self):
        streams = make_streams(seconds=2.0)
        engine = build_partial_system("sum", TOPO, window_length_ms=500)
        report = engine.run(streams)
        truth = per_window_values(streams, window_length_ms=500)
        assert len(report.outcomes) == len(truth)

    def test_empty_window_yields_none(self):
        from repro.streaming.events import make_events

        streams = {1: make_events([1.0, 2.0], node_id=1, timestamp_step=1)}
        engine = build_partial_system("sum", TOPO)
        report = engine.run(streams)
        assert report.outcomes[0].value == 3.0
