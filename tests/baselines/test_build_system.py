"""Tests for the uniform system factory and cross-system contracts."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import TopologyConfig
from repro.streaming.events import make_events
from repro.core.query import QuantileQuery
from repro.baselines.base import SYSTEM_NAMES, build_system


def make_streams(n_nodes=2, per_node=500, seed=0):
    rng = random.Random(seed)
    return {
        node_id: make_events(
            [rng.uniform(0, 100) for _ in range(per_node)],
            node_id=node_id,
            timestamp_step=2,
        )
        for node_id in range(1, n_nodes + 1)
    }


QUERY = QuantileQuery(q=0.5, window_length_ms=1000, gamma=20)
TOPO = TopologyConfig(n_local_nodes=2)


class TestFactory:
    @pytest.mark.parametrize("name", SYSTEM_NAMES)
    def test_all_systems_constructible(self, name):
        engine = build_system(name, QUERY, TOPO)
        assert hasattr(engine, "run")

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            build_system("flink", QUERY, TOPO)


class TestUniformReports:
    @pytest.mark.parametrize("name", SYSTEM_NAMES)
    def test_report_shape(self, name):
        engine = build_system(name, QUERY, TOPO)
        report = engine.run(make_streams())
        assert report.events_ingested == 1000
        assert len(report.outcomes) >= 1
        for outcome in report.outcomes:
            assert outcome.global_window_size > 0
            assert outcome.result_time >= outcome.window.end / 1000.0
        assert report.latency.count == len(report.outcomes)
        assert report.network.total_bytes > 0

    @pytest.mark.parametrize("name", SYSTEM_NAMES)
    def test_unknown_stream_node_rejected(self, name):
        engine = build_system(name, QUERY, TOPO)
        with pytest.raises(ConfigurationError):
            engine.run({9: make_events([1.0], node_id=9)})


class TestCrossSystemAgreement:
    def test_exact_systems_agree_everywhere(self):
        streams = make_streams(per_node=800, seed=3)
        values = {}
        for name in ("dema", "scotty", "desis"):
            report = build_system(name, QUERY, TOPO).run(streams)
            values[name] = [
                (o.window, o.value)
                for o in sorted(report.outcomes, key=lambda o: o.window)
            ]
        assert values["dema"] == values["scotty"] == values["desis"]

    def test_tdigest_close_but_not_exact_contract(self):
        streams = make_streams(per_node=2000, seed=4)
        exact = build_system("scotty", QUERY, TOPO).run(streams)
        approx = build_system("tdigest", QUERY, TOPO).run(streams)
        exact_by_window = {o.window: o.value for o in exact.outcomes}
        for outcome in approx.outcomes:
            truth = exact_by_window[outcome.window]
            assert outcome.value == pytest.approx(truth, rel=0.05)

    def test_network_ordering_matches_paper(self):
        streams = make_streams(per_node=3000, seed=5)
        byte_counts = {
            name: build_system(name, QUERY, TOPO).run(streams).network.total_bytes
            for name in SYSTEM_NAMES
        }
        assert byte_counts["tdigest"] < byte_counts["dema"]
        assert byte_counts["dema"] < byte_counts["desis"] / 2
        assert byte_counts["dema"] < byte_counts["scotty"] / 2
