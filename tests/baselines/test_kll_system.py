"""Tests for the KLL decentralized baseline."""

import pytest

from repro.baselines.base import build_system
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.workloads import bench_topology, median_query


def make_streams(rate=2_000.0, seconds=2.0, seed=61):
    return workload(
        [1, 2], GeneratorConfig(event_rate=rate, duration_s=seconds, seed=seed)
    )


class TestKllSystem:
    def test_accuracy_close_to_truth(self):
        query = median_query(100)
        topo = bench_topology(2)
        streams = make_streams()
        truth = {
            o.window: o.value
            for o in build_system("scotty", query, topo).run(streams).outcomes
        }
        report = build_system("kll", query, topo).run(streams)
        for outcome in report.outcomes:
            assert outcome.value == pytest.approx(
                truth[outcome.window], rel=0.03
            )
            assert outcome.global_window_size > 0

    def test_network_far_below_raw(self):
        query = median_query(100)
        topo = bench_topology(2)
        streams = make_streams(rate=5_000.0)
        scotty = build_system("scotty", query, topo).run(streams)
        kll = build_system("kll", query, topo).run(streams)
        assert kll.network.total_bytes < 0.15 * scotty.network.total_bytes

    def test_deterministic(self):
        query = median_query(100)
        topo = bench_topology(2)
        streams = make_streams()
        first = build_system("kll", query, topo).run(streams)
        second = build_system("kll", query, topo).run(streams)
        assert first.values == second.values

    def test_in_system_registry(self):
        from repro.baselines.base import SYSTEM_NAMES

        assert "kll" in SYSTEM_NAMES

    def test_throughput_competitive_with_tdigest(self):
        from repro.bench.harness import capacity_estimate

        query = median_query(100)
        topo = bench_topology(2)
        kll = capacity_estimate("kll", query, topo).per_node_rate
        tdigest = capacity_estimate("tdigest", query, topo).per_node_rate
        assert kll == pytest.approx(tdigest, rel=0.5)

    def test_empty_window(self):
        from repro.streaming.events import make_events

        query = median_query(100)
        topo = bench_topology(2)
        streams = {1: make_events([1.0, 2.0], node_id=1, timestamp_step=1)}
        report = build_system("kll", query, topo).run(streams)
        assert report.outcomes[0].value is not None
