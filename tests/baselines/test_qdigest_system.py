"""Tests for the q-digest decentralized baseline."""

import pytest

from repro.errors import AggregationError, SketchError
from repro.network.messages import GammaUpdateMessage, QDigestMessage
from repro.network.channels import Channel
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import make_events
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.sketches.qdigest import QDigest
from repro.baselines.base import build_system
from repro.baselines.qdigest_system import QDigestLocalNode, QDigestRootNode
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.workloads import bench_topology, median_query

WINDOW = Window(0, 1000)


class Sink(SimulatedNode):
    def __init__(self, node_id=0):
        super().__init__(node_id)
        self.received = []

    def on_message(self, message, now):
        self.received.append(message)


class TestSerialization:
    def test_roundtrip_preserves_counts(self):
        digest = QDigest(k=32, depth=8)
        digest.add_all([1, 5, 5, 200, 255])
        triples = digest.to_node_tuples()
        restored = QDigest.from_node_tuples(triples, k=32, depth=8)
        assert restored.n == digest.n
        assert restored.quantile(0.5) == digest.quantile(0.5)

    def test_invalid_node_rejected(self):
        with pytest.raises(SketchError):
            QDigest.from_node_tuples([(9, 0, 1)], k=32, depth=8)
        with pytest.raises(SketchError):
            QDigest.from_node_tuples([(2, 9, 1)], k=32, depth=8)
        with pytest.raises(SketchError):
            QDigest.from_node_tuples([(2, 1, 0)], k=32, depth=8)

    def test_empty_roundtrip(self):
        restored = QDigest.from_node_tuples((), k=32, depth=8)
        assert restored.n == 0


class TestLocalNode:
    def deploy(self):
        simulator = Simulator()
        root = Sink()
        query = QuantileQuery(q=0.5, window_length_ms=1000)
        local = QDigestLocalNode(1, root_id=0, query=query, ops_per_second=1e9)
        simulator.add_node(root)
        simulator.add_node(local)
        simulator.connect(Channel(1, 0))
        return simulator, root, local

    def test_ships_digest_message(self):
        simulator, root, local = self.deploy()
        events = make_events(range(200), node_id=1, timestamp_step=1)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        message = root.received[0]
        assert isinstance(message, QDigestMessage)
        assert message.local_count == 200

    def test_values_outside_range_clamped(self):
        simulator, root, local = self.deploy()
        events = make_events([-50.0, 5_000.0], node_id=1, timestamp_step=1)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert root.received[0].local_count == 2

    def test_unexpected_message_rejected(self):
        simulator, root, local = self.deploy()
        simulator.connect(Channel(0, 1))
        bad = GammaUpdateMessage(sender=0, window=WINDOW, gamma=5)
        simulator.schedule(0.0, lambda t: root.send(bad, 1, t))
        with pytest.raises(AggregationError):
            simulator.run()


class TestFullSystem:
    def test_accuracy_within_error_bound(self):
        query = median_query(100)
        topo = bench_topology(2)
        streams = workload(
            [1, 2], GeneratorConfig(event_rate=2_000.0, duration_s=2.0, seed=8)
        )
        truth = {
            o.window: o.value
            for o in build_system("scotty", query, topo).run(streams).outcomes
        }
        report = build_system("qdigest", query, topo).run(streams)
        for outcome in report.outcomes:
            assert outcome.value == pytest.approx(
                truth[outcome.window], rel=0.05
            )

    def test_network_much_cheaper_than_raw(self):
        query = median_query(100)
        topo = bench_topology(2)
        streams = workload(
            [1, 2], GeneratorConfig(event_rate=3_000.0, duration_s=2.0, seed=9)
        )
        scotty = build_system("scotty", query, topo).run(streams)
        qdigest = build_system("qdigest", query, topo).run(streams)
        assert qdigest.network.total_bytes < 0.3 * scotty.network.total_bytes

    def test_empty_window(self):
        simulator = Simulator()
        query = QuantileQuery(q=0.5, window_length_ms=1000)
        root = QDigestRootNode(0, local_ids=[1], query=query, ops_per_second=1e9)
        sender = Sink(1)
        simulator.add_node(root)
        simulator.add_node(sender)
        simulator.connect(Channel(1, 0))
        message = QDigestMessage(sender=1, window=WINDOW, nodes=(), local_count=0)
        simulator.schedule(1.0, lambda t: sender.send(message, 0, t))
        simulator.run()
        assert root.records[0].value is None

    def test_duplicate_digest_rejected(self):
        simulator = Simulator()
        query = QuantileQuery(q=0.5, window_length_ms=1000)
        root = QDigestRootNode(
            0, local_ids=[1, 2], query=query, ops_per_second=1e9
        )
        sender = Sink(1)
        simulator.add_node(root)
        simulator.add_node(sender)
        simulator.connect(Channel(1, 0))
        message = QDigestMessage(
            sender=1, window=WINDOW, nodes=((14, 5, 3),), local_count=3
        )
        simulator.schedule(1.0, lambda t: sender.send(message, 0, t))
        simulator.schedule(2.0, lambda t: sender.send(message, 0, t))
        with pytest.raises(AggregationError):
            simulator.run()
