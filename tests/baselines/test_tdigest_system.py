"""Tests for the t-digest decentralized baseline."""

import random

import pytest

from repro.errors import AggregationError
from repro.network.channels import Channel
from repro.network.messages import DigestMessage, GammaUpdateMessage
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import make_events
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.baselines.tdigest_system import TDigestLocalNode, TDigestRootNode

WINDOW = Window(0, 1000)


class Sink(SimulatedNode):
    def __init__(self, node_id=0):
        super().__init__(node_id)
        self.received = []

    def on_message(self, message, now):
        self.received.append(message)


class TestLocal:
    def deploy(self):
        simulator = Simulator()
        root = Sink()
        query = QuantileQuery(q=0.5, window_length_ms=1000)
        local = TDigestLocalNode(1, root_id=0, query=query, ops_per_second=1e9)
        simulator.add_node(root)
        simulator.add_node(local)
        simulator.connect(Channel(1, 0))
        return simulator, root, local

    def test_ships_digest_at_window_end(self):
        simulator, root, local = self.deploy()
        events = make_events(range(100), node_id=1, timestamp_step=5)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert len(root.received) == 1
        digest = root.received[0]
        assert isinstance(digest, DigestMessage)
        assert sum(w for _, w in digest.centroids) == pytest.approx(100.0)

    def test_digest_much_smaller_than_raw(self):
        simulator, root, local = self.deploy()
        events = make_events(range(10_000), node_id=1, timestamp_step=0)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        message = root.received[0]
        assert message.payload_bytes < 10_000 * 16 / 10

    def test_empty_window_ships_empty_digest(self):
        simulator, root, local = self.deploy()
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert root.received[0].centroids == ()

    def test_unexpected_message_rejected(self):
        simulator, root, local = self.deploy()
        simulator.connect(Channel(0, 1))
        bad = GammaUpdateMessage(sender=0, window=WINDOW, gamma=5)
        simulator.schedule(0.0, lambda t: root.send(bad, 1, t))
        with pytest.raises(AggregationError):
            simulator.run()


class TestRoot:
    def deploy(self, local_ids=(1, 2)):
        simulator = Simulator()
        query = QuantileQuery(q=0.5, window_length_ms=1000)
        root = TDigestRootNode(
            0, local_ids=list(local_ids), query=query, ops_per_second=1e9
        )
        simulator.add_node(root)
        senders = {}
        for local_id in local_ids:
            sender = Sink(local_id)
            simulator.add_node(sender)
            simulator.connect(Channel(local_id, 0))
            senders[local_id] = sender
        return simulator, root, senders

    def make_digest_message(self, values, node_id):
        from repro.sketches.tdigest import TDigest

        digest = TDigest(100)
        digest.add_all(values)
        return DigestMessage(
            sender=node_id, window=WINDOW,
            centroids=digest.to_centroid_tuples(),
            minimum=digest.min,
            maximum=digest.max,
        )

    def test_merged_quantile_close_to_truth(self):
        rng = random.Random(0)
        values_a = [rng.gauss(50, 10) for _ in range(5_000)]
        values_b = [rng.gauss(60, 10) for _ in range(5_000)]
        simulator, root, senders = self.deploy()
        for node_id, values in ((1, values_a), (2, values_b)):
            message = self.make_digest_message(values, node_id)
            simulator.schedule(
                1.0, lambda t, s=senders[node_id], m=message: s.send(m, 0, t)
            )
        simulator.run()
        record = root.records[0]
        truth = sorted(values_a + values_b)[4_999]
        assert record.value == pytest.approx(truth, rel=0.02)
        assert record.global_window_size == 10_000

    def test_waits_for_all_digests(self):
        simulator, root, senders = self.deploy()
        message = self.make_digest_message([1.0, 2.0], 1)
        simulator.schedule(1.0, lambda t: senders[1].send(message, 0, t))
        simulator.run()
        assert root.records == []

    def test_empty_window(self):
        simulator, root, senders = self.deploy()
        for node_id in (1, 2):
            message = DigestMessage(sender=node_id, window=WINDOW, centroids=())
            simulator.schedule(
                1.0, lambda t, s=senders[node_id], m=message: s.send(m, 0, t)
            )
        simulator.run()
        assert root.records[0].value is None

    def test_duplicate_digest_rejected(self):
        simulator, root, senders = self.deploy()
        message = self.make_digest_message([1.0], 1)
        simulator.schedule(1.0, lambda t: senders[1].send(message, 0, t))
        simulator.schedule(2.0, lambda t: senders[1].send(message, 0, t))
        with pytest.raises(AggregationError):
            simulator.run()
