"""Tests for the Desis (decentralized sorting) baseline."""

import pytest

from repro.errors import AggregationError
from repro.network.channels import Channel
from repro.network.messages import GammaUpdateMessage, SortedRunMessage
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import event_key, make_events
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.baselines.desis import DesisLocalNode, DesisRootNode

WINDOW = Window(0, 1000)


class Sink(SimulatedNode):
    def __init__(self):
        super().__init__(0)
        self.received = []

    def on_message(self, message, now):
        self.received.append(message)


class TestLocal:
    def deploy(self):
        simulator = Simulator()
        root = Sink()
        query = QuantileQuery(q=0.5, window_length_ms=1000)
        local = DesisLocalNode(1, root_id=0, query=query, ops_per_second=1e9)
        simulator.add_node(root)
        simulator.add_node(local)
        simulator.connect(Channel(1, 0))
        return simulator, root, local

    def test_ships_sorted_run_at_window_end(self):
        simulator, root, local = self.deploy()
        events = make_events([5, 1, 4, 2], node_id=1, timestamp_step=10)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert len(root.received) == 1
        run = root.received[0]
        assert isinstance(run, SortedRunMessage)
        assert [e.value for e in run.events] == [1.0, 2.0, 4.0, 5.0]

    def test_nothing_sent_before_window_end(self):
        simulator, root, local = self.deploy()
        events = make_events([1, 2], node_id=1, timestamp_step=10)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.run()
        assert root.received == []

    def test_empty_window_ships_empty_run(self):
        simulator, root, local = self.deploy()
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert root.received[0].events == ()

    def test_unexpected_message_rejected(self):
        simulator, root, local = self.deploy()
        simulator.connect(Channel(0, 1))
        bad = GammaUpdateMessage(sender=0, window=WINDOW, gamma=5)
        simulator.schedule(0.0, lambda t: root.send(bad, 1, t))
        with pytest.raises(AggregationError):
            simulator.run()


class TestRoot:
    def deploy(self, local_ids=(1, 2)):
        simulator = Simulator()
        query = QuantileQuery(q=0.5, window_length_ms=1000)
        root = DesisRootNode(
            0, local_ids=list(local_ids), query=query, ops_per_second=1e9
        )
        simulator.add_node(root)
        senders = {}
        for local_id in local_ids:
            sender = Sink.__new__(Sink)
            SimulatedNode.__init__(sender, local_id)
            sender.received = []
            simulator.add_node(sender)
            simulator.connect(Channel(local_id, 0))
            senders[local_id] = sender
        return simulator, root, senders

    def send_run(self, simulator, sender, values, node_id, at=1.0):
        events = tuple(
            sorted(make_events(values, node_id=node_id), key=event_key)
        )
        message = SortedRunMessage(sender=node_id, window=WINDOW, events=events)
        simulator.schedule(at, lambda t: sender.send(message, 0, t))

    def test_merges_runs_and_selects(self):
        simulator, root, senders = self.deploy()
        self.send_run(simulator, senders[1], [1, 3, 5], 1)
        self.send_run(simulator, senders[2], [2, 4], 2)
        simulator.run()
        assert root.records[0].value == 3.0
        assert root.records[0].global_window_size == 5

    def test_waits_for_all_runs(self):
        simulator, root, senders = self.deploy()
        self.send_run(simulator, senders[1], [1, 2], 1)
        simulator.run()
        assert root.records == []
        assert root.open_windows == 1

    def test_empty_global_window(self):
        simulator, root, senders = self.deploy()
        self.send_run(simulator, senders[1], [], 1)
        self.send_run(simulator, senders[2], [], 2)
        simulator.run()
        assert root.records[0].value is None

    def test_duplicate_run_rejected(self):
        simulator, root, senders = self.deploy()
        self.send_run(simulator, senders[1], [1], 1, at=1.0)
        self.send_run(simulator, senders[1], [2], 1, at=2.0)
        with pytest.raises(AggregationError):
            simulator.run()

    def test_unexpected_message_rejected(self):
        simulator, root, senders = self.deploy()
        bad = GammaUpdateMessage(sender=1, window=WINDOW, gamma=5)
        simulator.schedule(0.0, lambda t: senders[1].send(bad, 0, t))
        with pytest.raises(AggregationError):
            simulator.run()
