"""Tests for the generic sweep tool."""

import pytest

from repro.errors import ConfigurationError
from repro.bench.sweep import SweepSpec, run_sweep


class TestSpecValidation:
    def test_valid_spec(self):
        spec = SweepSpec(parameter="gamma", values=(2, 20))
        assert spec.metric == "throughput"

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(parameter="window_color", values=(1,))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(parameter="gamma", values=(2,), metric="vibes")

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(parameter="gamma", values=())

    def test_empty_systems_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(parameter="gamma", values=(2,), systems=())


class TestRunSweep:
    def test_gamma_throughput_sweep_shape(self):
        spec = SweepSpec(
            parameter="gamma", values=(2, 50), systems=("dema",)
        )
        result = run_sweep(spec)
        series = result.series["dema"]
        assert len(series) == 2
        assert series[1] > series[0]  # γ=2 is the pathological extreme

    def test_network_sweep_over_nodes(self):
        spec = SweepSpec(
            parameter="n_local_nodes",
            values=(2, 4),
            metric="network_bytes",
            systems=("scotty",),
            event_rate=500.0,
            duration_s=2.0,
        )
        result = run_sweep(spec)
        series = result.series["scotty"]
        assert series[1] == pytest.approx(2 * series[0], rel=0.05)

    def test_latency_sweep(self):
        spec = SweepSpec(
            parameter="event_rate",
            values=(200.0, 700.0),
            metric="latency_p50",
            systems=("scotty",),
            duration_s=4.0,
        )
        result = run_sweep(spec)
        series = result.series["scotty"]
        assert series[1] > series[0]

    def test_multiple_systems(self):
        spec = SweepSpec(
            parameter="gamma", values=(100,), systems=("dema", "desis")
        )
        result = run_sweep(spec)
        assert set(result.series) == {"dema", "desis"}
        assert result.series["dema"][0] > result.series["desis"][0]


class TestRendering:
    @pytest.fixture(scope="class")
    def result(self):
        spec = SweepSpec(parameter="gamma", values=(2, 50), systems=("dema",))
        return run_sweep(spec)

    def test_csv_round_structure(self, result):
        lines = result.to_csv().strip().splitlines()
        assert lines[0] == "gamma,dema"
        assert len(lines) == 3
        value = float(lines[1].split(",")[1])
        assert value == result.series["dema"][0]

    def test_table_contains_values(self, result):
        table = result.to_table()
        assert "gamma" in table
        assert "dema" in table


class TestCli:
    def test_sweep_subcommand(self, capsys, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "sweep.csv"
        assert main([
            "sweep", "--parameter", "gamma", "--values", "2,50",
            "--systems", "dema", "--csv", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "throughput vs gamma" in out
        assert path.read_text().startswith("gamma,dema")
