"""Tests for experiment specifications and bench topologies."""

from repro.bench.workloads import (
    BENCH_GAMMA,
    BENCH_OPS,
    EXPERIMENTS,
    bench_topology,
    median_query,
)


class TestBenchTopology:
    def test_identical_node_budgets(self):
        topo = bench_topology(3)
        assert topo.root_ops_per_second == BENCH_OPS
        assert topo.local_ops_per_second == BENCH_OPS

    def test_node_count(self):
        assert bench_topology(5).n_local_nodes == 5

    def test_custom_budget(self):
        assert bench_topology(2, ops_per_second=123.0).root_ops_per_second == 123.0

    def test_no_explicit_stream_layer(self):
        assert bench_topology(2).streams_per_local == 0


class TestMedianQuery:
    def test_defaults_match_paper(self):
        query = median_query()
        assert query.q == 0.5
        assert query.window_length_ms == 1000
        assert query.gamma == BENCH_GAMMA
        assert not query.adaptive

    def test_quantile_override(self):
        assert median_query(q=0.25).q == 0.25

    def test_adaptive_flag(self):
        assert median_query(adaptive=True).adaptive


class TestExperimentIndex:
    def test_every_paper_figure_present(self):
        figures = {spec.figure for spec in EXPERIMENTS.values()}
        for expected in (
            "Figure 5a", "Figure 5b", "Figure 6a", "Figure 6b",
            "Figure 7a", "Figure 7b", "Figure 8a", "Figure 8b",
        ):
            assert expected in figures

    def test_experiment_ids_unique(self):
        ids = [spec.experiment_id for spec in EXPERIMENTS.values()]
        assert len(ids) == len(set(ids))

    def test_fig8b_sweeps_gamma_and_scales(self):
        spec = EXPERIMENTS["fig8b"]
        assert len(spec.gammas) >= 5
        assert set(spec.scale_rate_configs) == {"dema#1", "dema#2", "dema#10"}
        assert spec.q == (0.3,)

    def test_scalability_covers_multiple_node_counts(self):
        assert len(EXPERIMENTS["fig7a"].n_local_nodes) >= 3

    def test_ablations_included(self):
        assert "ablation_window_cut" in EXPERIMENTS
        assert "ablation_adaptive_gamma" in EXPERIMENTS

    def test_every_system_in_fig5a(self):
        assert set(EXPERIMENTS["fig5a"].systems) == {
            "dema", "scotty", "desis", "tdigest",
        }
