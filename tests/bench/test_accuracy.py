"""Tests for accuracy metrics."""

import pytest

from repro.errors import HarnessError
from repro.bench.accuracy import accuracy_vs_ground_truth, mean_percentage_error


class TestMeanPercentageError:
    def test_exact_estimates_give_zero(self):
        assert mean_percentage_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_single_window(self):
        assert mean_percentage_error([110.0], [100.0]) == pytest.approx(0.1)

    def test_averages_over_windows(self):
        assert mean_percentage_error(
            [110.0, 100.0], [100.0, 100.0]
        ) == pytest.approx(0.05)

    def test_sign_ignored(self):
        assert mean_percentage_error([90.0], [100.0]) == pytest.approx(0.1)

    def test_negative_truth_supported(self):
        assert mean_percentage_error([-90.0], [-100.0]) == pytest.approx(0.1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(HarnessError):
            mean_percentage_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(HarnessError):
            mean_percentage_error([], [])

    def test_zero_truth_rejected(self):
        with pytest.raises(HarnessError):
            mean_percentage_error([1.0], [0.0])


class TestAccuracy:
    def test_perfect_accuracy(self):
        assert accuracy_vs_ground_truth([5.0], [5.0]) == 1.0

    def test_matches_paper_definition(self):
        assert accuracy_vs_ground_truth([99.0], [100.0]) == pytest.approx(0.99)

    def test_floored_at_zero(self):
        assert accuracy_vs_ground_truth([300.0], [100.0]) == 0.0
