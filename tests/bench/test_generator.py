"""Tests for the synthetic DEBS-style workload generator."""

import numpy as np
import pytest

from repro.errors import GeneratorError
from repro.bench.generator import GeneratorConfig, SensorStreamGenerator, workload


def config(**kwargs):
    defaults = dict(event_rate=1000.0, duration_s=2.0, seed=7)
    defaults.update(kwargs)
    return GeneratorConfig(**defaults)


class TestConfigValidation:
    def test_n_events(self):
        assert config(event_rate=500, duration_s=3.0).n_events == 1500

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"event_rate": 0},
            {"duration_s": 0},
            {"scale_rate": 0},
            {"reversion": 0.0},
            {"reversion": 1.5},
            {"volatility": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(GeneratorError):
            config(**kwargs)


class TestStreams:
    def test_deterministic_per_seed(self):
        a = SensorStreamGenerator(config()).generate(1)
        b = SensorStreamGenerator(config()).generate(1)
        assert a == b

    def test_different_nodes_differ(self):
        generator = SensorStreamGenerator(config())
        assert generator.generate(1) != generator.generate(2)

    def test_replay_offset_changes_stream(self):
        a = SensorStreamGenerator(config(replay_offset=0)).values(1)
        b = SensorStreamGenerator(config(replay_offset=1)).values(1)
        assert not np.allclose(a, b)

    def test_event_count_matches_rate(self):
        events = SensorStreamGenerator(config()).generate(1)
        assert len(events) == 2000

    def test_timestamps_non_decreasing_within_duration(self):
        events = SensorStreamGenerator(config()).generate(1)
        stamps = [e.timestamp for e in events]
        assert stamps == sorted(stamps)
        assert stamps[0] >= 0
        assert stamps[-1] < 2000

    def test_node_id_and_seq_stamped(self):
        events = SensorStreamGenerator(config()).generate(3)
        assert all(e.node_id == 3 for e in events)
        assert [e.seq for e in events] == list(range(len(events)))

    def test_values_non_negative(self):
        values = SensorStreamGenerator(config()).values(1)
        assert (values >= 0).all()

    def test_values_autocorrelated(self):
        values = SensorStreamGenerator(config(event_rate=5000)).values(1)
        deviations = values - values.mean()
        autocorr = float(
            np.corrcoef(deviations[:-1], deviations[1:])[0, 1]
        )
        assert autocorr > 0.8

    def test_scale_rate_multiplies_values(self):
        base = SensorStreamGenerator(config(scale_rate=1.0)).values(1)
        scaled = SensorStreamGenerator(config(scale_rate=10.0)).values(1)
        assert np.allclose(scaled, base * 10.0)

    def test_scaled_streams_still_overlap_near_origin(self):
        # The paper's Dema #10 configuration relies on scaled streams
        # remaining "denser on the left": the scale-1 stream must overlap
        # the scale-10 stream's lower range.
        base = SensorStreamGenerator(config(event_rate=5000)).values(1)
        scaled = base * 10.0
        assert scaled.min() < np.percentile(base, 95)


class TestWorkload:
    def test_per_node_streams(self):
        streams = workload(range(1, 4), config())
        assert set(streams) == {1, 2, 3}
        assert all(len(events) == 2000 for events in streams.values())

    def test_scale_rate_overrides(self):
        streams = workload(
            [1, 2], config(), scale_rates={2: 10.0}
        )
        mean_1 = np.mean([e.value for e in streams[1]])
        mean_2 = np.mean([e.value for e in streams[2]])
        assert mean_2 > 5 * mean_1

    def test_event_rate_overrides(self):
        streams = workload([1, 2], config(), event_rates={2: 250.0})
        assert len(streams[1]) == 2000
        assert len(streams[2]) == 500

    def test_nodes_replay_from_different_offsets(self):
        streams = workload([1, 2], config())
        values_1 = [e.value for e in streams[1]]
        values_2 = [e.value for e in streams[2]]
        assert values_1 != values_2
