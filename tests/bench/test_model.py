"""Tests validating the analytical model against the simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.harness import capacity_estimate, run_workload
from repro.bench.model import SystemModel, predict
from repro.bench.workloads import bench_topology, median_query

MODEL = SystemModel(n_local_nodes=2, node_ops_per_second=1e5, gamma=100)


class TestThroughputPredictions:
    @pytest.mark.parametrize(
        "system", ["dema", "scotty", "desis", "tdigest", "qdigest"]
    )
    def test_matches_simulation_within_tolerance(self, system):
        predicted = MODEL.throughput(system).per_node_rate
        simulated = capacity_estimate(
            system, median_query(100), bench_topology(2)
        ).per_node_rate
        assert predicted == pytest.approx(simulated, rel=0.15)

    def test_bottleneck_identification(self):
        assert MODEL.throughput("scotty").bottleneck == "root"
        assert MODEL.throughput("desis").bottleneck == "root"
        assert MODEL.throughput("dema").bottleneck == "local"
        assert MODEL.throughput("tdigest").bottleneck == "local"

    def test_ordering_matches_paper(self):
        rates = {
            system: MODEL.aggregate_throughput(system)
            for system in ("dema", "scotty", "desis", "tdigest")
        }
        assert (
            rates["tdigest"]
            > rates["dema"]
            > rates["desis"]
            > rates["scotty"]
        )

    def test_dema_scales_with_nodes_desis_does_not(self):
        small = SystemModel(n_local_nodes=2, node_ops_per_second=1e5)
        large = SystemModel(n_local_nodes=8, node_ops_per_second=1e5)
        assert large.aggregate_throughput("dema") > 3.5 * (
            small.aggregate_throughput("dema")
        )
        assert large.aggregate_throughput("desis") < 1.2 * (
            small.aggregate_throughput("desis")
        )

    def test_predict_wrapper(self):
        prediction = predict("dema", node_ops_per_second=1e5)
        assert prediction.system == "dema"
        assert prediction.per_node_rate > 0

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            MODEL.throughput("flink")


class TestNetworkPredictions:
    @pytest.mark.parametrize("system", ["scotty", "desis", "dema", "tdigest"])
    def test_bytes_match_simulation(self, system):
        rate, n_windows = 2_000, 3
        streams = workload(
            [1, 2],
            GeneratorConfig(event_rate=rate, duration_s=float(n_windows),
                            seed=23),
        )
        report = run_workload(
            system, median_query(100), bench_topology(2), streams
        )
        # Calibrate the data-dependent knobs from the run itself.
        candidate_slices = 3
        if system == "dema":
            candidate_slices = round(
                sum(o.candidate_slices for o in report.outcomes)
                / len(report.outcomes)
            )
        model = SystemModel(
            n_local_nodes=2, gamma=100, candidate_slices=candidate_slices
        )
        predicted = model.network_bytes(system, rate, n_windows)
        tolerance = 0.30 if system in ("tdigest",) else 0.10
        assert predicted == pytest.approx(
            report.network.total_bytes, rel=tolerance
        )

    def test_dema_bytes_scale_with_synopses_not_events(self):
        small = MODEL.network_bytes("dema", 1_000, 1)
        large = MODEL.network_bytes("dema", 4_000, 1)
        assert large < 3 * small

    def test_centralized_bytes_linear_in_events(self):
        small = MODEL.network_bytes("scotty", 1_000, 1)
        large = MODEL.network_bytes("scotty", 4_000, 1)
        assert large == pytest.approx(4 * small, rel=0.02)

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            MODEL.network_bytes("flink", 100, 1)


class TestModelValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemModel(n_local_nodes=0)
        with pytest.raises(ConfigurationError):
            SystemModel(gamma=1)

    def test_gamma_tradeoff_visible_in_model(self):
        tiny = SystemModel(node_ops_per_second=1e5, gamma=2)
        mid = SystemModel(node_ops_per_second=1e5, gamma=100)
        huge = SystemModel(node_ops_per_second=1e5, gamma=50_000)
        assert mid.root_capacity("dema") > tiny.root_capacity("dema")
        assert mid.root_capacity("dema") > huge.root_capacity("dema")
