"""Tests for terminal charts."""

import pytest

from repro.errors import ConfigurationError
from repro.bench.charts import bar_chart, series_chart, sparkline


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_zero_value_renders_no_bar(self):
        chart = bar_chart(["a", "b"], [4.0, 0.0])
        assert chart.splitlines()[1].count("█") == 0

    def test_tiny_nonzero_value_still_visible(self):
        chart = bar_chart(["a", "b"], [1000.0, 1.0], width=10)
        assert chart.splitlines()[1].count("█") == 1

    def test_labels_aligned(self):
        chart = bar_chart(["x", "longer"], [1.0, 2.0])
        lines = chart.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_custom_format(self):
        chart = bar_chart(["a"], [1234.0], fmt=lambda v: f"{v/1000:.1f}k")
        assert "1.2k" in chart

    def test_title_included(self):
        chart = bar_chart(["a"], [1.0], title="My Chart")
        assert chart.splitlines()[0] == "My Chart"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart([], [])
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [-1.0])


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_min_max_mapped_to_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[1] == "█"

    def test_flat_series_mid_height(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert list(line) == sorted(line)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestSeriesChart:
    def test_all_series_rendered(self):
        chart = series_chart(
            [1, 2, 3],
            {"dema": [1.0, 2.0, 3.0], "scotty": [1.0, 1.0, 1.0]},
        )
        assert "dema" in chart
        assert "scotty" in chart
        assert "1 … 3" in chart

    def test_end_values_shown(self):
        chart = series_chart([1, 2], {"s": [10.0, 20.0]})
        assert "10" in chart and "20" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            series_chart([1, 2], {"s": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            series_chart([1], {})
