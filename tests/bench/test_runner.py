"""Tests for the experiment runner (scaled-down invocations)."""

import pytest

from repro.bench import runner


class TestExperimentShapes:
    """Each experiment must reproduce the paper's qualitative claim."""

    def test_fig6a_network_ordering(self):
        results = runner.exp_fig6a(per_node_rate=3_000.0, n_windows=2)
        assert results["dema"]["reduction_vs_scotty"] > 0.85
        assert results["desis"]["bytes"] == pytest.approx(
            results["scotty"]["bytes"], rel=0.05
        )
        assert results["tdigest"]["bytes"] < results["dema"]["bytes"]

    def test_fig6b_linear_growth_dema_lowest(self):
        results = runner.exp_fig6b(
            node_counts=(2, 4), per_node_rate=1_000.0, n_windows=2
        )
        for system, series in results.items():
            assert series[4] > 1.5 * series[2]
        assert results["dema"][4] < 0.2 * results["scotty"][4]

    def test_fig7b_accuracy(self):
        results = runner.exp_fig7b(per_node_rate=1_000.0, n_windows=3)
        assert results["dema"] == 1.0
        assert 0.97 <= results["tdigest"] < 1.0

    def test_fig7a_dema_scales_desis_bottlenecks(self):
        results = runner.exp_fig7a(node_counts=(2, 4))
        assert results["dema"][4] > 1.6 * results["dema"][2]
        assert results["desis"][4] < 1.3 * results["desis"][2]

    def test_fig8b_inverted_u(self):
        results = runner.exp_fig8b(gammas=(2, 50, 2000))
        for series in results.values():
            assert series[50] > series[2]
            assert series[50] > series[2000]

    def test_ablation_window_cut_prunes(self):
        results = runner.exp_ablation_window_cut(
            per_node_rate=2_000.0, n_windows=2
        )
        assert (
            results["candidate_events_with_cut"]
            < 0.5 * results["candidate_events_without_cut"]
        )

    def test_ablation_adaptive_gamma_beats_extremes(self):
        results = runner.exp_ablation_adaptive_gamma(n_windows=6)
        assert results["adaptive"] < results["fixed γ=2"]
        assert results["adaptive"] < results["fixed γ=2000"]


class TestCli:
    def test_quick_selection_runs(self, capsys):
        assert runner.main(["fig7b"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7b" in out
        assert "accuracy" in out

    def test_ablation_via_cli(self, capsys):
        assert runner.main(["ablation_window_cut"]) == 0
        assert "window-cut" in capsys.readouterr().out

    def test_json_export(self, capsys, tmp_path):
        import json

        path = tmp_path / "results.json"
        assert runner.main(["fig7b", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["fig7b"]["dema"] == 1.0
        assert 0.9 < data["fig7b"]["tdigest"] < 1.0


class TestAblationBandwidth:
    def test_constrained_uplink_ordering(self):
        results = runner.exp_ablation_bandwidth()
        datacenter = results["datacenter"]
        constrained = results["constrained"]
        assert set(datacenter) == set(constrained)
        dema_slowdown = constrained["dema"] / datacenter["dema"]
        desis_slowdown = constrained["desis"] / datacenter["desis"]
        assert desis_slowdown > dema_slowdown

    def test_via_cli(self, capsys):
        assert runner.main(["ablation_bandwidth"]) == 0
        assert "constrained uplinks" in capsys.readouterr().out
