"""Tests for the measurement harness."""

import pytest

from repro.errors import HarnessError
from repro.core.query import QuantileQuery
from repro.bench.harness import (
    ThroughputResult,
    capacity_estimate,
    measure_latency,
    probe_rate,
    run_workload,
    sustainable_throughput,
)
from repro.bench.generator import GeneratorConfig, workload
from repro.bench.workloads import bench_topology, median_query

TOPO = bench_topology(2)
QUERY = median_query(gamma=50)


class TestThroughputResult:
    def test_aggregate_rate(self):
        result = ThroughputResult(
            system="dema", per_node_rate=100.0, n_local_nodes=3, probes=1
        )
        assert result.aggregate_rate == 300.0


class TestProbeRate:
    def test_low_rate_sustainable(self):
        ok, latencies = probe_rate("dema", QUERY, TOPO, 200.0, n_windows=4)
        assert ok
        assert len(latencies) == 4

    def test_overload_rejected(self):
        ok, _ = probe_rate("scotty", QUERY, TOPO, 50_000.0, n_windows=4)
        assert not ok

    def test_latencies_positive(self):
        _, latencies = probe_rate("dema", QUERY, TOPO, 200.0, n_windows=4)
        assert all(latency > 0 for latency in latencies)


class TestSustainableThroughput:
    def test_search_brackets_true_rate(self):
        result = sustainable_throughput(
            "dema", QUERY, TOPO, rate_lo=100, rate_hi=30_000,
            iterations=5, n_windows=4,
        )
        assert 1_000 < result.per_node_rate < 30_000
        ok, _ = probe_rate(
            "dema", QUERY, TOPO, result.per_node_rate, n_windows=4
        )
        assert ok

    def test_unsustainable_floor_raises(self):
        tiny = bench_topology(2, ops_per_second=10.0)
        with pytest.raises(HarnessError):
            sustainable_throughput(
                "dema", QUERY, tiny, rate_lo=1_000, n_windows=3
            )

    def test_sustainable_ceiling_short_circuits(self):
        result = sustainable_throughput(
            "dema", QUERY, TOPO, rate_lo=50, rate_hi=100, n_windows=3
        )
        assert result.per_node_rate == 100
        assert result.probes == 2


class TestCapacityEstimate:
    def test_close_to_binary_search(self):
        searched = sustainable_throughput(
            "desis", QUERY, TOPO, rate_lo=100, rate_hi=30_000,
            iterations=7, n_windows=4,
        )
        estimated = capacity_estimate("desis", QUERY, TOPO)
        assert estimated.per_node_rate == pytest.approx(
            searched.per_node_rate, rel=0.35
        )

    def test_rankings_preserved(self):
        estimates = {
            name: capacity_estimate(name, QUERY, TOPO).per_node_rate
            for name in ("dema", "scotty", "desis")
        }
        assert estimates["dema"] > estimates["desis"] > estimates["scotty"]


class TestMeasureLatency:
    def test_returns_stats(self):
        stats = measure_latency("dema", QUERY, TOPO, 500.0, n_windows=5)
        assert stats.count == 5
        assert stats.p50 > 0

    def test_latency_grows_with_load(self):
        light = measure_latency("scotty", QUERY, TOPO, 200.0, n_windows=5)
        heavy = measure_latency("scotty", QUERY, TOPO, 800.0, n_windows=5)
        assert heavy.p50 > light.p50


class TestRunWorkload:
    def test_runs_explicit_streams(self):
        streams = workload(
            range(1, 3), GeneratorConfig(event_rate=500, duration_s=2.0)
        )
        report = run_workload("dema", QUERY, TOPO, streams)
        assert len(report.outcomes) == 2
        assert report.events_ingested == 2000
