"""Tests for table and unit formatting."""

from repro.bench.reporting import (
    format_bytes,
    format_rate,
    format_seconds,
    format_table,
)


class TestFormatters:
    def test_rate_scales(self):
        assert format_rate(1_500_000) == "1.50M ev/s"
        assert format_rate(2_500) == "2.5k ev/s"
        assert format_rate(42) == "42 ev/s"

    def test_bytes_scales(self):
        assert format_bytes(2.5e9) == "2.50 GB"
        assert format_bytes(3.2e6) == "3.20 MB"
        assert format_bytes(1_500) == "1.50 KB"
        assert format_bytes(12) == "12 B"

    def test_seconds_scales(self):
        assert format_seconds(2.5) == "2.50 s"
        assert format_seconds(0.0123) == "12.3 ms"
        assert format_seconds(45e-6) == "45 µs"


class TestFormatTable:
    def test_columns_aligned(self):
        table = format_table(
            ["name", "value"], [["a", "1"], ["longer", "22"]]
        )
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line.rstrip()) <= len(lines[1]) + 2 for line in lines)
        assert "------" in lines[1]

    def test_title_included(self):
        table = format_table(["h"], [["x"]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2

    def test_wide_cells_extend_columns(self):
        table = format_table(["h"], [["wide-cell-content"]])
        header, divider, row = table.splitlines()
        assert len(divider) >= len("wide-cell-content")
