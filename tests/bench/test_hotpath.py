"""Tests for the hot-path perf-regression harness."""

import json
import random

from repro import exact_quantile
from repro.bench import hotpath
from repro.bench.hotpath import (
    BENCHMARKS,
    FULL,
    SMOKE,
    HotpathConfig,
    check_regressions,
    load_artifact,
    run_hotpath,
    write_hotpath,
)
from repro.core.engine import dema_quantile
from repro.streaming.events import Event

TINY = HotpathConfig(
    ingest_events=500,
    slice_events=500,
    gamma=10,
    merge_digests=3,
    merge_values_per_digest=50,
    codec_batch=16,
    codec_rounds=3,
    repeats=1,
)


class TestCheckRegressions:
    def test_clean_when_at_baseline(self):
        current = {"a_per_s": 100.0, "b_per_s": 50.0}
        assert check_regressions(current, dict(current)) == []

    def test_clean_within_tolerance(self):
        baseline = {"a_per_s": 100.0}
        assert check_regressions({"a_per_s": 80.0}, baseline) == []

    def test_fails_beyond_tolerance(self):
        baseline = {"a_per_s": 100.0}
        failures = check_regressions({"a_per_s": 60.0}, baseline)
        assert len(failures) == 1
        assert "a_per_s" in failures[0]

    def test_missing_metric_skipped(self):
        # A new benchmark must not fail the build before its baseline
        # lands, and a removed one must not block either direction.
        assert check_regressions({}, {"gone_per_s": 100.0}) == []
        assert check_regressions({"new_per_s": 1.0}, {}) == []

    def test_zero_baseline_skipped(self):
        assert check_regressions({"a_per_s": 1.0}, {"a_per_s": 0.0}) == []

    def test_custom_tolerance(self):
        baseline = {"a_per_s": 100.0}
        assert check_regressions(
            {"a_per_s": 89.0}, baseline, tolerance=0.1
        ) != []
        assert check_regressions(
            {"a_per_s": 89.0}, baseline, tolerance=0.2
        ) == []


class TestArtifact:
    def test_write_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "bench.json")
        current = {"a_per_s": 200.0}
        baselines = {
            "baseline": {"a_per_s": 100.0},
            "baseline_smoke": {"a_per_s": 90.0},
        }
        written = write_hotpath(path, TINY, current, baselines, mode="full")
        loaded = load_artifact(path)
        assert loaded == written
        assert loaded["current"] == current
        assert loaded["baseline"] == baselines["baseline"]
        assert loaded["baseline_smoke"] == baselines["baseline_smoke"]
        assert loaded["speedup"]["a_per_s"] == 2.0  # vs "baseline", not smoke
        assert loaded["mode"] == "full"
        assert loaded["config"]["ingest_events"] == TINY.ingest_events

    def test_smoke_mode_speedup_uses_smoke_baseline(self, tmp_path):
        path = str(tmp_path / "bench.json")
        baselines = {
            "baseline": {"a_per_s": 100.0},
            "baseline_smoke": {"a_per_s": 50.0},
        }
        loaded_smoke = write_hotpath(
            path, TINY, {"a_per_s": 200.0}, baselines, mode="smoke"
        )
        assert loaded_smoke["speedup"]["a_per_s"] == 4.0
        # Both baseline sections survive either mode's rewrite untouched.
        assert loaded_smoke["baseline"] == baselines["baseline"]
        assert loaded_smoke["baseline_smoke"] == baselines["baseline_smoke"]

    def test_extra_section_preserved(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_hotpath(
            path, TINY, {"a_per_s": 1.0}, None,
            extra={"notes": "ad hoc"},
        )
        assert load_artifact(path)["notes"] == "ad hoc"

    def test_load_missing_or_corrupt_is_none(self, tmp_path):
        assert load_artifact(str(tmp_path / "absent.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_artifact(str(bad)) is None


class TestBenchmarks:
    def test_all_microbenchmarks_produce_positive_rates(self):
        metrics = run_hotpath(TINY, include_live=False)
        expected = set(BENCHMARKS) - {"live_events_per_s"}
        assert set(metrics) == expected
        assert all(rate > 0 for rate in metrics.values())

    def test_progress_callback_sees_every_metric(self):
        seen = []
        run_hotpath(
            TINY, include_live=False,
            progress=lambda name, rate: seen.append(name),
        )
        assert seen == [n for n in BENCHMARKS if n != "live_events_per_s"]

    def test_smoke_config_only_shrinks_the_live_benchmark(self):
        # Sub-millisecond timed regions are too noisy to gate a build on,
        # so smoke mode keeps the microbenchmark sizes and shrinks only
        # the expensive end-to-end run.
        assert SMOKE.ingest_events == FULL.ingest_events
        assert SMOKE.slice_events == FULL.slice_events
        assert SMOKE.merge_digests == FULL.merge_digests
        assert SMOKE.codec_rounds == FULL.codec_rounds
        assert SMOKE.live_rate < FULL.live_rate
        assert SMOKE.live_duration_s < FULL.live_duration_s

    def test_committed_artifact_is_well_formed(self):
        artifact = load_artifact(hotpath.DEFAULT_HOTPATH_PATH)
        if artifact is None:  # running outside the repo root
            return
        assert set(artifact["current"]) == set(BENCHMARKS)
        assert set(artifact["baseline"]) == set(BENCHMARKS)
        assert set(artifact["baseline_smoke"]) == set(BENCHMARKS)
        # The artifact's whole point: the optimized numbers must beat the
        # committed pre-optimization baseline.  Metrics born optimized
        # (the columnar benchmarks) are seeded at their first measured
        # value and sit at exactly 1.0 until something moves them.
        assert all(ratio >= 1.0 for ratio in artifact["speedup"].values())
        assert any(ratio > 1.0 for ratio in artifact["speedup"].values())


class TestBitIdenticalResults:
    """The optimizations must not change a single answered quantile."""

    def _workload(self, seed):
        rng = random.Random(seed)
        streams = {}
        for node_id in (1, 2, 3):
            events = [
                Event(
                    value=rng.random() * 1000.0,
                    timestamp=rng.randrange(0, 1000),
                    node_id=node_id,
                    seq=seq,
                )
                for seq in range(400)
            ]
            rng.shuffle(events)
            streams[node_id] = events
        return streams

    def test_dema_matches_exact_oracle_bit_for_bit(self):
        streams = self._workload(seed=7)
        values = [e.value for events in streams.values() for e in events]
        for q in (0.01, 0.5, 0.99, 1.0):
            result = dema_quantile(streams, q, gamma=20)
            # Dema is exact: the answer IS an element of the multiset, so
            # equality is exact, not approximate.
            assert result.value == exact_quantile(values, q)

    def test_repeated_runs_identical(self):
        streams = self._workload(seed=11)
        first = dema_quantile(streams, 0.5, gamma=20)
        second = dema_quantile(streams, 0.5, gamma=20)
        assert first.value == second.value
        assert first.rank == second.rank
        assert first.candidate_events == second.candidate_events
