"""Tests for the public verification utilities."""

import pytest

from repro.errors import HarnessError
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.network.topology import TopologyConfig
from repro.streaming.events import make_events
from repro.streaming.windows import Window
from repro.testing import ground_truth, verify_outcomes
from repro.bench.generator import GeneratorConfig, workload


QUERY = QuantileQuery(q=0.5, gamma=30)


def run_dema(streams):
    engine = DemaEngine(QUERY, TopologyConfig(n_local_nodes=len(streams)))
    return engine.run(streams)


class TestGroundTruth:
    def test_matches_manual_computation(self):
        streams = {1: make_events([3.0, 1.0, 2.0], node_id=1, timestamp_step=1)}
        truth = ground_truth(streams, QUERY)
        assert truth == {Window(0, 1000): 2.0}

    def test_sliding_windows_covered(self):
        query = QuantileQuery(q=0.5, window_length_ms=1000,
                              window_step_ms=500, gamma=30)
        streams = {1: make_events(range(10), node_id=1, timestamp_step=100)}
        truth = ground_truth(streams, query)
        assert len(truth) > 1


class TestVerifyOutcomes:
    def test_exact_run_verifies(self):
        streams = workload(
            [1, 2], GeneratorConfig(event_rate=500, duration_s=2.0, seed=3)
        )
        report = run_dema(streams)
        verification = verify_outcomes(report.outcomes, streams, QUERY)
        assert verification.is_exact
        assert verification.checked == len(report.outcomes)
        assert "exact on all" in verification.summary()

    def test_mismatch_detected(self):
        class Fake:
            window = Window(0, 1000)
            value = 123.456

        streams = {1: make_events([1.0, 2.0], node_id=1, timestamp_step=1)}
        verification = verify_outcomes([Fake()], streams, QUERY)
        assert not verification.is_exact
        assert len(verification.mismatches) == 1
        assert "mismatched" in verification.summary()

    def test_missing_window_detected(self):
        streams = {1: make_events([1.0], node_id=1)}
        verification = verify_outcomes([], streams, QUERY)
        assert not verification.is_exact
        assert verification.missing_windows == [Window(0, 1000)]

    def test_missing_windows_can_be_ignored(self):
        streams = {1: make_events([1.0], node_id=1)}
        verification = verify_outcomes(
            [], streams, QUERY, require_all_windows=False
        )
        assert verification.is_exact

    def test_invented_window_rejected(self):
        class Fake:
            window = Window(99_000, 100_000)
            value = 1.0

        streams = {1: make_events([1.0], node_id=1)}
        with pytest.raises(HarnessError):
            verify_outcomes([Fake()], streams, QUERY)

    def test_none_values_skipped(self):
        class Empty:
            window = Window(0, 1000)
            value = None

        streams = {1: make_events([1.0], node_id=1)}
        verification = verify_outcomes(
            [Empty()], streams, QUERY, require_all_windows=False
        )
        assert verification.checked == 0
