"""Combination tests: extensions composed with each other.

Each extension is tested in isolation elsewhere; these runs exercise the
interesting pairings — sliding windows under message loss, per-node γ with
unbalanced rates and loss, sensors with reliability, concurrency with
sliding groups — and require bit-exactness throughout.
"""

import pytest

from repro.core.concurrent import ConcurrentDemaEngine
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.core.reliability import ReliabilityConfig
from repro.network.topology import TopologyConfig
from repro.streaming.aggregates import exact_quantile
from repro.testing import verify_outcomes
from repro.bench.generator import GeneratorConfig, workload

RELIABLE = ReliabilityConfig(timeout_s=0.05, max_retries=30)


def make_streams(n_nodes=2, rate=800.0, seconds=3.0, seed=71, **overrides):
    return workload(
        range(1, n_nodes + 1),
        GeneratorConfig(event_rate=rate, duration_s=seconds, seed=seed),
        **overrides,
    )


class TestSlidingPlusReliability:
    def test_exact_overlapping_windows_under_loss(self):
        query = QuantileQuery(
            q=0.5, window_length_ms=1000, window_step_ms=500, gamma=40
        )
        engine = DemaEngine(
            query,
            TopologyConfig(n_local_nodes=2, loss_rate=0.10, loss_seed=4),
            reliability=RELIABLE,
        )
        streams = make_streams()
        report = engine.run(streams)
        assert engine.root.aborted_windows == 0
        verification = verify_outcomes(report.outcomes, streams, query)
        assert verification.is_exact, verification.summary()


class TestPerNodeGammaPlusLoss:
    def test_heterogeneous_rates_lossy_links(self):
        query = QuantileQuery(
            q=0.5, gamma=50, adaptive=True, per_node_gamma=True
        )
        engine = DemaEngine(
            query,
            TopologyConfig(n_local_nodes=2, loss_rate=0.08, loss_seed=9),
            reliability=RELIABLE,
        )
        streams = make_streams(event_rates={2: 4_000.0})
        report = engine.run(streams)
        verification = verify_outcomes(report.outcomes, streams, query)
        assert verification.is_exact, verification.summary()
        gammas = engine.root.node_gammas
        assert gammas and gammas[2] > gammas[1]


class TestSensorsPlusSkew:
    def test_three_tier_with_scaled_node(self):
        query = QuantileQuery(q=0.25, gamma=40)
        engine = DemaEngine(
            query, TopologyConfig(n_local_nodes=2, streams_per_local=2)
        )
        streams = make_streams(scale_rates={2: 10.0})
        report = engine.run_via_sensors(streams)
        verification = verify_outcomes(report.outcomes, streams, query)
        assert verification.is_exact, verification.summary()


class TestConcurrentWithSlidingGroups:
    def test_mixed_tumbling_and_sliding_exact(self):
        queries = [
            QuantileQuery(q=0.5, window_length_ms=1000, gamma=40),
            QuantileQuery(
                q=0.9, window_length_ms=1000, window_step_ms=250, gamma=40
            ),
        ]
        engine = ConcurrentDemaEngine(queries, TopologyConfig(n_local_nodes=2))
        streams = make_streams()
        report = engine.run(streams)
        for query_index, query in enumerate(queries):
            outcomes = report.outcomes_for(query_index)
            verification = verify_outcomes(outcomes, streams, query)
            assert verification.is_exact, (query_index, verification.summary())


class TestMultiQuantileMatchesConcurrent:
    def test_two_apis_agree(self):
        """The in-memory multi-quantile API and the concurrent deployment
        answer the same questions identically."""
        from repro.core.multi import dema_quantiles
        from repro.streaming.windows import TumblingWindows

        streams = make_streams(seconds=2.0)
        qs = (0.25, 0.5, 0.75)
        queries = [
            QuantileQuery(q=q, window_length_ms=1000, gamma=40) for q in qs
        ]
        engine = ConcurrentDemaEngine(queries, TopologyConfig(n_local_nodes=2))
        report = engine.run(streams)

        assigner = TumblingWindows(1000)
        per_window: dict = {}
        for node_id, events in streams.items():
            for event in events:
                per_window.setdefault(
                    assigner.window_for(event.timestamp), {}
                ).setdefault(node_id, []).append(event)
        for window, by_node in per_window.items():
            in_memory = dema_quantiles(by_node, qs, gamma=40)
            for query_index, q in enumerate(qs):
                outcome = next(
                    o
                    for o in report.outcomes_for(query_index)
                    if o.window == window
                )
                assert outcome.value == in_memory.values[q]


class TestLatenessPlusReliability:
    def test_disordered_lossy_still_exact_over_retained(self):
        import dataclasses

        from repro.bench.generator import SensorStreamGenerator

        base = GeneratorConfig(
            event_rate=600.0, duration_s=3.0, seed=77,
            max_arrival_delay_ms=50,
        )
        arrivals = {}
        for node_id in (1, 2):
            config = dataclasses.replace(base, replay_offset=node_id)
            arrivals[node_id] = SensorStreamGenerator(
                config
            ).generate_with_arrivals(node_id)
        query = QuantileQuery(q=0.5, gamma=40)
        engine = DemaEngine(
            query,
            TopologyConfig(n_local_nodes=2, loss_rate=0.08, loss_seed=5),
            reliability=RELIABLE,
        )
        report = engine.run_unordered(arrivals, allowed_lateness_ms=80)
        streams = {
            node_id: [event for event, _ in pairs]
            for node_id, pairs in arrivals.items()
        }
        verification = verify_outcomes(report.outcomes, streams, query)
        assert verification.is_exact, verification.summary()
