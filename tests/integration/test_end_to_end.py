"""End-to-end integration: full Dema deployments on realistic workloads."""

import pytest

from repro.network.topology import TopologyConfig
from repro.streaming.aggregates import exact_quantile
from repro.streaming.windows import TumblingWindows
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.bench.generator import GeneratorConfig, workload


def ground_truth_per_window(streams, window_length_ms, q):
    assigner = TumblingWindows(window_length_ms)
    per_window = {}
    for events in streams.values():
        for event in events:
            per_window.setdefault(
                assigner.window_for(event.timestamp), []
            ).append(event.value)
    return {
        window: exact_quantile(values, q)
        for window, values in per_window.items()
    }


@pytest.mark.parametrize("q", [0.25, 0.5, 0.9])
@pytest.mark.parametrize("n_nodes", [1, 3])
def test_dema_exact_on_generated_workloads(q, n_nodes):
    config = GeneratorConfig(event_rate=800.0, duration_s=3.0, seed=11)
    streams = workload(range(1, n_nodes + 1), config)
    query = QuantileQuery(q=q, window_length_ms=1000, gamma=40)
    engine = DemaEngine(query, TopologyConfig(n_local_nodes=n_nodes))
    report = engine.run(streams)
    truth = ground_truth_per_window(streams, 1000, q)
    assert len(report.outcomes) == len(truth)
    for outcome in report.outcomes:
        assert outcome.value == truth[outcome.window]


def test_dema_exact_with_skewed_scale_rates():
    config = GeneratorConfig(event_rate=600.0, duration_s=3.0, seed=12)
    streams = workload([1, 2], config, scale_rates={2: 10.0})
    query = QuantileQuery(q=0.3, window_length_ms=1000, gamma=25)
    engine = DemaEngine(query, TopologyConfig(n_local_nodes=2))
    report = engine.run(streams)
    truth = ground_truth_per_window(streams, 1000, 0.3)
    for outcome in report.outcomes:
        assert outcome.value == truth[outcome.window]


def test_dema_exact_with_unbalanced_event_rates():
    config = GeneratorConfig(event_rate=400.0, duration_s=3.0, seed=13)
    streams = workload([1, 2, 3], config, event_rates={2: 1_200.0, 3: 50.0})
    query = QuantileQuery(q=0.5, window_length_ms=1000, gamma=30)
    engine = DemaEngine(query, TopologyConfig(n_local_nodes=3))
    report = engine.run(streams)
    truth = ground_truth_per_window(streams, 1000, 0.5)
    for outcome in report.outcomes:
        assert outcome.value == truth[outcome.window]


def test_adaptive_gamma_stays_exact_and_reduces_cost():
    config = GeneratorConfig(event_rate=1_500.0, duration_s=6.0, seed=14)
    streams = workload([1, 2], config)
    fixed_bad = QuantileQuery(q=0.5, gamma=2, adaptive=False)
    adaptive = QuantileQuery(q=0.5, gamma=2, adaptive=True)
    report_bad = DemaEngine(
        fixed_bad, TopologyConfig(n_local_nodes=2)
    ).run(streams)
    report_adaptive = DemaEngine(
        adaptive, TopologyConfig(n_local_nodes=2)
    ).run(streams)

    truth = ground_truth_per_window(streams, 1000, 0.5)
    for outcome in report_adaptive.outcomes:
        assert outcome.value == truth[outcome.window]
    # Adaptivity converges to a far cheaper gamma than the pathological fix.
    assert (
        report_adaptive.network.total_bytes < report_bad.network.total_bytes / 2
    )
    late_gammas = [o.gamma_used for o in report_adaptive.outcomes[2:]]
    assert all(g > 2 for g in late_gammas)


def test_half_second_windows():
    config = GeneratorConfig(event_rate=1_000.0, duration_s=2.0, seed=15)
    streams = workload([1, 2], config)
    query = QuantileQuery(q=0.5, window_length_ms=500, gamma=20)
    engine = DemaEngine(query, TopologyConfig(n_local_nodes=2))
    report = engine.run(streams)
    truth = ground_truth_per_window(streams, 500, 0.5)
    assert len(report.outcomes) == 4
    for outcome in report.outcomes:
        assert outcome.value == truth[outcome.window]


def test_network_cost_scales_with_synopses_not_events():
    small = GeneratorConfig(event_rate=1_000.0, duration_s=2.0, seed=16)
    large = GeneratorConfig(event_rate=4_000.0, duration_s=2.0, seed=16)
    query = QuantileQuery(q=0.5, gamma=100)

    def dema_bytes(config):
        streams = workload([1, 2], config)
        engine = DemaEngine(query, TopologyConfig(n_local_nodes=2))
        return engine.run(streams).network.total_bytes

    small_bytes = dema_bytes(small)
    large_bytes = dema_bytes(large)
    # 4x the events must cost far less than 4x the bytes (synopses dominate).
    assert large_bytes < 3 * small_bytes
