"""Cross-system integration: the paper's comparative claims hold end-to-end."""

import pytest

from repro.bench.generator import GeneratorConfig, workload
from repro.bench.harness import capacity_estimate, measure_latency, run_workload
from repro.bench.workloads import bench_topology, median_query

TOPO = bench_topology(2)
QUERY = median_query(gamma=50)


@pytest.fixture(scope="module")
def streams():
    config = GeneratorConfig(event_rate=2_000.0, duration_s=3.0, seed=21)
    return workload([1, 2], config)


@pytest.fixture(scope="module")
def reports(streams):
    return {
        name: run_workload(name, QUERY, TOPO, streams)
        for name in ("dema", "scotty", "desis", "tdigest")
    }


class TestResultAgreement:
    def test_exact_systems_identical(self, reports):
        def keyed(report):
            return {o.window: o.value for o in report.outcomes}

        assert keyed(reports["dema"]) == keyed(reports["scotty"])
        assert keyed(reports["desis"]) == keyed(reports["scotty"])

    def test_tdigest_within_tolerance(self, reports):
        truth = {o.window: o.value for o in reports["scotty"].outcomes}
        for outcome in reports["tdigest"].outcomes:
            assert outcome.value == pytest.approx(
                truth[outcome.window], rel=0.03
            )

    def test_window_sizes_agree(self, reports):
        sizes = {
            name: sorted(
                (o.window, o.global_window_size) for o in report.outcomes
            )
            for name, report in reports.items()
        }
        assert sizes["dema"] == sizes["scotty"] == sizes["desis"]


class TestNetworkClaims:
    def test_dema_reduces_network_dramatically(self, reports):
        assert (
            reports["dema"].network.total_bytes
            < 0.15 * reports["scotty"].network.total_bytes
        )

    def test_desis_ships_everything(self, reports):
        assert reports["desis"].network.total_bytes == pytest.approx(
            reports["scotty"].network.total_bytes, rel=0.05
        )

    def test_tdigest_cheapest(self, reports):
        assert (
            reports["tdigest"].network.total_bytes
            < reports["dema"].network.total_bytes
        )

    def test_root_ingress_dominates_centralized_cost(self, reports):
        scotty = reports["scotty"].network
        assert scotty.bytes_into(0) > 0.95 * scotty.total_bytes


class TestPerformanceClaims:
    def test_throughput_ordering(self):
        estimates = {
            name: capacity_estimate(name, QUERY, TOPO).aggregate_rate
            for name in ("dema", "scotty", "desis", "tdigest")
        }
        assert (
            estimates["tdigest"]
            > estimates["dema"]
            > estimates["desis"]
            > estimates["scotty"]
        )

    def test_latency_ordering_at_common_rate(self):
        latencies = {
            name: measure_latency(name, QUERY, TOPO, 700.0, n_windows=6).p50
            for name in ("dema", "scotty", "desis", "tdigest")
        }
        assert latencies["scotty"] > latencies["desis"]
        assert latencies["desis"] > latencies["dema"]
        # Dema and t-digest are both far below the centralized systems and
        # within jitter of each other at moderate rates; require only that
        # t-digest is not meaningfully slower.
        assert latencies["tdigest"] <= 1.2 * latencies["dema"]
