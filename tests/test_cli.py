"""Tests for the package CLI (python -m repro)."""

import pytest

from repro.__main__ import main


class TestInfo:
    def test_lists_systems_and_experiments(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in ("dema", "scotty", "desis", "tdigest", "qdigest"):
            assert name in out
        assert "fig5a" in out
        assert "Figure 8b" in out


class TestQuantile:
    def test_defaults(self, capsys):
        assert main(["quantile"]) == 0
        out = capsys.readouterr().out
        assert "value" in out
        assert "rank" in out

    def test_parameters_respected(self, capsys):
        assert main([
            "quantile", "--q", "0.25", "--nodes", "2",
            "--events-per-node", "100", "--gamma", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "q=0.25 over 2 nodes" in out
        assert "/ 200" in out

    def test_deterministic_per_seed(self, capsys):
        main(["quantile", "--seed", "5"])
        first = capsys.readouterr().out
        main(["quantile", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second


class TestDemo:
    def test_runs_end_to_end(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact" in out
        assert "adaptive" in out
        assert "network" in out


class TestExperiments:
    def test_forwards_to_runner(self, capsys):
        assert main(["experiments", "fig7b"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7b" in out


class TestTrace:
    def test_list_scenarios(self, capsys):
        assert main(["trace", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("quickstart", "adaptive", "lossy", "sensors"):
            assert name in out

    def test_trace_writes_all_formats(self, capsys, tmp_path):
        jsonl = tmp_path / "run.trace.jsonl"
        chrome = tmp_path / "run.trace.json"
        prom = tmp_path / "run.prom"
        assert main([
            "trace", "quickstart", "-o", str(jsonl),
            "--chrome", str(chrome), "--metrics", str(prom), "--report",
        ]) == 0
        out = capsys.readouterr().out
        assert jsonl.exists() and chrome.exists() and prom.exists()
        assert "Per-window latency breakdown" in out
        assert "NO" not in out  # every window's phases sum to its latency

    def test_unknown_scenario_rejected(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["trace", "frobnicate", "-o", str(tmp_path / "x.jsonl")])


class TestReport:
    def test_report_round_trip(self, capsys, tmp_path):
        jsonl = tmp_path / "run.trace.jsonl"
        main(["trace", "quickstart", "-o", str(jsonl)])
        capsys.readouterr()
        assert main(["report", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "Span phases" in out
        assert "Network traffic" in out
        assert "synopsis_wait" in out


class TestReportErrors:
    def test_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "trace file not found" in err

    def test_corrupt_file_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert main(["report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "not a valid JSONL trace" in err

    def test_directory_fails_cleanly(self, capsys, tmp_path):
        assert main(["report", str(tmp_path)]) == 2
        assert "directory" in capsys.readouterr().err

    def test_report_output_is_deterministic(self, capsys, tmp_path):
        jsonl = tmp_path / "run.trace.jsonl"
        main(["trace", "lossy", "-o", str(jsonl)])
        capsys.readouterr()
        assert main(["report", str(jsonl)]) == 0
        first = capsys.readouterr().out
        assert main(["report", str(jsonl)]) == 0
        assert capsys.readouterr().out == first


class TestQuery:
    def test_small_run_grades_and_writes_artifact(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_queries.json"
        assert main([
            "query", "--queries", "2", "--keys", "1", "--locals", "2",
            "--streams", "1", "--rate", "200", "--duration", "2",
            "--transport", "memory", "--bench", "--bench-output", str(out),
        ]) == 0
        captured = capsys.readouterr().out
        assert "2 queries registered" in captured
        assert "bit-identical" in captured
        artifact = json.loads(out.read_text())
        assert artifact["benchmark"] == "multi_query_plane"
        assert artifact["shared_run"]["mismatches"] == 0
        assert artifact["independent_runs"]["runs"] == 2
        # Serving both queries together must not cost more bytes than
        # two separate deployments.
        assert artifact["amortization"]["total_bytes_ratio"] < 1.0


class TestMesh:
    def test_sharded_relay_run_with_membership(self, capsys):
        assert main([
            "mesh", "--locals", "4", "--shards", "2", "--relay-fanin", "2",
            "--rate", "120", "--duration", "4",
            "--join", "5@2000", "--leave", "2@3000",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 root shards" in out
        assert "relay fan-in 2" in out
        assert "members now (1, 3, 4, 5)" in out
        assert "0 mismatched" in out
        assert "relay-combined frames" in out

    def test_bench_writes_scale_artifact(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_scale.json"
        assert main([
            "mesh", "--locals", "2", "--shards", "2", "--rate", "60",
            "--duration", "2", "--bench", "--bench-output", str(out),
        ]) == 0
        artifact = json.loads(out.read_text())
        assert artifact["benchmark"] == "mesh_scale"
        assert [p["n_locals"] for p in artifact["curve"]] == [2, 10, 50, 100]
        for point in artifact["curve"]:
            assert point["relay"]["root_link_frames"] \
                < point["flat"]["root_link_frames"]
            assert point["relay"]["root_ingress_bytes"] \
                < point["flat"]["root_ingress_bytes"]

    def test_malformed_membership_flag_rejected(self):
        with pytest.raises(SystemExit):
            main(["mesh", "--join", "five@soon"])


class TestLiveTelemetryFlags:
    def test_live_run_reports_telemetry(self, capsys):
        assert main([
            "live", "--rate", "500", "--duration", "1",
            "--transport", "memory", "--telemetry-port", "0",
        ]) == 0
        captured = capsys.readouterr()
        assert "telemetry:" in captured.out
        assert "live spans traced" in captured.out
        assert "telemetry endpoint: http://127.0.0.1:" in captured.err


class TestTop:
    def test_unreachable_endpoint_fails_cleanly(self, capsys):
        # A port nothing listens on: urllib fails fast with ECONNREFUSED.
        assert main(["top", "--port", "1", "--once"]) == 1
        assert "cannot fetch" in capsys.readouterr().err


class TestChaos:
    def test_list_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("crash-reconnect", "dead-local", "flaky-link",
                     "partition"):
            assert name in out

    def test_sim_run_reports_window_grades(self, capsys):
        assert main(["chaos", "--scenario", "dead-local", "--mode", "sim",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "crash local" in out
        assert "recovered" in out and "degraded" in out
        assert "locals declared dead" in out

    def test_unknown_scenario_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown"):
            main(["chaos", "--scenario", "asteroid", "--mode", "sim"])


class TestParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestPerf:
    @pytest.fixture
    def tiny_configs(self, monkeypatch):
        from repro.bench import hotpath

        tiny = hotpath.HotpathConfig(
            ingest_events=300, slice_events=300, gamma=10,
            merge_digests=2, merge_values_per_digest=40,
            codec_batch=8, codec_rounds=2, repeats=1,
        )
        monkeypatch.setattr(hotpath, "FULL", tiny)
        monkeypatch.setattr(hotpath, "SMOKE", tiny)
        return tiny

    def test_writes_artifact_without_baseline(
        self, capsys, tmp_path, tiny_configs
    ):
        from repro.bench.hotpath import load_artifact

        out = str(tmp_path / "bench.json")
        assert main([
            "perf", "--no-live", "-o", out,
            "--baseline", str(tmp_path / "absent.json"),
        ]) == 0
        artifact = load_artifact(out)
        assert artifact["mode"] == "full"
        assert all(rate > 0 for rate in artifact["current"].values())
        assert "no baseline artifact" in capsys.readouterr().out

    def test_smoke_gates_against_baseline(
        self, capsys, tmp_path, tiny_configs
    ):
        from repro.bench.hotpath import load_artifact, write_hotpath

        baseline_path = str(tmp_path / "committed.json")
        out = str(tmp_path / "bench.json")
        # An unreachable smoke baseline must fail the smoke gate ...
        impossible = {"ingest_sort_events_per_s": 1e15}
        write_hotpath(
            baseline_path, tiny_configs, impossible,
            {"baseline_smoke": impossible},
        )
        assert main([
            "perf", "--smoke", "--no-live", "-o", out,
            "--baseline", baseline_path,
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # ... and a trivially low one must pass.
        easy = {"ingest_sort_events_per_s": 1e-6}
        write_hotpath(
            baseline_path, tiny_configs, easy,
            {"baseline_smoke": easy},
        )
        assert main([
            "perf", "--smoke", "--no-live", "-o", out,
            "--baseline", baseline_path,
        ]) == 0
        assert "no hot-path regressions" in capsys.readouterr().out
        assert load_artifact(out)["baseline_smoke"] == easy

    def test_smoke_gates_against_smoke_baseline_only(
        self, capsys, tmp_path, tiny_configs
    ):
        """A smoke run is judged by (and preserves) the per-mode baselines.

        The full baseline can be unreachable without tripping the smoke
        gate, and a smoke run's artifact rewrite must carry the full
        baseline through untouched instead of clobbering it with smoke
        numbers.
        """
        from repro.bench.hotpath import load_artifact, write_hotpath

        baseline_path = str(tmp_path / "committed.json")
        out = str(tmp_path / "bench.json")
        impossible_full = {"ingest_sort_events_per_s": 1e15}
        easy_smoke = {"ingest_sort_events_per_s": 1e-6}
        write_hotpath(
            baseline_path, tiny_configs, easy_smoke,
            {"baseline": impossible_full, "baseline_smoke": easy_smoke},
            mode="smoke",
        )
        assert main([
            "perf", "--smoke", "--no-live", "-o", out,
            "--baseline", baseline_path,
        ]) == 0
        assert "no hot-path regressions" in capsys.readouterr().out
        artifact = load_artifact(out)
        assert artifact["baseline"] == impossible_full
        assert artifact["baseline_smoke"] == easy_smoke

    def test_full_run_ignores_smoke_baseline(self, tmp_path, tiny_configs):
        from repro.bench.hotpath import load_artifact, write_hotpath

        baseline_path = str(tmp_path / "committed.json")
        out = str(tmp_path / "bench.json")
        full = {"ingest_sort_events_per_s": 1e-6}
        smoke = {"ingest_sort_events_per_s": 123.0}
        write_hotpath(
            baseline_path, tiny_configs, full,
            {"baseline": full, "baseline_smoke": smoke},
        )
        assert main([
            "perf", "--no-live", "-o", out, "--baseline", baseline_path,
        ]) == 0
        artifact = load_artifact(out)
        # Speedup is computed against the full baseline, and both
        # baselines survive the rewrite.
        assert "ingest_sort_events_per_s" in artifact["speedup"]
        assert artifact["speedup"]["ingest_sort_events_per_s"] > 1.0
        assert artifact["baseline_smoke"] == smoke

    def test_curve_writes_scaling_artifact(
        self, monkeypatch, tmp_path, tiny_configs
    ):
        import json

        from repro.bench import scaling

        calls = []

        def fake_curve(**kwargs):
            calls.append(kwargs)
            return [
                {"n_locals": n, "events_per_second": 1000.0 * n}
                for n in kwargs["locals_counts"]
            ]

        monkeypatch.setattr(scaling, "scaling_curve", fake_curve)
        out = str(tmp_path / "bench.json")
        curve_out = str(tmp_path / "scaling.json")
        assert main([
            "perf", "--smoke", "--no-live", "-o", out,
            "--baseline", str(tmp_path / "absent.json"),
            "--curve", "--curve-output", curve_out,
        ]) == 0
        assert calls and calls[0]["locals_counts"] == scaling.SMOKE_LOCALS
        with open(curve_out) as handle:
            artifact = json.load(handle)
        assert artifact["benchmark"] == "scaling_curve"
        assert [p["n_locals"] for p in artifact["points"]] == list(
            scaling.SMOKE_LOCALS
        )
