"""Lint: marked hot-path modules must never construct ``Event`` objects.

The columnar refactor's whole payoff is that event batches cross the
stream → local → root pipeline as parallel arrays; a single stray
``Event(...)`` constructor in one of these modules silently reintroduces
the per-event allocation the refactor removed, and nothing else would
catch it (the bit-identity suite compares *results*, not allocation
counts).  Every module that opts into the discipline carries a
``Hot-path module:`` marker comment naming this test; the lint walks the
whole package so a marked module can never silently drop out of the
checked set by being moved.
"""

import pathlib
import re

import repro

MARKER = "Hot-path module:"

#: ``Event(`` as a constructor call: not attribute-qualified (so
#: ``asyncio.Event()`` stays legal) and not a prefix of a longer name
#: (``EventColumns(``, ``EventBatchMessage(``).
EVENT_CALL = re.compile(r"(?<![A-Za-z0-9_.])Event\(")

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent

#: The modules expected to carry the marker today; the lint fails if one
#: loses it, so the discipline cannot be turned off by deleting a comment.
EXPECTED_MARKED = {
    "core/local_node.py",
    "core/slicing.py",
    "core/sorted_window.py",
    "runtime/codec.py",
    "runtime/servers.py",
    "runtime/transport.py",
}


def _marked_modules():
    return {
        path.relative_to(PACKAGE_ROOT).as_posix(): path
        for path in sorted(PACKAGE_ROOT.rglob("*.py"))
        if MARKER in path.read_text()
    }


def test_expected_modules_are_marked():
    assert set(_marked_modules()) == EXPECTED_MARKED


def test_no_event_construction_in_hot_path_modules():
    violations = []
    for name, path in _marked_modules().items():
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if EVENT_CALL.search(line):
                violations.append(f"{name}:{lineno}: {line.strip()}")
    assert not violations, (
        "Event objects constructed in hot-path modules:\n"
        + "\n".join(violations)
    )


def test_lint_regex_matches_constructor_calls_only():
    assert EVENT_CALL.search("event = Event(value=1.0)")
    assert EVENT_CALL.search("return [Event(*t) for t in rows]")
    assert not EVENT_CALL.search("self.done = asyncio.Event()")
    assert not EVENT_CALL.search("cols = EventColumns.from_wire(raw)")
    assert not EVENT_CALL.search("msg = EventBatchMessage(1, w)")
