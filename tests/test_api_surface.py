"""Release hygiene: the public API surface is importable and documented."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.streaming",
    "repro.network",
    "repro.sketches",
    "repro.baselines",
    "repro.bench",
    "repro.obs",
    "repro.faults",
    "repro.queries",
]

MODULES = [
    "repro.errors",
    "repro.testing",
    "repro.core.synopsis",
    "repro.core.sorted_window",
    "repro.core.slicing",
    "repro.core.units",
    "repro.core.window_cut",
    "repro.core.identification",
    "repro.core.calculation",
    "repro.core.adaptive",
    "repro.core.query",
    "repro.core.local_node",
    "repro.core.root_node",
    "repro.core.engine",
    "repro.core.multi",
    "repro.core.concurrent",
    "repro.core.reliability",
    "repro.streaming.events",
    "repro.streaming.time",
    "repro.streaming.windows",
    "repro.streaming.aggregates",
    "repro.streaming.operators",
    "repro.network.messages",
    "repro.network.channels",
    "repro.network.simulator",
    "repro.network.topology",
    "repro.network.metrics",
    "repro.network.driver",
    "repro.network.sources",
    "repro.sketches.scale_functions",
    "repro.sketches.tdigest",
    "repro.sketches.qdigest",
    "repro.sketches.kll",
    "repro.baselines.base",
    "repro.baselines.scotty",
    "repro.baselines.desis",
    "repro.baselines.tdigest_system",
    "repro.baselines.qdigest_system",
    "repro.baselines.kll_system",
    "repro.baselines.partial",
    "repro.bench.generator",
    "repro.bench.workloads",
    "repro.bench.harness",
    "repro.bench.accuracy",
    "repro.bench.reporting",
    "repro.bench.charts",
    "repro.bench.model",
    "repro.bench.sweep",
    "repro.bench.runner",
    "repro.bench.queries",
    "repro.queries.spec",
    "repro.queries.slide",
    "repro.queries.registry",
    "repro.queries.local",
    "repro.queries.root",
    "repro.queries.client",
    "repro.queries.oracle",
    "repro.queries.runner",
    "repro.obs.events",
    "repro.obs.tracer",
    "repro.obs.metrics",
    "repro.obs.export",
    "repro.obs.report",
    "repro.obs.scenarios",
    "repro.faults.plan",
    "repro.faults.scenarios",
    "repro.faults.chaos",
    "repro.faults.simulate",
    "repro.faults.runner",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
class TestModules:
    def test_importable_with_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        for exported in getattr(module, "__all__", []):
            assert hasattr(module, exported), f"{name}.__all__: {exported}"


class TestTopLevel:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_every_top_level_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_catching_base_covers_library_failures(self):
        from repro import ReproError, dema_quantile

        with pytest.raises(ReproError):
            dema_quantile({}, q=0.5, gamma=2)
