"""Shared-cut execution: one sweep, N queries, per-query-identical plans.

The root resolves every query of a (key, window) group from one
identification pass.  The amortization is only legal because the shared
pass is *observationally identical* to running each query alone — these
tests pin that equivalence at both layers (``window_cut_multi`` vs
``window_cut``, ``identify_multi`` vs ``identify``) and check the fetch
plan is the exact union of the per-query plans.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.calculation import calculate_quantile
from repro.core.identification import identify, identify_multi
from repro.core.slicing import slice_sorted_events
from repro.core.window_cut import window_cut, window_cut_multi
from repro.streaming.aggregates import quantile_rank
from repro.streaming.events import event_key, make_events


def sliced_nodes(seed, n_nodes=3, per_node=120, gamma=7):
    rng = random.Random(seed)
    nodes = {}
    for node_id in range(1, n_nodes + 1):
        values = [rng.gauss(25.0 * node_id, 30.0) for _ in range(per_node)]
        events = sorted(make_events(values, node_id=node_id), key=event_key)
        nodes[node_id] = slice_sorted_events(events, gamma, node_id)
    return nodes


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    qs=st.lists(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        min_size=1, max_size=6,
    ),
)
def test_window_cut_multi_matches_per_rank_window_cut(seed, qs):
    nodes = sliced_nodes(seed)
    synopses = [s for sliced in nodes.values() for s in sliced.synopses]
    total = sum(sliced.window_size for sliced in nodes.values())
    ranks = sorted({quantile_rank(q, total) for q in qs})
    multi = window_cut_multi(synopses, ranks, global_window_size=total)
    assert set(multi) == set(ranks)
    for rank in ranks:
        single = window_cut(synopses, rank, global_window_size=total)
        shared = multi[rank]
        assert shared.candidates == single.candidates
        assert shared.n_below == single.n_below
        assert shared.kinds == single.kinds


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    qs=st.lists(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        min_size=1, max_size=5,
    ),
)
def test_identify_multi_matches_identify_per_query(seed, qs):
    nodes = sliced_nodes(seed)
    batches = {n: s.synopses for n, s in nodes.items()}
    sizes = {n: s.window_size for n, s in nodes.items()}
    multi = identify_multi(batches, sizes, qs)
    union: dict[int, set[int]] = {}
    for q in multi.qs:
        single = identify(batches, sizes, q)
        assert multi.cuts[q].candidates == single.cut.candidates
        assert multi.cuts[q].n_below == single.cut.n_below
        for node_id, indices in single.requests.items():
            union.setdefault(node_id, set()).update(indices)
    # The shared fetch plan is exactly the union of the solo plans: a
    # slice two quantiles both need is requested once, nothing extra.
    assert multi.requests == {
        node_id: tuple(sorted(indices))
        for node_id, indices in union.items()
    }


def test_shared_calculation_matches_solo_answers():
    # End to end over the core: answer every quantile from the ONE shared
    # fetch, and compare against running the whole protocol per query.
    nodes = sliced_nodes(seed=99)
    batches = {n: s.synopses for n, s in nodes.items()}
    sizes = {n: s.window_size for n, s in nodes.items()}
    qs = [0.1, 0.25, 0.5, 0.9, 0.99, 1.0]
    multi = identify_multi(batches, sizes, qs)
    shared_runs = {
        (node_id, index): nodes[node_id].run_for(index)
        for node_id, indices in multi.requests.items()
        for index in indices
    }
    for q in qs:
        solo = identify(batches, sizes, q)
        solo_runs = [
            nodes[node_id].run_for(index)
            for node_id, indices in solo.requests.items()
            for index in indices
        ]
        wanted = {s.slice_id for s in multi.cuts[q].candidates}
        shared_value = calculate_quantile(
            multi.cuts[q],
            [run for key, run in shared_runs.items() if key in wanted],
        ).value
        assert shared_value == calculate_quantile(solo.cut, solo_runs).value


def test_candidate_events_dedupes_across_cuts():
    nodes = sliced_nodes(seed=4)
    batches = {n: s.synopses for n, s in nodes.items()}
    sizes = {n: s.window_size for n, s in nodes.items()}
    # Two almost-equal quantiles share their candidate slices almost
    # entirely; the union accounting must not double charge them.
    multi = identify_multi(batches, sizes, [0.5, 0.5000001])
    per_cut = sum(c.candidate_events for c in multi.cuts.values())
    assert multi.candidate_events <= per_cut
