"""QuerySpec validation, selector grammar and window arithmetic."""

import math

import pytest

from repro.errors import QueryError
from repro.queries.spec import QuerySpec, parse_selector
from repro.streaming.events import Event


def event(seq=0, node_id=1):
    return Event(value=1.0, timestamp=0, node_id=node_id, seq=seq)


class TestValidation:
    def test_nan_q_rejected(self):
        with pytest.raises(QueryError, match="NaN"):
            QuerySpec(q=float("nan"))

    @pytest.mark.parametrize("q", [0.0, -0.5, 1.0001, float("inf")])
    def test_q_outside_unit_interval_rejected(self, q):
        with pytest.raises(QueryError, match="quantile q"):
            QuerySpec(q=q)

    def test_q_one_is_the_maximum_and_legal(self):
        assert QuerySpec(q=1.0).q == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError, match="window kind"):
            QuerySpec(kind="hopping")

    @pytest.mark.parametrize("length_ms", [0, -1000])
    def test_nonpositive_length_rejected(self, length_ms):
        with pytest.raises(QueryError, match="length"):
            QuerySpec(length_ms=length_ms)

    def test_nonpositive_step_rejected(self):
        with pytest.raises(QueryError, match="step"):
            QuerySpec(kind="sliding", length_ms=1000, step_ms=0)

    def test_tumbling_step_must_equal_length(self):
        with pytest.raises(QueryError, match="tumbling"):
            QuerySpec(kind="tumbling", length_ms=1000, step_ms=500)

    def test_tumbling_with_matching_explicit_step_allowed(self):
        spec = QuerySpec(kind="tumbling", length_ms=1000, step_ms=1000)
        assert spec.step == 1000

    def test_gap_steps_are_legal_sliding(self):
        # step > length: windows with gaps between them.
        spec = QuerySpec(kind="sliding", length_ms=500, step_ms=2000)
        assert spec.step == 2000
        assert not spec.is_sliding  # no overlap
        assert spec.pane_ms == math.gcd(500, 2000)

    def test_session_kind_is_representable(self):
        # The live plane nacks sessions at registration, but the spec
        # itself (and the wire) must carry them.
        assert QuerySpec(kind="session").kind == "session"

    def test_small_gamma_rejected(self):
        with pytest.raises(QueryError, match="gamma"):
            QuerySpec(gamma=1)

    def test_negative_freshness_rejected(self):
        with pytest.raises(QueryError, match="freshness"):
            QuerySpec(freshness_ms=-1)

    @pytest.mark.parametrize(
        "selector",
        ["", "everything", "node:", "node:x", "node:-1", "mod:0:0",
         "mod:3:3", "mod:3:-1", "mod:a:b", "mod:3", "κλειδί"],
    )
    def test_bad_selectors_rejected(self, selector):
        with pytest.raises(QueryError):
            QuerySpec(selector=selector)


class TestSelectors:
    def test_all_matches_everything(self):
        assert parse_selector("all")(event(seq=123, node_id=9))

    def test_node_selector(self):
        predicate = parse_selector("node:2")
        assert predicate(event(node_id=2))
        assert not predicate(event(node_id=3))

    def test_mod_selector(self):
        predicate = parse_selector("mod:3:1")
        assert [predicate(event(seq=s)) for s in range(6)] == [
            False, True, False, False, True, False,
        ]


class TestWindowArithmetic:
    def test_step_resolves_to_length_for_tumbling(self):
        assert QuerySpec(length_ms=700).step == 700

    def test_is_sliding_only_with_overlap(self):
        assert QuerySpec(kind="sliding", length_ms=1000, step_ms=500).is_sliding
        assert not QuerySpec(
            kind="sliding", length_ms=1000, step_ms=1000
        ).is_sliding

    def test_pane_is_gcd_of_length_and_step(self):
        spec = QuerySpec(kind="sliding", length_ms=1000, step_ms=600)
        assert spec.pane_ms == 200

    def test_shape_groups_equal_execution(self):
        a = QuerySpec(q=0.5, kind="sliding", length_ms=1000, step_ms=500)
        b = QuerySpec(q=0.99, kind="sliding", length_ms=1000, step_ms=500)
        assert a.shape == b.shape  # q is NOT part of the shape
        c = QuerySpec(q=0.5, kind="sliding", length_ms=1000, step_ms=250)
        assert a.shape != c.shape

    def test_window_starts_align_to_step_grid(self):
        spec = QuerySpec(kind="sliding", length_ms=1000, step_ms=500)
        # start_from 700 ceil-aligns to 1000; windows must end <= 3000.
        assert spec.window_starts(700, 3000) == [1000, 1500, 2000]

    def test_window_starts_empty_when_no_window_fits(self):
        spec = QuerySpec(length_ms=1000)
        assert spec.window_starts(0, 999) == []

    def test_describe_mentions_the_shape(self):
        text = QuerySpec(
            q=0.9, kind="sliding", length_ms=1000, step_ms=250
        ).describe()
        assert "0.9" in text and "every 250 ms" in text
