"""Shared-slice sliding windows: bit-identity against the naive recompute.

The aggregator substitutes an amortized two-stack merge structure for a
full per-window sort; these tests check the substitution is invisible —
every window's run is **bit-identical** (same objects in the same order)
to sorting the window's events from scratch — across overlap, tumbling
degeneration and gap configurations, including a full hypothesis sweep
over random streams and window shapes.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError
from repro.queries.slide import PaneStore, SlidingRunAggregator, merge_runs
from repro.streaming.events import Event, event_key


def make_stream(n, *, span_ms, seed, n_nodes=3):
    rng = random.Random(seed)
    return [
        Event(
            value=rng.gauss(50.0, 20.0),
            timestamp=rng.randrange(span_ms),
            node_id=rng.randrange(1, n_nodes + 1),
            seq=seq,
        )
        for seq in range(n)
    ]


def naive_window_run(events, start, length):
    """The reference: filter the window, sort from scratch."""
    inside = [e for e in events if start <= e.timestamp < start + length]
    return tuple(sorted(inside, key=event_key))


def windows_via_aggregator(events, *, length, step, horizon):
    """Drive PaneStore + SlidingRunAggregator over the whole stream."""
    pane_ms = math.gcd(length, step)
    store = PaneStore(pane_ms)
    for e in events:
        store.add(e)
    aggregator = SlidingRunAggregator()
    runs = {}
    next_pane = 0
    for start in range(0, horizon - length + 1, step):
        while aggregator.covered and aggregator.covered[0] < start:
            aggregator.evict()
        while next_pane < start + length:
            if next_pane >= start:
                aggregator.push(next_pane, store.sealed_run(next_pane))
            next_pane += pane_ms
        runs[start] = aggregator.query()
    return runs


@pytest.mark.parametrize(
    "length,step",
    [(1000, 500), (1000, 250), (900, 600), (1000, 1000), (500, 2000)],
    ids=["half-overlap", "quarter-overlap", "gcd-300", "tumbling", "gaps"],
)
def test_bit_identical_to_naive_recompute(length, step):
    events = make_stream(600, span_ms=6000, seed=13)
    runs = windows_via_aggregator(events, length=length, step=step,
                                  horizon=6000)
    assert runs  # the shape must actually produce windows
    for start, run in runs.items():
        assert run == naive_window_run(events, start, length)


def test_slide_equals_size_is_bit_identical_to_tumbling():
    # slide == size must degenerate to tumbling exactly: same runs, and
    # no merge ever happens across pane boundaries beyond the single pane.
    events = make_stream(400, span_ms=4000, seed=7)
    sliding = windows_via_aggregator(events, length=1000, step=1000,
                                     horizon=4000)
    tumbling = {
        start: naive_window_run(events, start, 1000)
        for start in range(0, 3001, 1000)
    }
    assert sliding == tumbling


def test_gap_windows_skip_uncovered_events():
    # step > length: panes between windows are never pushed, and events
    # there never appear in any run.
    events = make_stream(500, span_ms=8000, seed=3)
    runs = windows_via_aggregator(events, length=500, step=2000,
                                  horizon=8000)
    covered = set()
    for start, run in runs.items():
        assert run == naive_window_run(events, start, 500)
        covered.update(id(e) for e in run)
    in_gaps = [
        e for e in events
        if (e.timestamp % 2000) >= 500 and id(e) not in covered
    ]
    assert in_gaps  # the workload really had gap events
    for e in in_gaps:
        assert all(e not in run for run in runs.values())


def test_late_event_in_overlap_lands_in_both_windows():
    # Two overlapping windows [0, 1000) and [500, 1500) share the pane
    # [500, 1000).  An event arriving late — after earlier panes were
    # already sealed, but before ITS pane seals — must appear in both
    # windows' runs, in exact sort position.
    store = PaneStore(500)
    on_time = [
        Event(value=float(i), timestamp=i * 90, node_id=1, seq=i)
        for i in range(15)
    ]
    for e in on_time:
        store.add(e)
    store.sealed_run(0)  # pane [0, 500) seals first
    late = Event(value=-1.0, timestamp=700, node_id=2, seq=99)
    store.add(late)  # late, but its pane [500, 1000) is still open
    assert store.late_dropped == 0

    events = on_time + [late]
    first = merge_runs(store.sealed_run(0), store.sealed_run(500))
    assert first == naive_window_run(events, 0, 1000)
    assert late in first
    second = merge_runs(store.sealed_run(500), store.sealed_run(1000))
    assert second == naive_window_run(events, 500, 1000)
    assert late in second


def test_event_late_past_the_seal_is_dropped_and_counted():
    store = PaneStore(500)
    store.add(Event(value=1.0, timestamp=100, node_id=1, seq=0))
    sealed = store.sealed_run(0)
    store.add(Event(value=2.0, timestamp=200, node_id=1, seq=1))
    assert store.late_dropped == 1
    assert store.sealed_run(0) == sealed  # the cached run is immutable


def test_pane_store_prune_drops_old_panes_only():
    store = PaneStore(500)
    for ts in (100, 600, 1100):
        store.add(Event(value=1.0, timestamp=ts, node_id=1, seq=ts))
    store.sealed_run(0)
    store.prune_before(1000)
    assert store.sealed_run(0) == ()   # pruned (open AND sealed)
    assert store.sealed_run(500) == () # pruned while still open
    assert len(store.sealed_run(1000)) == 1


def test_push_out_of_order_rejected():
    aggregator = SlidingRunAggregator()
    aggregator.push(1000, ())
    with pytest.raises(QueryError, match="ascending order"):
        aggregator.push(500, ())


def test_evict_from_empty_rejected():
    with pytest.raises(QueryError, match="empty"):
        SlidingRunAggregator().evict()


def test_amortized_merges_beat_recompute_work():
    # The work metric (events touched by merges) must grow like
    # O(n · length/step) rather than the naive Θ(windows · window-size
    # · log) resort — just check it stays well below the naive event
    # touches for a heavily overlapping shape.
    events = make_stream(2000, span_ms=10_000, seed=5)
    length, step = 2000, 250
    aggregator_runs = {}
    pane_ms = math.gcd(length, step)
    store = PaneStore(pane_ms)
    for e in events:
        store.add(e)
    aggregator = SlidingRunAggregator()
    naive_touches = 0
    next_pane = 0
    for start in range(0, 10_000 - length + 1, step):
        while aggregator.covered and aggregator.covered[0] < start:
            aggregator.evict()
        while next_pane < start + length:
            if next_pane >= start:
                aggregator.push(next_pane, store.sealed_run(next_pane))
            next_pane += pane_ms
        aggregator_runs[start] = aggregator.query()
        naive_touches += len(aggregator_runs[start])
    # Each query() merges front+back once, so >= one touch per window
    # event is unavoidable; "shared" means we stay within a small factor
    # of that, instead of the sort's extra log factor per window.
    assert aggregator.events_merged < 3 * naive_touches


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=0, max_value=300),
    length_panes=st.integers(min_value=1, max_value=6),
    step_panes=st.integers(min_value=1, max_value=8),
    pane_ms=st.sampled_from([100, 250, 500]),
)
def test_property_any_shape_matches_naive(seed, n, length_panes,
                                          step_panes, pane_ms):
    length = length_panes * pane_ms
    step = step_panes * pane_ms
    span = 10 * pane_ms * max(length_panes, step_panes)
    events = make_stream(n, span_ms=span, seed=seed)
    runs = windows_via_aggregator(events, length=length, step=step,
                                  horizon=span)
    for start, run in runs.items():
        assert run == naive_window_run(events, start, length)
