"""Live multi-query scenarios and the root plane's control paths.

The scenario tests boot a real cluster (memory transport, wire codec,
asyncio servers) and rely on :func:`run_query_scenario`'s built-in
grading: every served result compared bit-identically against the
centralized oracle, plus the shared-cut invariant — one
``query_identification`` span per (group, window) — read back from the
trace.  The registration/nack unit tests drive :class:`RootQueryPlane`
directly, without a cluster.
"""

import pytest

from repro.errors import ConfigurationError
from repro.network.messages import (
    QueryAckMessage,
    QueryRegisterMessage,
)
from repro.obs.tracer import RecordingTracer
from repro.queries.registry import QueryRegistry
from repro.queries.root import RootQueryPlane
from repro.queries.runner import build_specs, run_query_scenario
from repro.queries.spec import CONTROL_WINDOW, QuerySpec


class TestScenarios:
    def test_eight_queries_graded_bit_identical(self):
        report = run_query_scenario(
            n_queries=8, n_keys=3, duration_s=3.0, event_rate=300.0
        )
        assert report.ok, report.mismatches
        assert report.n_registered == 8
        assert report.results_served > 0
        assert report.results_graded == report.results_served
        assert report.duplicate_cuts == 0
        # Queries sharing a shape share a group — fewer groups than
        # queries is the whole point.
        assert report.groups < report.n_registered
        assert report.identification_cuts > 0

    def test_churn_registers_and_deregisters_mid_run(self):
        report = run_query_scenario(
            n_queries=6,
            n_keys=2,
            duration_s=3.0,
            event_rate=300.0,
            time_scale=0.25,
            churn=True,
        )
        assert report.ok, report.mismatches
        assert report.n_registered == 8  # 6 initial + 2 joiners
        assert report.n_deregistered == 3
        assert not report.nacks
        # The joiner into an active group starts at a later horizon than
        # the queries registered before the replay.
        assert max(report.horizons.values()) > min(report.horizons.values())

    def test_churn_without_pacing_rejected(self):
        with pytest.raises(ConfigurationError, match="time_scale"):
            run_query_scenario(churn=True, time_scale=0.0)

    def test_driver_drop_replays_exactly_once(self):
        """A driver severed mid-run redials with its resume cursor and
        still receives every result exactly once: grading checks both
        completeness (at least once) and the duplicate guard (at most
        once) against the per-query oracle."""
        report = run_query_scenario(
            n_queries=4,
            duration_s=4.0,
            event_rate=400.0,
            time_scale=0.05,
            driver_drop=True,
        )
        assert report.ok, report.mismatches
        assert report.driver_reconnects >= 1
        assert report.results_served > 0
        assert report.results_graded == report.results_served

    def test_driver_drop_without_pacing_rejected(self):
        """An unpaced replay bursts every result out before the drop can
        land, so the scenario refuses to pretend it tested anything."""
        with pytest.raises(ConfigurationError, match="time_scale"):
            run_query_scenario(driver_drop=True, time_scale=0.0)

    def test_single_spec_override(self):
        spec = build_specs(1, 1, window_ms=1000, gamma=32)[0]
        report = run_query_scenario(
            specs=[spec], duration_s=2.0, event_rate=200.0
        )
        assert report.ok, report.mismatches
        assert report.n_registered == 1
        assert report.groups == 1


def register_message(query_id, spec, *, sender=9001):
    return QueryRegisterMessage(
        sender=sender,
        window=CONTROL_WINDOW,
        query_id=query_id,
        q=spec.q,
        kind=spec.kind,
        length_ms=spec.length_ms,
        step_ms=spec.step,
        gamma=spec.gamma,
        freshness_ms=spec.freshness_ms,
        selector=spec.selector,
    )


class TestRootPlaneControl:
    def plane(self):
        plane = RootQueryPlane((1, 2), tracer=RecordingTracer())
        plane.on_client_connect(9001)
        return plane

    def acks_to(self, outgoing, client_id):
        return [
            m for dst, m in outgoing
            if dst == client_id and isinstance(m, QueryAckMessage)
        ]

    def test_session_windows_nacked(self):
        plane = self.plane()
        out = plane.on_client_message(
            9001, register_message(1, QuerySpec(kind="session"))
        )
        (ack,) = self.acks_to(out, 9001)
        assert not ack.accepted
        assert "session" in ack.reason
        assert len(plane.registry) == 0

    def test_bad_selector_nacked_with_reason(self):
        plane = self.plane()
        message = QueryRegisterMessage(
            sender=9001, window=CONTROL_WINDOW, query_id=1,
            q=0.5, kind="tumbling", length_ms=1000, step_ms=1000,
            gamma=32, selector="mod:0:0",
        )
        (ack,) = self.acks_to(plane.on_client_message(9001, message), 9001)
        assert not ack.accepted
        assert "modulus" in ack.reason

    def test_duplicate_query_id_same_spec_is_idempotent(self):
        plane = self.plane()
        spec = QuerySpec()
        first = plane.on_client_message(9001, register_message(1, spec))
        # A fresh shape defers the client ack until activation; an exact
        # re-registration (a reconnecting driver replaying its request)
        # stays silent rather than nacking — the eventual activation ack
        # answers both.
        assert not self.acks_to(first, 9001)
        retry = plane.on_client_message(9001, register_message(1, spec))
        assert not self.acks_to(retry, 9001)
        assert len(plane.registry) == 1

    def test_duplicate_query_id_conflicting_spec_nacked(self):
        plane = self.plane()
        plane.on_client_message(9001, register_message(1, QuerySpec()))
        (ack,) = self.acks_to(
            plane.on_client_message(
                9001, register_message(1, QuerySpec(q=0.9))
            ),
            9001,
        )
        assert not ack.accepted
        assert "already registered" in ack.reason

    def test_registration_broadcasts_one_group_per_shape(self):
        plane = self.plane()
        shape = QuerySpec(q=0.5)
        same_shape = QuerySpec(q=0.9)
        first = plane.on_client_message(9001, register_message(1, shape))
        # New shape: one propagated registration per local node.
        propagated = [
            m for _, m in first if isinstance(m, QueryRegisterMessage)
        ]
        assert len(propagated) == 2
        assert len({m.group_id for m in propagated}) == 1
        # Same shape again: joins the negotiating group, no new broadcast.
        second = plane.on_client_message(9001, register_message(2, same_shape))
        assert not [
            m for _, m in second if isinstance(m, QueryRegisterMessage)
        ]
        assert len(plane.registry.groups()) == 1

    def test_client_gone_drops_all_its_queries(self):
        plane = self.plane()
        plane.on_client_message(9001, register_message(1, QuerySpec()))
        plane.on_client_message(9001, register_message(2, QuerySpec(q=0.9)))
        assert len(plane.registry) == 2
        plane.on_client_gone(9001)
        assert len(plane.registry) == 0
        assert not plane.registry.groups()


class TestRegistry:
    def test_register_and_deregister_lifecycle(self):
        registry = QueryRegistry()
        record, group, created = registry.register(1, QuerySpec(), 9001)
        assert created and len(registry) == 1
        _, same_group, created_again = registry.register(
            2, QuerySpec(q=0.75), 9001
        )
        assert not created_again and same_group is group
        assert group.query_ids == [1, 2]
        _, _, emptied = registry.deregister(1)
        assert not emptied
        _, _, emptied = registry.deregister(2)
        assert emptied
        assert len(registry) == 0
