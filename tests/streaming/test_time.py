"""Tests for watermarks and event-time progress tracking."""

import pytest

from repro.errors import ConfigurationError, WindowError
from repro.streaming.time import EventTimeClock, Watermark, WatermarkTracker


class TestWatermark:
    def test_ordering(self):
        assert Watermark(5) < Watermark(6)

    def test_equality(self):
        assert Watermark(5) == Watermark(5)


class TestEventTimeClock:
    def test_no_watermark_before_events(self):
        assert EventTimeClock().current_watermark() is None

    def test_watermark_tracks_max_timestamp(self):
        clock = EventTimeClock()
        clock.observe(10)
        clock.observe(5)
        assert clock.current_watermark() == Watermark(10)

    def test_out_of_orderness_subtracted(self):
        clock = EventTimeClock(max_out_of_orderness=3)
        clock.observe(10)
        assert clock.current_watermark() == Watermark(7)

    def test_max_timestamp_exposed(self):
        clock = EventTimeClock()
        assert clock.max_timestamp is None
        clock.observe(42)
        assert clock.max_timestamp == 42

    def test_negative_out_of_orderness_rejected(self):
        with pytest.raises(ConfigurationError):
            EventTimeClock(max_out_of_orderness=-1)


class TestWatermarkTracker:
    def test_combined_is_minimum(self):
        tracker = WatermarkTracker([1, 2])
        tracker.advance(1, Watermark(10))
        tracker.advance(2, Watermark(7))
        assert tracker.combined() == Watermark(7)

    def test_combined_none_until_all_report(self):
        tracker = WatermarkTracker([1, 2])
        tracker.advance(1, Watermark(10))
        assert tracker.combined() is None

    def test_combined_none_with_no_sources(self):
        assert WatermarkTracker().combined() is None

    def test_register_after_construction(self):
        tracker = WatermarkTracker()
        tracker.register(3)
        assert tracker.sources == frozenset({3})

    def test_unknown_source_rejected(self):
        tracker = WatermarkTracker([1])
        with pytest.raises(WindowError):
            tracker.advance(2, Watermark(5))

    def test_regression_rejected(self):
        tracker = WatermarkTracker([1])
        tracker.advance(1, Watermark(10))
        with pytest.raises(WindowError):
            tracker.advance(1, Watermark(9))

    def test_repeated_same_watermark_allowed(self):
        tracker = WatermarkTracker([1])
        tracker.advance(1, Watermark(10))
        tracker.advance(1, Watermark(10))
        assert tracker.combined() == Watermark(10)

    def test_advance_moves_combined(self):
        tracker = WatermarkTracker([1, 2])
        tracker.advance(1, Watermark(5))
        tracker.advance(2, Watermark(5))
        tracker.advance(1, Watermark(20))
        assert tracker.combined() == Watermark(5)
        tracker.advance(2, Watermark(8))
        assert tracker.combined() == Watermark(8)
