"""Tests for the event model and total-order keys."""

import pytest

from repro.errors import ConfigurationError
from repro.streaming.events import (
    EVENT_WIRE_BYTES,
    Event,
    event_key,
    make_events,
)


class TestEvent:
    def test_key_is_value_node_seq(self):
        event = Event(value=3.5, timestamp=10, node_id=2, seq=7)
        assert event.key == (3.5, 2, 7)

    def test_ordering_by_value(self):
        low = Event(value=1.0, timestamp=0, node_id=0, seq=0)
        high = Event(value=2.0, timestamp=0, node_id=0, seq=1)
        assert low < high
        assert high > low
        assert low <= high
        assert high >= low

    def test_equal_values_break_ties_by_node(self):
        a = Event(value=1.0, timestamp=0, node_id=1, seq=0)
        b = Event(value=1.0, timestamp=0, node_id=2, seq=0)
        assert a < b

    def test_equal_values_and_nodes_break_ties_by_seq(self):
        a = Event(value=1.0, timestamp=0, node_id=1, seq=3)
        b = Event(value=1.0, timestamp=0, node_id=1, seq=4)
        assert a < b

    def test_events_are_frozen(self):
        event = Event(value=1.0, timestamp=0, node_id=0, seq=0)
        with pytest.raises(AttributeError):
            event.value = 2.0

    def test_events_are_hashable(self):
        event = Event(value=1.0, timestamp=0, node_id=0, seq=0)
        assert event in {event}

    def test_wire_bytes_constant(self):
        event = Event(value=1.0, timestamp=0, node_id=0, seq=0)
        assert event.wire_bytes == EVENT_WIRE_BYTES

    def test_event_key_function_matches_property(self):
        event = Event(value=9.0, timestamp=5, node_id=3, seq=11)
        assert event_key(event) == event.key


class TestMakeEvents:
    def test_values_preserved_in_order(self):
        events = make_events([3.0, 1.0, 2.0])
        assert [e.value for e in events] == [3.0, 1.0, 2.0]

    def test_timestamps_evenly_spaced(self):
        events = make_events([1, 2, 3], start_timestamp=100, timestamp_step=5)
        assert [e.timestamp for e in events] == [100, 105, 110]

    def test_sequence_numbers_consecutive(self):
        events = make_events([1, 2, 3], start_seq=10)
        assert [e.seq for e in events] == [10, 11, 12]

    def test_node_id_stamped(self):
        events = make_events([1.0], node_id=9)
        assert events[0].node_id == 9

    def test_values_coerced_to_float(self):
        events = make_events([1, 2])
        assert all(isinstance(e.value, float) for e in events)

    def test_empty_input_gives_empty_list(self):
        assert make_events([]) == []

    def test_negative_step_rejected(self):
        with pytest.raises(ConfigurationError):
            make_events([1.0], timestamp_step=-1)

    def test_zero_step_allowed(self):
        events = make_events([1, 2], timestamp_step=0)
        assert [e.timestamp for e in events] == [0, 0]

    def test_generator_input_accepted(self):
        events = make_events(v for v in (1.0, 2.0))
        assert len(events) == 2

    def test_keys_unique_across_make_events(self):
        events = make_events([1.0] * 100, node_id=1)
        assert len({e.key for e in events}) == 100
