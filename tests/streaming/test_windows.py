"""Tests for window types and assigners."""

import pytest

from repro.errors import ConfigurationError, WindowError
from repro.streaming.events import Event
from repro.streaming.windows import (
    SessionWindows,
    SlidingWindows,
    TumblingWindows,
    Window,
)


class TestWindow:
    def test_length(self):
        assert Window(0, 1000).length == 1000

    def test_contains_half_open(self):
        window = Window(0, 10)
        assert window.contains(0)
        assert window.contains(9)
        assert not window.contains(10)
        assert not window.contains(-1)

    def test_intersects(self):
        assert Window(0, 10).intersects(Window(9, 20))
        assert not Window(0, 10).intersects(Window(10, 20))

    def test_merge_covers_both(self):
        assert Window(0, 10).merge(Window(5, 20)) == Window(0, 20)

    def test_invalid_window_rejected(self):
        with pytest.raises(WindowError):
            Window(10, 10)
        with pytest.raises(WindowError):
            Window(10, 5)

    def test_windows_sort_chronologically(self):
        windows = [Window(20, 30), Window(0, 10), Window(10, 20)]
        assert sorted(windows)[0] == Window(0, 10)


class TestTumblingWindows:
    def test_assigns_single_window(self):
        assigner = TumblingWindows(1000)
        assert assigner.assign(1500) == (Window(1000, 2000),)

    def test_boundary_belongs_to_next_window(self):
        assigner = TumblingWindows(1000)
        assert assigner.window_for(1000) == Window(1000, 2000)
        assert assigner.window_for(999) == Window(0, 1000)

    def test_windows_partition_time(self):
        assigner = TumblingWindows(7)
        for t in range(100):
            window = assigner.window_for(t)
            assert window.contains(t)
            assert window.length == 7

    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigurationError):
            TumblingWindows(0)

    def test_assign_event_uses_timestamp(self):
        assigner = TumblingWindows(10)
        event = Event(value=1.0, timestamp=25, node_id=0, seq=0)
        assert assigner.assign_event(event) == (Window(20, 30),)

    def test_not_merging(self):
        assert not TumblingWindows(10).is_merging


class TestSlidingWindows:
    def test_overlap_count(self):
        assigner = SlidingWindows(length=10, step=5)
        windows = assigner.assign(12)
        assert windows == (Window(5, 15), Window(10, 20))

    def test_every_assigned_window_contains_timestamp(self):
        assigner = SlidingWindows(length=12, step=4)
        for t in range(60):
            for window in assigner.assign(t):
                assert window.contains(t)

    def test_step_equal_length_is_tumbling(self):
        sliding = SlidingWindows(length=10, step=10)
        tumbling = TumblingWindows(10)
        for t in range(50):
            assert sliding.assign(t) == tumbling.assign(t)

    def test_windows_returned_in_chronological_order(self):
        assigner = SlidingWindows(length=10, step=2)
        windows = assigner.assign(9)
        assert list(windows) == sorted(windows)

    def test_step_larger_than_length_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingWindows(length=5, step=6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingWindows(length=0, step=1)
        with pytest.raises(ConfigurationError):
            SlidingWindows(length=5, step=0)


class TestSessionWindows:
    def test_assign_creates_proto_window(self):
        assigner = SessionWindows(gap=5)
        assert assigner.assign(10) == (Window(10, 15),)

    def test_is_merging(self):
        assert SessionWindows(gap=5).is_merging

    def test_merge_overlapping_sessions(self):
        assigner = SessionWindows(gap=5)
        merged = assigner.merge_windows([Window(0, 5), Window(3, 8)])
        assert merged == [Window(0, 8)]

    def test_adjacent_sessions_merge(self):
        assigner = SessionWindows(gap=5)
        merged = assigner.merge_windows([Window(0, 5), Window(5, 10)])
        assert merged == [Window(0, 10)]

    def test_gap_separates_sessions(self):
        assigner = SessionWindows(gap=2)
        merged = assigner.merge_windows([Window(0, 2), Window(5, 7)])
        assert merged == [Window(0, 2), Window(5, 7)]

    def test_merge_empty(self):
        assert SessionWindows(gap=1).merge_windows([]) == []

    def test_sessions_for_events(self):
        assigner = SessionWindows(gap=3)
        events = [
            Event(value=0.0, timestamp=t, node_id=0, seq=i)
            for i, t in enumerate([0, 1, 2, 10, 11])
        ]
        sessions = assigner.sessions_for_events(events)
        assert sessions == [Window(0, 5), Window(10, 14)]

    def test_invalid_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionWindows(gap=0)
