"""Tests for aggregation functions and their classification."""

import math
import statistics

import pytest

from repro.errors import AggregationError, ConfigurationError
from repro.streaming.aggregates import (
    AggregationClass,
    AverageFunction,
    CountFunction,
    DistinctCountFunction,
    MaxFunction,
    MedianFunction,
    MinFunction,
    ModeFunction,
    QuantileFunction,
    RangeFunction,
    SumFunction,
    VarianceFunction,
    classify,
    exact_quantile,
    get_function,
    list_functions,
    quantile_rank,
)

DATA = [5.0, 3.0, 8.0, 1.0, 9.0, 3.0, 7.0]


class TestQuantileRank:
    def test_median_of_odd(self):
        assert quantile_rank(0.5, 7) == 4

    def test_median_of_even(self):
        assert quantile_rank(0.5, 8) == 4

    def test_full_quantile_is_max(self):
        assert quantile_rank(1.0, 10) == 10

    def test_tiny_q_is_first(self):
        assert quantile_rank(0.0001, 10) == 1

    def test_quarter(self):
        assert quantile_rank(0.25, 100) == 25

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.01])
    def test_invalid_q_rejected(self, q):
        with pytest.raises(AggregationError):
            quantile_rank(q, 10)

    def test_empty_dataset_rejected(self):
        with pytest.raises(AggregationError):
            quantile_rank(0.5, 0)


class TestExactQuantile:
    def test_median(self):
        assert exact_quantile(DATA, 0.5) == 5.0

    def test_matches_rank_definition(self):
        ordered = sorted(DATA)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert exact_quantile(DATA, q) == ordered[quantile_rank(q, len(DATA)) - 1]


class TestSelfDecomposable:
    def test_sum(self):
        assert SumFunction().aggregate(DATA) == sum(DATA)

    def test_count(self):
        assert CountFunction().aggregate(DATA) == len(DATA)

    def test_min(self):
        assert MinFunction().aggregate(DATA) == min(DATA)

    def test_max(self):
        assert MaxFunction().aggregate(DATA) == max(DATA)

    @pytest.mark.parametrize(
        "cls", [SumFunction, CountFunction, MinFunction, MaxFunction]
    )
    def test_classification(self, cls):
        assert classify(cls()) is AggregationClass.SELF_DECOMPOSABLE

    @pytest.mark.parametrize(
        "cls", [SumFunction, CountFunction, MinFunction, MaxFunction]
    )
    def test_combine_associative_on_split(self, cls):
        function = cls()
        whole = function.aggregate(DATA)
        left = None
        for value in DATA[:3]:
            lifted = function.lift(value)
            left = lifted if left is None else function.combine(left, lifted)
        right = None
        for value in DATA[3:]:
            lifted = function.lift(value)
            right = lifted if right is None else function.combine(right, lifted)
        assert function.lower(function.combine(left, right)) == whole


class TestDecomposable:
    def test_average(self):
        assert AverageFunction().aggregate(DATA) == pytest.approx(
            statistics.fmean(DATA)
        )

    def test_variance(self):
        assert VarianceFunction().aggregate(DATA) == pytest.approx(
            statistics.pvariance(DATA)
        )

    def test_variance_never_negative(self):
        assert VarianceFunction().aggregate([1e9, 1e9, 1e9]) >= 0.0

    def test_range(self):
        assert RangeFunction().aggregate(DATA) == max(DATA) - min(DATA)

    @pytest.mark.parametrize(
        "cls", [AverageFunction, VarianceFunction, RangeFunction]
    )
    def test_classification(self, cls):
        assert classify(cls()) is AggregationClass.DECOMPOSABLE

    def test_average_split_matches_whole(self):
        function = AverageFunction()
        left = function.combine(function.lift(1.0), function.lift(3.0))
        right = function.lift(8.0)
        assert function.lower(function.combine(left, right)) == pytest.approx(4.0)


class TestNonDecomposable:
    def test_median(self):
        assert MedianFunction().aggregate(DATA) == 5.0

    def test_median_is_half_quantile(self):
        assert MedianFunction().q == 0.5

    def test_quantile(self):
        assert QuantileFunction(0.25).aggregate(DATA) == exact_quantile(DATA, 0.25)

    def test_quantile_invalid_q(self):
        with pytest.raises(ConfigurationError):
            QuantileFunction(0.0)

    def test_mode(self):
        assert ModeFunction().aggregate(DATA) == 3.0

    def test_mode_tie_breaks_to_smallest(self):
        assert ModeFunction().aggregate([2.0, 2.0, 1.0, 1.0]) == 1.0

    def test_distinct_count(self):
        assert DistinctCountFunction().aggregate(DATA) == 6.0

    @pytest.mark.parametrize(
        "cls", [MedianFunction, ModeFunction, DistinctCountFunction]
    )
    def test_classification(self, cls):
        assert classify(cls()) is AggregationClass.NON_DECOMPOSABLE
        assert not cls().is_decomposable

    def test_empty_window_rejected(self):
        with pytest.raises(AggregationError):
            MedianFunction().aggregate([])


class TestRegistry:
    def test_all_names_constructible(self):
        for name in list_functions():
            if name == "quantile":
                assert isinstance(get_function(name, q=0.5), QuantileFunction)
            else:
                assert get_function(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_function("percentile")

    def test_quantile_requires_q(self):
        with pytest.raises(ConfigurationError):
            get_function("quantile")

    def test_non_quantile_rejects_kwargs(self):
        with pytest.raises(ConfigurationError):
            get_function("sum", q=0.5)

    def test_median_in_registry(self):
        assert "median" in list_functions()
