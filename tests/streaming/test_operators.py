"""Tests for the windowed aggregation operator."""

import pytest

from repro.errors import WindowError
from repro.streaming.aggregates import MedianFunction, SumFunction
from repro.streaming.events import make_events
from repro.streaming.operators import KeyedWindowState, WindowedAggregationOperator
from repro.streaming.time import Watermark
from repro.streaming.windows import TumblingWindows, Window


class TestKeyedWindowState:
    def test_add_and_close(self):
        state = KeyedWindowState(SumFunction())
        window = Window(0, 10)
        state.add(window, 1.0)
        state.add(window, 2.0)
        result = state.close(window)
        assert result.value == 3.0
        assert result.count == 2
        assert len(state) == 0

    def test_close_unknown_window_rejected(self):
        state = KeyedWindowState(SumFunction())
        with pytest.raises(WindowError):
            state.close(Window(0, 10))

    def test_open_windows_sorted(self):
        state = KeyedWindowState(SumFunction())
        state.add(Window(10, 20), 1.0)
        state.add(Window(0, 10), 1.0)
        assert state.open_windows == [Window(0, 10), Window(10, 20)]

    def test_closeable_respects_watermark(self):
        state = KeyedWindowState(SumFunction())
        state.add(Window(0, 10), 1.0)
        state.add(Window(10, 20), 1.0)
        assert state.closeable(Watermark(10)) == [Window(0, 10)]
        assert state.closeable(Watermark(20)) == [Window(0, 10), Window(10, 20)]
        assert state.closeable(Watermark(9)) == []

    def test_closeable_boundary_ticks(self):
        # A window [0, 10) must close exactly when the watermark reaches its
        # end — the Dema sealing convention — never one tick early.
        state = KeyedWindowState(SumFunction())
        state.add(Window(0, 10), 1.0)
        assert state.closeable(Watermark(9)) == []  # end - 1: event at 9 may
        assert state.closeable(Watermark(10)) == [Window(0, 10)]  # still arrive
        assert state.closeable(Watermark(11)) == [Window(0, 10)]  # end + 1

    def test_add_many_matches_per_value_adds(self):
        batched = KeyedWindowState(MedianFunction())
        single = KeyedWindowState(MedianFunction())
        values = [5.0, 1.0, 9.0, 2.0, 2.0]
        window = Window(0, 10)
        batched.add_many(window, values[:2])
        batched.add_many(window, values[2:])
        batched.add_many(window, [])
        for value in values:
            single.add(window, value)
        assert batched.close(window) == single.close(window)


class TestWindowedAggregationOperator:
    def make_operator(self, function=None):
        return WindowedAggregationOperator(
            TumblingWindows(10), function or SumFunction()
        )

    def test_per_window_sums(self):
        operator = self.make_operator()
        operator.process_all(make_events([1, 2, 3, 4], timestamp_step=5))
        results = operator.flush()
        assert [(r.window, r.value) for r in results] == [
            (Window(0, 10), 3.0),
            (Window(10, 20), 7.0),
        ]

    def test_watermark_fires_only_complete_windows(self):
        operator = self.make_operator()
        operator.process_all(make_events([1, 2, 3], timestamp_step=8))
        fired = operator.advance_watermark(Watermark(15))
        assert [r.window for r in fired] == [Window(0, 10)]
        assert operator.open_window_count == 1

    def test_results_accumulate(self):
        operator = self.make_operator()
        operator.process_all(make_events([1], timestamp_step=1))
        operator.advance_watermark(Watermark(100))
        assert len(operator.results) == 1

    def test_median_operator(self):
        operator = self.make_operator(MedianFunction())
        operator.process_all(make_events([5, 1, 9], timestamp_step=1))
        results = operator.flush()
        assert results[0].value == 5.0

    def test_on_result_callback(self):
        seen = []
        operator = WindowedAggregationOperator(
            TumblingWindows(10), SumFunction(), on_result=seen.append
        )
        operator.process_all(make_events([1.0]))
        operator.flush()
        assert len(seen) == 1

    def test_count_reported(self):
        operator = self.make_operator()
        operator.process_all(make_events([1, 1, 1], timestamp_step=1))
        assert operator.flush()[0].count == 3

    def test_flush_empties_state(self):
        operator = self.make_operator()
        operator.process_all(make_events([1.0]))
        operator.flush()
        assert operator.open_window_count == 0
        assert operator.flush() == []
