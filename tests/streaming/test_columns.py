"""Unit tests for the columnar event-batch type."""

import math
import struct

import pytest

from repro.errors import CodecError, ConfigurationError
from repro.runtime import wire
from repro.streaming import columns
from repro.streaming.columns import (
    EventColumns,
    concat_columns,
    get_backend,
    merge_runs,
    set_backend,
)
from repro.streaming.events import Event, event_key, make_events


@pytest.fixture(params=["numpy", "python"])
def backend(request):
    previous = set_backend(request.param)
    yield request.param
    set_backend(previous)


def _pack(events):
    return b"".join(
        wire.EVENT.pack(e.value, e.timestamp, e.node_id, e.seq)
        for e in events
    )


EVENTS = (
    Event(value=3.5, timestamp=10, node_id=1, seq=0),
    Event(value=-1.25, timestamp=11, node_id=2, seq=7),
    Event(value=3.5, timestamp=9, node_id=1, seq=1),
    Event(value=0.0, timestamp=12, node_id=3, seq=2),
)


class TestConstruction:
    def test_from_wire_roundtrip(self, backend):
        cols = EventColumns.from_wire(_pack(EVENTS))
        assert len(cols) == len(EVENTS)
        assert tuple(cols) == EVENTS
        assert cols.to_wire() == _pack(EVENTS)

    def test_from_events_matches_from_wire(self, backend):
        assert EventColumns.from_events(EVENTS) == EventColumns.from_wire(
            _pack(EVENTS)
        )

    def test_empty(self, backend):
        cols = EventColumns.from_wire(b"")
        assert len(cols) == 0
        assert tuple(cols) == ()
        assert cols.to_wire() == b""

    def test_stride_mismatch_rejected(self, backend):
        with pytest.raises(CodecError, match="stride"):
            EventColumns.from_wire(_pack(EVENTS)[:-3])

    def test_count_mismatch_rejected(self, backend):
        with pytest.raises(CodecError, match="announced"):
            EventColumns.from_wire(_pack(EVENTS), count=3)

    def test_count_match_accepted(self, backend):
        cols = EventColumns.from_wire(_pack(EVENTS), count=len(EVENTS))
        assert len(cols) == len(EVENTS)

    def test_nan_bits_survive_roundtrip(self, backend):
        # A non-default NaN payload must come back bit for bit.
        raw = struct.pack(
            "<dIII", struct.unpack("<d", b"\x01\x00\x00\x00\x00\x00\xf8\x7f")[0],
            5, 1, 0,
        )
        cols = EventColumns.from_wire(raw)
        assert cols.to_wire() == raw
        assert math.isnan(cols[0].value)


class TestSequenceProtocol:
    def test_indexing_materializes_pure_python_types(self, backend):
        cols = EventColumns.from_events(EVENTS)
        event = cols[1]
        assert event == EVENTS[1]
        assert type(event.value) is float
        assert type(event.timestamp) is int
        assert type(event.node_id) is int
        assert type(event.seq) is int
        assert cols[-1] == EVENTS[-1]

    def test_slicing_returns_columns(self, backend):
        cols = EventColumns.from_events(EVENTS)
        assert isinstance(cols[1:3], EventColumns)
        assert tuple(cols[1:3]) == EVENTS[1:3]
        assert tuple(cols[::2]) == EVENTS[::2]
        assert tuple(cols[1::2]) == EVENTS[1::2]
        assert cols[1:3].to_wire() == _pack(EVENTS[1:3])

    def test_equality_against_event_sequences(self, backend):
        cols = EventColumns.from_events(EVENTS)
        assert cols == EVENTS
        assert EVENTS == cols
        assert cols == list(EVENTS)
        assert cols != EVENTS[:-1]
        assert cols != EVENTS[:-1] + (Event(99.0, 1, 1, 99),)
        assert hash(cols) == hash(EVENTS)

    def test_keys_and_timestamps(self, backend):
        cols = EventColumns.from_events(EVENTS)
        assert cols.key_at(0) == EVENTS[0].key
        assert cols.key_at(-1) == EVENTS[-1].key
        assert all(type(part) in (float, int) for part in cols.key_at(2))
        assert cols.timestamp_at(2) == 9
        assert cols.min_timestamp() == 9
        assert cols.max_timestamp() == 12
        assert not cols.timestamps_sorted()
        assert EventColumns.from_events(
            sorted(EVENTS, key=lambda e: e.timestamp)
        ).timestamps_sorted()


class TestBackends:
    def test_backend_switch_round_trips(self):
        previous = set_backend("python")
        try:
            py = EventColumns.from_events(EVENTS)
            set_backend("numpy")
            np_cols = EventColumns.from_events(EVENTS)
        finally:
            set_backend(previous)
        assert py == np_cols
        assert py.to_wire() == np_cols.to_wire()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            set_backend("fortran")
        assert get_backend() in ("numpy", "python")

    def test_mixed_backend_concat(self):
        previous = set_backend("python")
        try:
            py = EventColumns.from_events(EVENTS[:2])
            set_backend("numpy")
            np_cols = EventColumns.from_events(EVENTS[2:])
            merged = concat_columns([py, np_cols])
        finally:
            set_backend(previous)
        assert tuple(merged) == EVENTS


class TestMergeRuns:
    def test_sorts_like_object_path(self, backend):
        pending = EventColumns.from_events(EVENTS)
        merged = merge_runs(None, pending)
        assert list(merged) == sorted(EVENTS, key=event_key)

    def test_merges_into_run(self, backend):
        base = sorted(EVENTS, key=event_key)
        run = merge_runs(None, EventColumns.from_events(base))
        extra = make_events([2.0, -5.0], node_id=9, start_timestamp=20)
        merged = merge_runs(run, EventColumns.from_events(extra))
        assert list(merged) == sorted(
            list(EVENTS) + list(extra), key=event_key
        )

    def test_nan_matches_object_sort_exactly(self, backend):
        events = [
            Event(value=2.0, timestamp=0, node_id=1, seq=0),
            Event(value=float("nan"), timestamp=1, node_id=1, seq=1),
            Event(value=1.0, timestamp=2, node_id=1, seq=2),
            Event(value=float("nan"), timestamp=3, node_id=2, seq=0),
            Event(value=0.5, timestamp=4, node_id=2, seq=1),
        ]
        # The object path: sort the arrival buffer with Timsort.  NaN
        # makes the result order-dependent but deterministic; the
        # columnar path must reproduce that exact permutation.
        expected = sorted(events, key=event_key)
        merged = merge_runs(None, EventColumns.from_events(events))
        assert [(e.node_id, e.seq) for e in merged] == [
            (e.node_id, e.seq) for e in expected
        ]

    def test_nan_merge_into_run_matches_object_merge(self, backend):
        # Distinct NaN objects per event, exactly as wire decode produces
        # them.  (A shared NaN object would flip tuple comparisons via
        # CPython's identity fast path — an order production never sees.)
        run_events = [
            Event(value=1.0, timestamp=0, node_id=1, seq=0),
            Event(value=float("nan"), timestamp=1, node_id=1, seq=1),
            Event(value=3.0, timestamp=2, node_id=1, seq=2),
        ]
        pending = [
            Event(value=2.0, timestamp=3, node_id=2, seq=0),
            Event(value=float("nan"), timestamp=4, node_id=2, seq=1),
        ]
        # Mirror of SortedLocalWindow._compact on objects.
        buf = sorted(pending, key=event_key)
        merged_obj, i, j = [], 0, 0
        while i < len(run_events) and j < len(buf):
            if run_events[i].key <= buf[j].key:
                merged_obj.append(run_events[i])
                i += 1
            else:
                merged_obj.append(buf[j])
                j += 1
        merged_obj.extend(run_events[i:])
        merged_obj.extend(buf[j:])

        run = EventColumns.from_events(run_events)
        merged = merge_runs(run, EventColumns.from_events(pending))
        assert [(e.node_id, e.seq) for e in merged] == [
            (e.node_id, e.seq) for e in merged_obj
        ]

    def test_duplicate_keys_stable(self, backend):
        # node_id/seq pairs make keys strict in production; a pathological
        # exact-duplicate key must still sort stably (run before pending).
        twin = Event(value=1.0, timestamp=0, node_id=1, seq=0)
        run = merge_runs(None, EventColumns.from_events([twin]))
        merged = merge_runs(run, EventColumns.from_events([twin]))
        assert list(merged) == [twin, twin]


class TestConcat:
    def test_concat_orders_chunks(self, backend):
        a = EventColumns.from_events(EVENTS[:2])
        b = EventColumns.from_events(EVENTS[2:])
        assert tuple(concat_columns([a, b])) == EVENTS
        assert concat_columns([a]) is a
        assert len(concat_columns([])) == 0
