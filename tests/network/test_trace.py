"""Tests for simulator message tracing."""

from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    SynopsisMessage,
)
from repro.network.simulator import MessageTrace
from repro.network.topology import TopologyConfig
from repro.streaming.events import make_events


def run_traced(loss_rate=0.0, reliability=None):
    trace: list[MessageTrace] = []
    query = QuantileQuery(q=0.5, gamma=4)
    engine = DemaEngine(
        query,
        TopologyConfig(n_local_nodes=2, loss_rate=loss_rate, loss_seed=2),
        trace=trace.append,
        reliability=reliability,
    )
    streams = {
        node_id: make_events(range(node_id, node_id + 8), node_id=node_id,
                             timestamp_step=100)
        for node_id in (1, 2)
    }
    report = engine.run(streams)
    return trace, report


class TestTrace:
    def test_protocol_phases_in_order(self):
        trace, _ = run_traced()
        kinds = [type(entry.message).__name__ for entry in trace]
        first_synopsis = kinds.index("SynopsisMessage")
        first_request = kinds.index("CandidateRequestMessage")
        first_candidates = kinds.index("CandidateEventsMessage")
        assert first_synopsis < first_request < first_candidates

    def test_every_message_has_endpoints_and_times(self):
        trace, _ = run_traced()
        for entry in trace:
            assert entry.delivered_at is not None
            assert entry.delivered_at > entry.sent_at
            assert entry.src != entry.dst

    def test_trace_bytes_match_metrics(self):
        trace, report = run_traced()
        traced_bytes = sum(entry.message.wire_bytes for entry in trace)
        assert traced_bytes == report.network.total_bytes

    def test_synopsis_per_local_per_window(self):
        trace, report = run_traced()
        synopses = [
            entry for entry in trace
            if isinstance(entry.message, SynopsisMessage)
        ]
        assert len(synopses) == 2 * len(report.outcomes)

    def test_requests_to_every_local(self):
        trace, _ = run_traced()
        requests = [
            entry for entry in trace
            if isinstance(entry.message, CandidateRequestMessage)
        ]
        assert {entry.dst for entry in requests} == {1, 2}

    def test_lost_messages_marked(self):
        from repro.core.reliability import ReliabilityConfig

        trace, _ = run_traced(
            loss_rate=0.4,
            reliability=ReliabilityConfig(timeout_s=0.02, max_retries=20),
        )
        lost = [entry for entry in trace if entry.delivered_at is None]
        assert lost
        assert "LOST" in lost[0].describe()

    def test_describe_is_one_line(self):
        trace, _ = run_traced()
        for entry in trace:
            description = entry.describe()
            assert "\n" not in description
            assert "Synopsis" in description or "Candidate" in description
