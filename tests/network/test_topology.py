"""Tests for the three-layer topology builder."""

import pytest

from repro.errors import ConfigurationError
from repro.network.simulator import SimulatedNode, Simulator
from repro.network.topology import (
    NodeRole,
    Topology,
    TopologyConfig,
    relay_groups,
)


class Stub(SimulatedNode):
    def on_message(self, message, now):
        pass


def build(n_local=2, streams_per_local=0, **kwargs):
    simulator = Simulator()
    config = TopologyConfig(
        n_local_nodes=n_local, streams_per_local=streams_per_local, **kwargs
    )
    topology = Topology.build(
        simulator,
        config,
        root_factory=lambda nid, ops: Stub(nid, ops_per_second=ops),
        local_factory=lambda nid, ops: Stub(nid, ops_per_second=ops),
        stream_factory=lambda nid, ops, local: Stub(nid, ops_per_second=ops),
    )
    return simulator, topology


class TestBuild:
    def test_root_is_node_zero(self):
        _, topology = build()
        assert topology.root_id == 0

    def test_local_ids_sequential(self):
        _, topology = build(n_local=3)
        assert topology.local_ids == [1, 2, 3]

    def test_bidirectional_root_links(self):
        simulator, topology = build(n_local=2)
        for local_id in topology.local_ids:
            assert (local_id, 0) in simulator.channels
            assert (0, local_id) in simulator.channels

    def test_stream_nodes_attach_to_locals(self):
        simulator, topology = build(n_local=2, streams_per_local=2)
        assert all(len(v) == 2 for v in topology.stream_ids.values())
        for local_id, streams in topology.stream_ids.items():
            for stream_id in streams:
                assert (stream_id, local_id) in simulator.channels

    def test_stream_factory_required_when_streams_requested(self):
        simulator = Simulator()
        config = TopologyConfig(n_local_nodes=1, streams_per_local=1)
        with pytest.raises(ConfigurationError):
            Topology.build(
                simulator,
                config,
                root_factory=lambda nid, ops: Stub(nid, ops_per_second=ops),
                local_factory=lambda nid, ops: Stub(nid, ops_per_second=ops),
            )

    def test_factory_must_return_node(self):
        simulator = Simulator()
        config = TopologyConfig(n_local_nodes=1)
        with pytest.raises(ConfigurationError):
            Topology.build(
                simulator,
                config,
                root_factory=lambda nid, ops: object(),
                local_factory=lambda nid, ops: Stub(nid, ops_per_second=ops),
            )

    def test_cpu_budgets_applied(self):
        simulator, topology = build(
            n_local=1,
            root_ops_per_second=123.0,
            local_ops_per_second=456.0,
        )
        assert simulator.nodes[0].cpu.ops_per_second == 123.0
        assert simulator.nodes[1].cpu.ops_per_second == 456.0

    def test_uplink_bandwidth_applied(self):
        simulator, topology = build(n_local=1, uplink_bandwidth_bps=777.0)
        assert topology.uplink(1).bandwidth_bps == 777.0

    def test_downlink_accessor(self):
        _, topology = build(n_local=1)
        assert topology.downlink(1).src == 0


class TestRoles:
    def test_role_classification(self):
        _, topology = build(n_local=1, streams_per_local=1)
        assert topology.role_of(0) is NodeRole.ROOT
        assert topology.role_of(1) is NodeRole.LOCAL
        stream_id = topology.stream_ids[1][0]
        assert topology.role_of(stream_id) is NodeRole.STREAM

    def test_unknown_node_rejected(self):
        _, topology = build()
        with pytest.raises(ConfigurationError):
            topology.role_of(99)


class TestScaleBuild:
    """Topology.build at mesh scale: 100 and 500 locals."""

    @pytest.mark.parametrize("n_local", [100, 500])
    def test_role_assignment_at_scale(self, n_local):
        _, topology = build(n_local=n_local, streams_per_local=1)
        assert topology.role_of(0) is NodeRole.ROOT
        roles = [topology.role_of(lid) for lid in topology.local_ids]
        assert roles == [NodeRole.LOCAL] * n_local
        for local_id, streams in topology.stream_ids.items():
            for stream_id in streams:
                assert topology.role_of(stream_id) is NodeRole.STREAM

    @pytest.mark.parametrize("n_local", [100, 500])
    def test_uplink_downlink_integrity_at_scale(self, n_local):
        simulator, topology = build(n_local=n_local)
        assert len(topology.local_ids) == n_local
        assert len(set(topology.local_ids)) == n_local
        for local_id in topology.local_ids:
            uplink = topology.uplink(local_id)
            downlink = topology.downlink(local_id)
            assert (uplink.src, uplink.dst) == (local_id, 0)
            assert (downlink.src, downlink.dst) == (0, local_id)
            assert (local_id, 0) in simulator.channels
            assert (0, local_id) in simulator.channels

    def test_wiring_is_deterministic(self):
        def snapshot():
            simulator, topology = build(n_local=100, streams_per_local=2)
            return (
                topology.root_id,
                tuple(topology.local_ids),
                tuple(sorted(
                    (k, tuple(v)) for k, v in topology.stream_ids.items()
                )),
                tuple(sorted(simulator.channels)),
            )

        assert snapshot() == snapshot()

    def test_stream_ids_do_not_collide_with_locals(self):
        _, topology = build(n_local=500, streams_per_local=3)
        local_ids = set(topology.local_ids)
        stream_ids = {
            sid for streams in topology.stream_ids.values() for sid in streams
        }
        assert not (local_ids & stream_ids)
        assert 0 not in local_ids | stream_ids
        assert len(stream_ids) == 500 * 3


class TestRelayGroups:
    def test_even_split(self):
        assert relay_groups([1, 2, 3, 4], 2) == [(1, 2), (3, 4)]

    def test_ragged_tail(self):
        assert relay_groups([1, 2, 3, 4, 5], 2) == [(1, 2), (3, 4), (5,)]

    def test_zero_fanin_means_no_relays(self):
        assert relay_groups([1, 2, 3], 0) == []

    def test_fanin_larger_than_population(self):
        assert relay_groups([1, 2], 10) == [(1, 2)]

    def test_covers_every_local_exactly_once(self):
        ids = list(range(1, 101))
        groups = relay_groups(ids, 8)
        flat = [lid for group in groups for lid in group]
        assert flat == ids
        assert all(len(group) <= 8 for group in groups)


class TestConfigValidation:
    def test_zero_locals_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(n_local_nodes=0)

    def test_negative_streams_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(n_local_nodes=1, streams_per_local=-1)
