"""Tests for channel bandwidth, latency and accounting."""

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.network.channels import Channel
from repro.network.messages import EventBatchMessage, Message
from repro.streaming.events import make_events
from repro.streaming.windows import Window

WINDOW = Window(0, 1000)


def make_channel(bandwidth=1000.0, latency=0.5):
    return Channel(1, 0, bandwidth_bps=bandwidth, latency_s=latency)


class TestTransmit:
    def test_delivery_time_includes_transfer_and_latency(self):
        channel = make_channel(bandwidth=1000.0, latency=0.5)
        message = Message(sender=1, window=WINDOW)  # 32 bytes (bare header)
        delivery = channel.transmit(message, now=0.0)
        assert delivery == pytest.approx(32 / 1000.0 + 0.5)

    def test_fifo_serialization(self):
        channel = make_channel(bandwidth=1000.0, latency=0.0)
        message = Message(sender=1, window=WINDOW)
        first = channel.transmit(message, now=0.0)
        second = channel.transmit(message, now=0.0)
        assert second == pytest.approx(first + 32 / 1000.0)

    def test_idle_gap_not_accumulated(self):
        channel = make_channel(bandwidth=1000.0, latency=0.0)
        message = Message(sender=1, window=WINDOW)
        channel.transmit(message, now=0.0)
        delivery = channel.transmit(message, now=100.0)
        assert delivery == pytest.approx(100.0 + 32 / 1000.0)

    def test_busy_until_tracks_link_occupancy(self):
        channel = make_channel(bandwidth=32.0, latency=1.0)
        message = Message(sender=1, window=WINDOW)
        channel.transmit(message, now=0.0)
        assert channel.busy_until == pytest.approx(1.0)

    def test_negative_time_rejected(self):
        channel = make_channel()
        with pytest.raises(NetworkError):
            channel.transmit(Message(sender=1, window=WINDOW), now=-1.0)


class TestStats:
    def test_bytes_and_messages_counted(self):
        channel = make_channel()
        events = tuple(make_events([1, 2, 3]))
        message = EventBatchMessage(sender=1, window=WINDOW, events=events)
        channel.transmit(message, now=0.0)
        channel.transmit(message, now=1.0)
        assert channel.stats.messages == 2
        assert channel.stats.bytes == 2 * message.wire_bytes
        assert channel.stats.events == 6

    def test_non_event_messages_count_zero_events(self):
        channel = make_channel()
        channel.transmit(Message(sender=1, window=WINDOW), now=0.0)
        assert channel.stats.events == 0

    def test_reset_stats_preserves_occupancy(self):
        channel = make_channel(bandwidth=10.0)
        channel.transmit(Message(sender=1, window=WINDOW), now=0.0)
        busy = channel.busy_until
        channel.reset_stats()
        assert channel.stats.bytes == 0
        assert channel.busy_until == busy


class TestValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            Channel(0, 1, bandwidth_bps=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            Channel(0, 1, latency_s=-0.1)

    def test_endpoints_exposed(self):
        channel = Channel(3, 7)
        assert channel.src == 3
        assert channel.dst == 7
