"""Tests for message types and byte-exact sizing."""

from repro.network.messages import (
    MESSAGE_HEADER_BYTES,
    SYNOPSIS_WIRE_BYTES,
    CandidateEventsMessage,
    CandidateRequestMessage,
    DigestMessage,
    EventBatchMessage,
    GammaUpdateMessage,
    Message,
    ResultMessage,
    SortedRunMessage,
    SynopsisMessage,
    WatermarkMessage,
    batch_events,
)
from repro.streaming.events import EVENT_WIRE_BYTES, make_events
from repro.streaming.windows import Window

WINDOW = Window(0, 1000)


class TestBaseMessage:
    def test_wire_bytes_is_header_plus_payload(self):
        message = Message(sender=1, window=WINDOW)
        assert message.wire_bytes == MESSAGE_HEADER_BYTES
        assert message.payload_bytes == 0


class TestEventCarryingMessages:
    def test_event_batch_scales_with_events(self):
        events = tuple(make_events([1, 2, 3]))
        message = EventBatchMessage(sender=1, window=WINDOW, events=events)
        assert message.payload_bytes == 4 + 3 * EVENT_WIRE_BYTES

    def test_sorted_run_same_cost_as_raw(self):
        events = tuple(make_events([1, 2, 3]))
        raw = EventBatchMessage(sender=1, window=WINDOW, events=events)
        run = SortedRunMessage(sender=1, window=WINDOW, events=events)
        assert run.payload_bytes == raw.payload_bytes

    def test_candidate_events_adds_slice_index(self):
        events = tuple(make_events([1, 2]))
        message = CandidateEventsMessage(
            sender=1, window=WINDOW, slice_index=0, events=events
        )
        assert message.payload_bytes == 8 + 2 * EVENT_WIRE_BYTES

    def test_batch_events_helper(self):
        events = make_events([1.0])
        message = batch_events(3, WINDOW, events)
        assert message.sender == 3
        assert message.events == tuple(events)


class TestControlMessages:
    def test_synopsis_message_size(self):
        message = SynopsisMessage(
            sender=1, window=WINDOW, synopses=(object(), object()),
            local_window_size=100,
        )
        assert message.payload_bytes == 2 * SYNOPSIS_WIRE_BYTES + 12

    def test_synopsis_cheaper_than_raw_events_it_summarizes(self):
        # One synopsis summarizes gamma >= 2 events; for gamma > 2 the
        # synopsis must be strictly cheaper than the events it replaces.
        assert SYNOPSIS_WIRE_BYTES < 4 * EVENT_WIRE_BYTES

    def test_candidate_request_size(self):
        message = CandidateRequestMessage(
            sender=0, window=WINDOW, slice_indices=(1, 2, 3)
        )
        assert message.payload_bytes == 4 + 12

    def test_gamma_update_small(self):
        message = GammaUpdateMessage(sender=0, window=WINDOW, gamma=100)
        assert message.payload_bytes == 4

    def test_watermark_size(self):
        message = WatermarkMessage(sender=1, window=WINDOW, watermark_time=10)
        assert message.payload_bytes == 8

    def test_result_size(self):
        message = ResultMessage(
            sender=0, window=WINDOW, value=1.0, global_window_size=5
        )
        assert message.payload_bytes == 16

    def test_digest_scales_with_centroids(self):
        message = DigestMessage(
            sender=1, window=WINDOW, centroids=((1.0, 2.0), (3.0, 4.0))
        )
        # count + exact min/max + two (mean, weight) pairs.
        assert message.payload_bytes == 4 + 2 * 8 + 2 * 16


class TestImmutability:
    def test_messages_are_frozen(self):
        import pytest

        message = GammaUpdateMessage(sender=0, window=WINDOW, gamma=10)
        with pytest.raises(AttributeError):
            message.gamma = 20
