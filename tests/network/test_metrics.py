"""Tests for network metrics aggregation and latency statistics."""

import pytest

from repro.network.channels import Channel
from repro.network.messages import EventBatchMessage, Message
from repro.network.metrics import LatencyStats, NetworkMetrics
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import make_events
from repro.streaming.windows import Window

WINDOW = Window(0, 1000)


class Sink(SimulatedNode):
    def on_message(self, message, now):
        pass


def simulate_traffic():
    simulator = Simulator()
    for node_id in (0, 1, 2):
        simulator.add_node(Sink(node_id))
    simulator.connect(Channel(1, 0))
    simulator.connect(Channel(2, 0))
    simulator.connect(Channel(0, 1))
    events = tuple(make_events([1, 2, 3]))
    simulator.schedule(
        0.0,
        lambda t: simulator.nodes[1].send(
            EventBatchMessage(sender=1, window=WINDOW, events=events), 0, t
        ),
    )
    simulator.schedule(
        0.0,
        lambda t: simulator.nodes[2].send(
            Message(sender=2, window=WINDOW), 0, t
        ),
    )
    simulator.run()
    return simulator


class TestNetworkMetrics:
    def test_capture_snapshots_all_links(self):
        metrics = NetworkMetrics.capture(simulate_traffic())
        assert len(metrics.links) == 3

    def test_totals(self):
        metrics = NetworkMetrics.capture(simulate_traffic())
        assert metrics.total_messages == 2
        assert metrics.total_bytes == (24 + 48) + 24
        assert metrics.total_events_on_wire == 3

    def test_per_node_direction(self):
        metrics = NetworkMetrics.capture(simulate_traffic())
        assert metrics.bytes_sent_by(1) == 72
        assert metrics.bytes_sent_by(0) == 0
        assert metrics.bytes_received_by(0) == 96
        assert metrics.bytes_into(0) == metrics.bytes_received_by(0)

    def test_reduction_vs(self):
        heavy = NetworkMetrics.capture(simulate_traffic())
        simulator = Simulator()
        simulator.add_node(Sink(0))
        light = NetworkMetrics.capture(simulator)
        assert light.reduction_vs(heavy) == pytest.approx(1.0)
        assert heavy.reduction_vs(light) == 0.0  # vacuous baseline


class TestLatencyStats:
    def test_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.p50 == 0.0
        assert stats.p95 == 0.0
        assert stats.max == 0.0

    def test_summary_statistics(self):
        stats = LatencyStats()
        for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
            stats.add(value)
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.p50 == pytest.approx(3.0)
        assert stats.max == 5.0

    def test_p95_near_tail(self):
        stats = LatencyStats()
        for value in range(100):
            stats.add(float(value))
        assert stats.p95 == 95.0

    def test_p95_unordered_input(self):
        stats = LatencyStats()
        for value in [5.0, 1.0, 3.0]:
            stats.add(value)
        assert stats.p95 == 5.0
