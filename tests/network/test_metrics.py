"""Tests for network metrics aggregation and latency statistics."""

import pytest

from repro.network.channels import Channel
from repro.network.messages import EventBatchMessage, Message
from repro.network.metrics import LatencyStats, NetworkMetrics
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import make_events
from repro.streaming.windows import Window

WINDOW = Window(0, 1000)


class Sink(SimulatedNode):
    def on_message(self, message, now):
        pass


def simulate_traffic():
    simulator = Simulator()
    for node_id in (0, 1, 2):
        simulator.add_node(Sink(node_id))
    simulator.connect(Channel(1, 0))
    simulator.connect(Channel(2, 0))
    simulator.connect(Channel(0, 1))
    events = tuple(make_events([1, 2, 3]))
    simulator.schedule(
        0.0,
        lambda t: simulator.nodes[1].send(
            EventBatchMessage(sender=1, window=WINDOW, events=events), 0, t
        ),
    )
    simulator.schedule(
        0.0,
        lambda t: simulator.nodes[2].send(
            Message(sender=2, window=WINDOW), 0, t
        ),
    )
    simulator.run()
    return simulator


class TestNetworkMetrics:
    def test_capture_snapshots_all_links(self):
        metrics = NetworkMetrics.capture(simulate_traffic())
        assert len(metrics.links) == 3

    def test_totals(self):
        metrics = NetworkMetrics.capture(simulate_traffic())
        assert metrics.total_messages == 2
        assert metrics.total_bytes == (32 + 4 + 3 * 20) + 32
        assert metrics.total_events_on_wire == 3

    def test_per_node_direction(self):
        metrics = NetworkMetrics.capture(simulate_traffic())
        assert metrics.bytes_sent_by(1) == 96
        assert metrics.bytes_sent_by(0) == 0
        assert metrics.bytes_received_by(0) == 128
        assert metrics.bytes_into(0) == metrics.bytes_received_by(0)

    def test_empty_simulator_statistics(self):
        simulator = Simulator()
        simulator.add_node(Sink(0))
        metrics = NetworkMetrics.capture(simulator)
        assert metrics.links == []
        assert metrics.total_bytes == 0
        assert metrics.mean_bytes_per_link == 0.0
        assert metrics.max_link_bytes == 0

    def test_mean_and_max_link_bytes(self):
        metrics = NetworkMetrics.capture(simulate_traffic())
        assert metrics.max_link_bytes == 96
        assert metrics.mean_bytes_per_link == pytest.approx((96 + 32 + 0) / 3)

    def test_reduction_vs(self):
        heavy = NetworkMetrics.capture(simulate_traffic())
        simulator = Simulator()
        simulator.add_node(Sink(0))
        light = NetworkMetrics.capture(simulator)
        assert light.reduction_vs(heavy) == pytest.approx(1.0)
        assert heavy.reduction_vs(light) == 0.0  # vacuous baseline


class TestDiff:
    def _send(self, simulator, src, n_events):
        events = tuple(make_events(list(range(n_events)), node_id=src))
        simulator.schedule(
            simulator.now,
            lambda t: simulator.nodes[src].send(
                EventBatchMessage(sender=src, window=WINDOW, events=events),
                0, t,
            ),
        )
        simulator.run()

    def test_diff_isolates_interval_traffic(self):
        simulator = Simulator()
        for node_id in (0, 1):
            simulator.add_node(Sink(node_id))
        simulator.connect(Channel(1, 0))
        self._send(simulator, 1, 2)
        earlier = NetworkMetrics.capture(simulator)
        self._send(simulator, 1, 3)
        later = NetworkMetrics.capture(simulator)

        interval = later.diff(earlier)
        assert interval.total_messages == 1
        assert interval.total_events_on_wire == 3
        assert interval.total_bytes == later.total_bytes - earlier.total_bytes

    def test_diff_against_self_is_zero(self):
        simulator = simulate_traffic()
        metrics = NetworkMetrics.capture(simulator)
        zero = metrics.diff(metrics)
        assert zero.total_bytes == 0
        assert zero.total_messages == 0
        assert len(zero.links) == len(metrics.links)

    def test_diff_counts_new_links_in_full(self):
        simulator = Simulator()
        for node_id in (0, 1, 2):
            simulator.add_node(Sink(node_id))
        simulator.connect(Channel(1, 0))
        self._send(simulator, 1, 2)
        earlier = NetworkMetrics.capture(simulator)
        simulator.connect(Channel(2, 0))
        self._send(simulator, 2, 4)
        later = NetworkMetrics.capture(simulator)

        interval = later.diff(earlier)
        new_link = next(l for l in interval.links if l.src == 2)
        assert new_link.events == 4
        assert interval.total_events_on_wire == 4

    def test_diff_rejects_reversed_snapshots(self):
        simulator = Simulator()
        for node_id in (0, 1):
            simulator.add_node(Sink(node_id))
        simulator.connect(Channel(1, 0))
        earlier = NetworkMetrics.capture(simulator)
        self._send(simulator, 1, 2)
        later = NetworkMetrics.capture(simulator)
        with pytest.raises(ValueError):
            earlier.diff(later)


class TestLatencyStats:
    def test_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.p50 == 0.0
        assert stats.p95 == 0.0
        assert stats.max == 0.0

    def test_summary_statistics(self):
        stats = LatencyStats()
        for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
            stats.add(value)
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.p50 == pytest.approx(3.0)
        assert stats.max == 5.0

    def test_p95_near_tail(self):
        stats = LatencyStats()
        for value in range(100):
            stats.add(float(value))
        assert stats.p95 == 95.0

    def test_p95_unordered_input(self):
        stats = LatencyStats()
        for value in [5.0, 1.0, 3.0]:
            stats.add(value)
        assert stats.p95 == 5.0
