"""Tests for the batch source driver."""

import pytest

from repro.errors import ConfigurationError
from repro.network.simulator import Simulator
from repro.streaming.events import Event, make_events
from repro.streaming.windows import TumblingWindows, Window
from repro.network.driver import BatchSourceDriver


class RecordingOperator:
    """Minimal LocalOperator that records call times."""

    def __init__(self):
        self.batches = []
        self.completed = []

    def ingest(self, events, now):
        self.batches.append((tuple(events), now))
        return now

    def on_window_complete(self, window, now):
        self.completed.append((window, now))


class TestFeed:
    def test_events_arrive_at_event_time(self):
        simulator = Simulator()
        driver = BatchSourceDriver(simulator, batch_size=2)
        operator = RecordingOperator()
        events = make_events([1, 2, 3, 4], timestamp_step=100)
        driver.feed(operator, events, TumblingWindows(1000))
        simulator.run()
        # Batches arrive at the timestamp of their last event.
        arrivals = [now for _, now in operator.batches]
        assert arrivals == pytest.approx([0.1, 0.3])

    def test_all_events_delivered_once(self):
        simulator = Simulator()
        driver = BatchSourceDriver(simulator, batch_size=3)
        operator = RecordingOperator()
        events = make_events(range(10), timestamp_step=10)
        driver.feed(operator, events, TumblingWindows(1000))
        simulator.run()
        delivered = [e for batch, _ in operator.batches for e in batch]
        assert delivered == events
        assert driver.scheduled_events == 10

    def test_batches_never_span_windows(self):
        simulator = Simulator()
        driver = BatchSourceDriver(simulator, batch_size=100)
        operator = RecordingOperator()
        assigner = TumblingWindows(50)
        events = make_events(range(10), timestamp_step=10)
        driver.feed(operator, events, assigner)
        simulator.run()
        for batch, _ in operator.batches:
            windows = {assigner.window_for(e.timestamp) for e in batch}
            assert len(windows) == 1

    def test_returns_touched_windows(self):
        simulator = Simulator()
        driver = BatchSourceDriver(simulator)
        operator = RecordingOperator()
        events = make_events([1, 2], timestamp_step=1500)
        windows = driver.feed(operator, events, TumblingWindows(1000))
        assert windows == [Window(0, 1000), Window(1000, 2000)]

    def test_regressing_timestamps_rejected(self):
        simulator = Simulator()
        driver = BatchSourceDriver(simulator)
        operator = RecordingOperator()
        events = [
            Event(value=1.0, timestamp=10, node_id=0, seq=0),
            Event(value=2.0, timestamp=5, node_id=0, seq=1),
        ]
        with pytest.raises(ConfigurationError):
            driver.feed(operator, events, TumblingWindows(1000))

    def test_empty_stream(self):
        simulator = Simulator()
        driver = BatchSourceDriver(simulator)
        operator = RecordingOperator()
        assert driver.feed(operator, [], TumblingWindows(1000)) == []
        assert driver.scheduled_events == 0


class TestAnnounceWindows:
    def test_completion_after_window_end(self):
        simulator = Simulator()
        driver = BatchSourceDriver(simulator, window_grace_s=0.001)
        operator = RecordingOperator()
        driver.announce_windows(operator, [Window(0, 1000)])
        simulator.run()
        window, when = operator.completed[0]
        assert window == Window(0, 1000)
        assert when == pytest.approx(1.001)

    def test_every_window_announced(self):
        simulator = Simulator()
        driver = BatchSourceDriver(simulator)
        operator = RecordingOperator()
        windows = [Window(0, 1000), Window(1000, 2000)]
        driver.announce_windows(operator, windows)
        simulator.run()
        assert [w for w, _ in operator.completed] == windows


class TestValidation:
    def test_batch_size_positive(self):
        with pytest.raises(ConfigurationError):
            BatchSourceDriver(Simulator(), batch_size=0)

    def test_grace_non_negative(self):
        with pytest.raises(ConfigurationError):
            BatchSourceDriver(Simulator(), window_grace_s=-1.0)
