"""Tests for the explicit sensor tier (stream → local → root)."""

import pytest

from repro.errors import ConfigurationError
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.network.channels import Channel
from repro.network.messages import EventBatchMessage, GammaUpdateMessage
from repro.network.simulator import SimulatedNode, Simulator
from repro.network.sources import StreamSensorNode
from repro.network.topology import TopologyConfig
from repro.streaming.aggregates import exact_quantile
from repro.streaming.events import Event, make_events
from repro.streaming.windows import TumblingWindows, Window
from repro.bench.generator import GeneratorConfig, workload


class Sink(SimulatedNode):
    def __init__(self, node_id=1):
        super().__init__(node_id)
        self.received = []

    def on_message(self, message, now):
        self.received.append((message, now))


def deploy_sensor(batch_size=4, max_batch_delay_ms=100):
    simulator = Simulator()
    local = Sink(1)
    sensor = StreamSensorNode(
        2, local_id=1, ops_per_second=1e9,
        batch_size=batch_size, max_batch_delay_ms=max_batch_delay_ms,
    )
    simulator.add_node(local)
    simulator.add_node(sensor)
    simulator.connect(Channel(2, 1))
    return simulator, local, sensor


class TestStreamSensorNode:
    def test_all_events_delivered(self):
        simulator, local, sensor = deploy_sensor()
        events = make_events(range(10), node_id=2, timestamp_step=10)
        sensor.load(events)
        simulator.run()
        delivered = [
            e for message, _ in local.received for e in message.events
        ]
        assert delivered == events
        assert sensor.events_produced == 10

    def test_batches_respect_size(self):
        simulator, local, sensor = deploy_sensor(batch_size=3)
        sensor.load(make_events(range(7), node_id=2, timestamp_step=1))
        simulator.run()
        sizes = [len(m.events) for m, _ in local.received]
        assert sizes == [3, 3, 1]

    def test_batches_respect_age_bound(self):
        simulator, local, sensor = deploy_sensor(
            batch_size=100, max_batch_delay_ms=50
        )
        sensor.load(make_events(range(10), node_id=2, timestamp_step=30))
        simulator.run()
        for message, _ in local.received:
            span = message.events[-1].timestamp - message.events[0].timestamp
            assert span <= 50

    def test_transmission_after_event_time(self):
        simulator, local, sensor = deploy_sensor(batch_size=2)
        sensor.load(make_events(range(6), node_id=2, timestamp_step=100))
        simulator.run()
        for message, arrival in local.received:
            # No batch arrives before its newest reading existed.
            assert arrival > message.events[-1].timestamp / 1000.0

    def test_regressing_timestamps_rejected(self):
        _, _, sensor = deploy_sensor()
        events = [
            Event(value=1.0, timestamp=10, node_id=2, seq=0),
            Event(value=2.0, timestamp=5, node_id=2, seq=1),
        ]
        with pytest.raises(ConfigurationError):
            sensor.load(events)

    def test_sensor_rejects_incoming_messages(self):
        simulator, local, sensor = deploy_sensor()
        simulator.connect(Channel(1, 2))
        bad = GammaUpdateMessage(sender=1, window=Window(0, 1), gamma=5)
        simulator.schedule(0.0, lambda t: local.send(bad, 2, t))
        with pytest.raises(ConfigurationError):
            simulator.run()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamSensorNode(2, local_id=1, batch_size=0)
        with pytest.raises(ConfigurationError):
            StreamSensorNode(2, local_id=1, max_batch_delay_ms=0)


class TestThreeTierDeployment:
    def run_three_tier(self, streams_per_local=3, rate=1_000.0):
        query = QuantileQuery(q=0.5, gamma=50)
        topo = TopologyConfig(
            n_local_nodes=2, streams_per_local=streams_per_local
        )
        engine = DemaEngine(query, topo)
        streams = workload(
            [1, 2], GeneratorConfig(event_rate=rate, duration_s=3.0, seed=4)
        )
        report = engine.run_via_sensors(streams)
        return engine, report, streams

    def test_exact_results_end_to_end(self):
        engine, report, streams = self.run_three_tier()
        assigner = TumblingWindows(1000)
        per_window = {}
        for events in streams.values():
            for event in events:
                per_window.setdefault(
                    assigner.window_for(event.timestamp), []
                ).append(event.value)
        assert len(report.outcomes) == len(per_window)
        for outcome in report.outcomes:
            assert outcome.value == exact_quantile(
                per_window[outcome.window], 0.5
            )

    def test_no_late_drops_with_default_lateness(self):
        engine, _, _ = self.run_three_tier()
        assert all(
            engine.simulator.nodes[i].late_events == 0
            for i in engine.topology.local_ids
        )

    def test_sensor_links_carry_all_events(self):
        engine, report, streams = self.run_three_tier()
        total_events = sum(len(events) for events in streams.values())
        on_sensor_links = sum(
            engine.simulator.channel(sid, lid).stats.events
            for lid, sids in engine.topology.stream_ids.items()
            for sid in sids
        )
        assert on_sensor_links == total_events

    def test_events_split_across_sensors(self):
        engine, _, _ = self.run_three_tier(streams_per_local=3)
        for sids in engine.topology.stream_ids.values():
            produced = [
                engine.simulator.nodes[sid].events_produced for sid in sids
            ]
            assert all(count > 0 for count in produced)
            assert max(produced) - min(produced) <= 1

    def test_requires_sensor_tier(self):
        query = QuantileQuery(q=0.5, gamma=50)
        engine = DemaEngine(query, TopologyConfig(n_local_nodes=2))
        with pytest.raises(ConfigurationError):
            engine.run_via_sensors({1: make_events([1.0], node_id=1)})

    def test_unknown_local_rejected(self):
        query = QuantileQuery(q=0.5, gamma=50)
        engine = DemaEngine(
            query, TopologyConfig(n_local_nodes=2, streams_per_local=1)
        )
        with pytest.raises(ConfigurationError):
            engine.run_via_sensors({9: make_events([1.0], node_id=9)})
