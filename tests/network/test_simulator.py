"""Tests for the discrete-event engine and CPU model."""

import pytest

from repro.errors import ConfigurationError, RoutingError, SimulationError
from repro.network.channels import Channel
from repro.network.messages import Message
from repro.network.simulator import (
    CpuModel,
    SimulatedNode,
    Simulator,
    merge_cost,
    receive_ops,
    sort_cost,
)
from repro.streaming.windows import Window

WINDOW = Window(0, 1000)


class Recorder(SimulatedNode):
    """Node that records delivered messages with their delivery times."""

    def __init__(self, node_id, ops_per_second=1e9):
        super().__init__(node_id, ops_per_second=ops_per_second)
        self.received = []

    def on_message(self, message, now):
        self.received.append((message, now))


class TestCpuModel:
    def test_work_serializes(self):
        cpu = CpuModel(100.0)
        assert cpu.execute(50.0, now=0.0) == pytest.approx(0.5)
        assert cpu.execute(50.0, now=0.0) == pytest.approx(1.0)

    def test_idle_time_not_accumulated(self):
        cpu = CpuModel(100.0)
        cpu.execute(10.0, now=0.0)
        assert cpu.execute(10.0, now=5.0) == pytest.approx(5.1)

    def test_total_ops_tracked(self):
        cpu = CpuModel(100.0)
        cpu.execute(30.0, now=0.0)
        cpu.execute(20.0, now=0.0)
        assert cpu.total_ops == 50.0

    def test_negative_work_rejected(self):
        with pytest.raises(SimulationError):
            CpuModel(1.0).execute(-1.0, now=0.0)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuModel(0.0)


class TestCostHelpers:
    def test_sort_cost_superlinear(self):
        assert sort_cost(1000) > 2 * sort_cost(500)

    def test_sort_cost_small_inputs(self):
        assert sort_cost(0) == 0.0
        assert sort_cost(1) == 1.0

    def test_merge_cost_scales_with_runs(self):
        assert merge_cost(1000, 8) > merge_cost(1000, 2)

    def test_merge_single_run_linear(self):
        assert merge_cost(1000, 1) == 1000.0

    def test_merge_cost_empty(self):
        assert merge_cost(0, 4) == 0.0

    def test_sort_more_expensive_than_merge_per_element(self):
        # The cost model encodes bulk sort >> sequential merge, which is
        # what separates Scotty's root from Desis's root.
        assert sort_cost(10_000) > merge_cost(10_000, 16)

    def test_receive_ops_proportional_to_payload(self):
        assert receive_ops(160) - receive_ops(0) == pytest.approx(120.0)


class TestScheduling:
    def test_actions_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(2.0, lambda t: order.append("b"))
        simulator.schedule(1.0, lambda t: order.append("a"))
        simulator.run()
        assert order == ["a", "b"]

    def test_ties_run_in_schedule_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(1.0, lambda t: order.append(1))
        simulator.schedule(1.0, lambda t: order.append(2))
        simulator.run()
        assert order == [1, 2]

    def test_past_scheduling_rejected(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda t: simulator.schedule(0.5, lambda t2: None))
        with pytest.raises(SimulationError):
            simulator.run()

    def test_run_until_leaves_future_events(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda t: fired.append(t))
        simulator.schedule(5.0, lambda t: fired.append(t))
        simulator.run(until=2.0)
        assert fired == [1.0]
        assert simulator.pending == 1

    def test_max_events_guard(self):
        simulator = Simulator()

        def reschedule(t):
            simulator.schedule(t + 1.0, reschedule)

        simulator.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            simulator.run(max_events=10)

    def test_clock_advances(self):
        simulator = Simulator()
        simulator.schedule(3.5, lambda t: None)
        assert simulator.run() == 3.5


class TestRouting:
    def make_pair(self):
        simulator = Simulator()
        a = Recorder(1)
        b = Recorder(2)
        simulator.add_node(a)
        simulator.add_node(b)
        simulator.connect(Channel(1, 2, bandwidth_bps=1e6, latency_s=0.001))
        return simulator, a, b

    def test_message_delivered_with_channel_delay(self):
        simulator, a, b = self.make_pair()
        message = Message(sender=1, window=WINDOW)
        simulator.schedule(0.0, lambda t: a.send(message, 2, t))
        simulator.run()
        assert len(b.received) == 1
        _, delivery = b.received[0]
        assert delivery == pytest.approx(32 / 1e6 + 0.001)

    def test_missing_channel_rejected(self):
        simulator, a, b = self.make_pair()
        message = Message(sender=2, window=WINDOW)
        simulator.schedule(0.0, lambda t: b.send(message, 1, t))
        with pytest.raises(RoutingError):
            simulator.run()

    def test_duplicate_node_rejected(self):
        simulator, a, _ = self.make_pair()
        with pytest.raises(ConfigurationError):
            simulator.add_node(Recorder(1))

    def test_duplicate_channel_rejected(self):
        simulator, _, _ = self.make_pair()
        with pytest.raises(ConfigurationError):
            simulator.connect(Channel(1, 2))

    def test_channel_to_unknown_node_rejected(self):
        simulator = Simulator()
        simulator.add_node(Recorder(1))
        with pytest.raises(ConfigurationError):
            simulator.connect(Channel(1, 99))

    def test_totals_aggregate_channels(self):
        simulator, a, b = self.make_pair()
        message = Message(sender=1, window=WINDOW)
        simulator.schedule(0.0, lambda t: a.send(message, 2, t))
        simulator.schedule(1.0, lambda t: a.send(message, 2, t))
        simulator.run()
        assert simulator.total_network_messages() == 2
        assert simulator.total_network_bytes() == 64


class TestNodeLifecycle:
    def test_unattached_node_cannot_send(self):
        node = Recorder(1)
        with pytest.raises(SimulationError):
            node.send(Message(sender=1, window=WINDOW), 2, 0.0)

    def test_on_start_called_once(self):
        class Starter(Recorder):
            def __init__(self):
                super().__init__(1)
                self.starts = 0

            def on_start(self, now):
                self.starts += 1

        simulator = Simulator()
        node = Starter()
        simulator.add_node(node)
        simulator.schedule(0.0, lambda t: None)
        simulator.run()
        simulator.schedule(1.0, lambda t: None)
        simulator.run()
        assert node.starts == 1

    def test_work_charged_to_node_cpu(self):
        node = Recorder(1, ops_per_second=100.0)
        finish = node.work(50.0, now=0.0)
        assert finish == pytest.approx(0.5)
        assert node.cpu.total_ops == 50.0
