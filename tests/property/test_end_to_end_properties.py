"""End-to-end property: the simulated deployment equals the oracle.

The strongest property in the suite: for random small workloads, random
quantiles and random γ, run the *full* simulated Dema deployment — driver,
channels, CPU model, protocol — and compare every window's result against
the brute-force oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.network.topology import TopologyConfig
from repro.streaming.events import Event
from repro.testing import verify_outcomes


@st.composite
def deployments(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=3))
    streams = {}
    for node_id in range(1, n_nodes + 1):
        n_events = draw(st.integers(min_value=0, max_value=40))
        values = draw(
            st.lists(
                st.floats(
                    min_value=-1e6, max_value=1e6, allow_nan=False
                ),
                min_size=n_events,
                max_size=n_events,
            )
        )
        timestamps = sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=2_999),
                    min_size=n_events,
                    max_size=n_events,
                )
            )
        )
        streams[node_id] = [
            Event(value=v, timestamp=t, node_id=node_id, seq=i)
            for i, (v, t) in enumerate(zip(values, timestamps))
        ]
    q = draw(st.floats(min_value=0.01, max_value=1.0))
    gamma = draw(st.integers(min_value=2, max_value=40))
    return streams, q, gamma


@given(deployments())
@settings(max_examples=120, deadline=None)
def test_simulated_deployment_equals_oracle(case):
    streams, q, gamma = case
    if not any(streams.values()):
        return
    query = QuantileQuery(q=q, window_length_ms=1000, gamma=gamma)
    engine = DemaEngine(
        query, TopologyConfig(n_local_nodes=len(streams))
    )
    report = engine.run(streams)
    verification = verify_outcomes(report.outcomes, streams, query)
    assert verification.is_exact, verification.summary()


@given(deployments(), st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_simulated_deployment_exact_under_loss(case, loss_seed):
    from repro.core.reliability import ReliabilityConfig

    streams, q, gamma = case
    if not any(streams.values()):
        return
    query = QuantileQuery(q=q, window_length_ms=1000, gamma=gamma)
    engine = DemaEngine(
        query,
        TopologyConfig(
            n_local_nodes=len(streams), loss_rate=0.1, loss_seed=loss_seed
        ),
        reliability=ReliabilityConfig(timeout_s=0.05, max_retries=30),
    )
    report = engine.run(streams)
    assert engine.root.aborted_windows == 0
    verification = verify_outcomes(report.outcomes, streams, query)
    assert verification.is_exact, verification.summary()
