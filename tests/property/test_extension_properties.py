"""Property tests for the extension subsystems.

Covers multi-quantile sharing, per-node γ optimality, lossy-channel
accounting, out-of-order delivery, and query grouping.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adaptive import NodeGammaController, optimal_gamma, transfer_cost
from repro.core.concurrent import group_queries
from repro.core.engine import dema_quantile
from repro.core.multi import dema_quantiles
from repro.core.query import QuantileQuery
from repro.streaming.aggregates import exact_quantile
from repro.streaming.events import make_events

bounded_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def multi_quantile_cases(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=3))
    windows = {}
    for node_id in range(1, n_nodes + 1):
        values = draw(
            st.lists(bounded_floats, min_size=0, max_size=60)
        )
        windows[node_id] = make_events(values, node_id=node_id)
    if not any(windows.values()):
        windows[1] = make_events([draw(bounded_floats)], node_id=1)
    qs = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=1,
            max_size=5,
        )
    )
    gamma = draw(st.integers(min_value=2, max_value=50))
    return windows, qs, gamma


@given(multi_quantile_cases())
@settings(max_examples=150, deadline=None)
def test_multi_quantile_agrees_with_singles_and_oracle(case):
    windows, qs, gamma = case
    result = dema_quantiles(windows, qs, gamma)
    all_values = [e.value for events in windows.values() for e in events]
    for q in set(qs):
        assert result.values[q] == exact_quantile(all_values, q)
        single = dema_quantile(windows, q=q, gamma=gamma)
        assert result.values[q] == single.value
        # The union fetch is never larger than any single query's dataset
        # and never smaller than the largest single candidate set.
        assert result.candidate_events >= single.candidate_events
    assert result.candidate_events <= result.global_window_size


@given(
    st.dictionaries(
        keys=st.integers(min_value=1, max_value=8),
        values=st.tuples(
            st.integers(min_value=0, max_value=10**6),
            st.integers(min_value=0, max_value=50),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=200, deadline=None)
def test_per_node_gamma_is_per_node_optimal(observations):
    controller = NodeGammaController(10)
    sizes = {node: size for node, (size, _) in observations.items()}
    candidates = {node: m for node, (_, m) in observations.items()}
    updated = controller.observe(sizes, candidates)
    for node_id, gamma in updated.items():
        effective_m = max(candidates.get(node_id, 0), 1)
        expected = optimal_gamma(sizes[node_id], effective_m)
        assert gamma == expected
        # Integer optimality of the per-node cost.
        for neighbour in (gamma - 1, gamma + 1):
            if 2 <= neighbour <= max(sizes[node_id], 2):
                assert transfer_cost(
                    gamma, sizes[node_id], effective_m
                ) <= transfer_cost(neighbour, sizes[node_id], effective_m)


@given(
    st.floats(min_value=0.0, max_value=0.9),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=60),
)
@settings(max_examples=150, deadline=None)
def test_lossy_channel_conservation(loss_rate, seed, n_messages):
    from repro.network.channels import Channel
    from repro.network.messages import Message
    from repro.streaming.windows import Window

    channel = Channel(
        1, 0, bandwidth_bps=1e6, latency_s=0.0,
        loss_rate=loss_rate, loss_seed=seed,
    )
    delivered = 0
    for i in range(n_messages):
        outcome = channel.transmit(
            Message(sender=1, window=Window(0, 1)), now=float(i)
        )
        if outcome is not None:
            delivered += 1
    stats = channel.stats
    assert stats.messages == n_messages
    assert delivered + stats.dropped == n_messages
    assert stats.bytes == n_messages * 32  # lost bytes still sent


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5_000),  # event time
            st.integers(min_value=0, max_value=500),    # delay
        ),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=150, deadline=None)
def test_unordered_feed_delivers_everything_in_arrival_order(spec):
    from repro.network.driver import BatchSourceDriver
    from repro.network.simulator import Simulator
    from repro.streaming.windows import TumblingWindows

    events = make_events(
        [float(i) for i in range(len(spec))], timestamp_step=0
    )
    events = [
        type(e)(value=e.value, timestamp=ts, node_id=e.node_id, seq=e.seq)
        for e, (ts, _) in zip(events, spec)
    ]
    arrivals = [
        (event, ts + delay) for event, (ts, delay) in zip(events, spec)
    ]

    received = []

    class Recorder:
        def ingest(self, batch, now):
            received.extend((e, now) for e in batch)
            return now

        def on_window_complete(self, window, now):
            pass

    simulator = Simulator()
    driver = BatchSourceDriver(simulator)
    driver.feed_unordered(Recorder(), arrivals, TumblingWindows(1000))
    simulator.run()

    assert len(received) == len(arrivals)
    assert {e.key for e, _ in received} == {e.key for e, _ in arrivals}
    times = [now for _, now in received]
    assert times == sorted(times)
    expected_arrival = {e.key: a / 1000.0 for e, a in arrivals}
    for event, now in received:
        assert now == pytest.approx(expected_arrival[event.key])


@given(
    st.lists(
        st.tuples(
            st.sampled_from([500, 1000, 2000]),            # length
            st.sampled_from([None, 250, 500, 1000]),       # step
            st.sampled_from([10, 50, 100]),                # gamma
            st.floats(min_value=0.05, max_value=1.0),      # q
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=150, deadline=None)
def test_query_grouping_partitions(specs):
    queries = []
    for length, step, gamma, q in specs:
        if step is not None and step > length:
            step = length
        queries.append(
            QuantileQuery(
                q=q, window_length_ms=length, window_step_ms=step, gamma=gamma
            )
        )
    groups = group_queries(queries)
    seen = [index for group in groups for index, _ in group.queries]
    assert sorted(seen) == list(range(len(queries)))
    for group in groups:
        shapes = {
            (query.window_length_ms, query.window_step_ms, query.gamma)
            for _, query in group.queries
        }
        assert len(shapes) == 1
    shapes_across = [group.shape for group in groups]
    assert len(shapes_across) == len(set(shapes_across))


@given(
    st.lists(bounded_floats, min_size=1, max_size=300),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_kll_invariants(values, n_parts, seed):
    from repro.sketches.kll import KllSketch

    parts = [KllSketch(32, seed=seed + i) for i in range(n_parts)]
    for index, value in enumerate(values):
        parts[index % n_parts].add(value)
    merged = parts[0]
    for part in parts[1:]:
        merged.merge(part)

    # Weight conservation and exact extremes survive any merge order.
    assert merged.count == len(values)
    pairs = merged.to_weighted_tuples()
    assert sum(weight for _, weight in pairs) == len(values)
    assert merged.min == min(values)
    assert merged.max == max(values)
    # Quantiles are monotone and bounded by the true extremes.
    qs = [i / 10 for i in range(11)]
    estimates = [merged.quantile(q) for q in qs]
    assert all(a <= b for a, b in zip(estimates, estimates[1:]))
    assert estimates[0] == merged.min
    assert estimates[-1] == merged.max
    # Every retained item is one of the inputs (compaction never invents).
    inputs = set(values)
    assert all(item in inputs for item, _ in pairs)
