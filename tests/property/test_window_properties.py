"""Properties of window assigners and the sorted-window structure."""

from hypothesis import given, settings, strategies as st

from repro.core.slicing import slice_sorted_events
from repro.core.sorted_window import SortedLocalWindow
from repro.streaming.events import event_key, make_events
from repro.streaming.windows import SessionWindows, SlidingWindows, TumblingWindows

timestamps = st.integers(min_value=0, max_value=10**9)


@given(timestamps, st.integers(min_value=1, max_value=10**6))
@settings(max_examples=200, deadline=None)
def test_tumbling_windows_partition_time(timestamp, length):
    assigner = TumblingWindows(length)
    windows = assigner.assign(timestamp)
    assert len(windows) == 1
    window = windows[0]
    assert window.contains(timestamp)
    assert window.start % length == 0
    assert window.length == length


@given(
    timestamps,
    st.integers(min_value=1, max_value=1000),
    st.integers(min_value=1, max_value=1000),
)
@settings(max_examples=200, deadline=None)
def test_sliding_windows_cover_and_bound(timestamp, length, step):
    if step > length:
        step = length
    assigner = SlidingWindows(length, step)
    windows = assigner.assign(timestamp)
    assert windows
    expected = -(-length // step)  # ceil
    assert len(windows) <= expected
    for window in windows:
        assert window.contains(timestamp)
        assert window.start % step == 0
    starts = [w.start for w in windows]
    assert starts == sorted(starts)


@given(st.lists(timestamps, min_size=1, max_size=60),
       st.integers(min_value=1, max_value=10**4))
@settings(max_examples=200, deadline=None)
def test_session_windows_disjoint_and_cover(stamps, gap):
    assigner = SessionWindows(gap)
    events = [
        event
        for i, t in enumerate(stamps)
        for event in make_events([0.0], start_timestamp=t, start_seq=i)
    ]
    sessions = assigner.sessions_for_events(events)
    # Every event lies in exactly one session.
    for event in events:
        containing = [s for s in sessions if s.contains(event.timestamp)]
        assert len(containing) == 1
    # Sessions are disjoint and separated by at least the gap.
    for left, right in zip(sessions, sessions[1:]):
        assert left.end <= right.start
    # No session is longer than events + gap allow.
    for session in sessions:
        assert session.length >= gap


@given(st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    max_size=300,
))
@settings(max_examples=200, deadline=None)
def test_sorted_window_is_a_sorting_network(values):
    window = SortedLocalWindow()
    window.add_all(make_events(values))
    sealed = window.seal()
    assert [e.value for e in sealed] == sorted(values)
    assert [e.key for e in sealed] == sorted(e.key for e in sealed)


@given(
    st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
             max_size=200),
    st.integers(min_value=2, max_value=50),
)
@settings(max_examples=200, deadline=None)
def test_slicing_invariants(values, gamma):
    events = sorted(make_events(values), key=event_key)
    sliced = slice_sorted_events(events, gamma, node_id=0)
    assert sliced.window_size == len(values)
    assert sum(s.count for s in sliced.synopses) == len(values)
    # Slice sizes: every slice <= gamma + 1 (remainder fold), and >= 2
    # except a single-event window.
    for run in sliced.runs:
        assert len(run) <= gamma + 1
        if len(values) > 1:
            assert len(run) >= 2
    # Reassembling runs reproduces the sorted window.
    reassembled = [e for run in sliced.runs for e in run]
    assert reassembled == events
