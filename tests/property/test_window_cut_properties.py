"""Properties of units and the window-cut algorithm."""

from hypothesis import given, settings, strategies as st

from repro.core.slicing import slice_sorted_events
from repro.core.units import build_units
from repro.core.window_cut import rank_bound_candidates, window_cut
from repro.streaming.events import event_key, make_events


@st.composite
def sliced_synopses(draw):
    """Random multi-node sliced windows with their backing runs."""
    n_nodes = draw(st.integers(min_value=1, max_value=4))
    gamma = draw(st.integers(min_value=2, max_value=30))
    synopses = []
    runs = {}
    all_events = []
    for node_id in range(1, n_nodes + 1):
        values = draw(
            st.lists(
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                min_size=0,
                max_size=80,
            )
        )
        events = sorted(make_events(values, node_id=node_id), key=event_key)
        sliced = slice_sorted_events(events, gamma, node_id)
        synopses.extend(sliced.synopses)
        for index in range(sliced.n_slices):
            runs[(node_id, index)] = sliced.run_for(index)
        all_events.extend(events)
    all_events.sort(key=event_key)
    return synopses, runs, all_events


@given(sliced_synopses(), st.floats(min_value=0.001, max_value=1.0))
@settings(max_examples=250, deadline=None)
def test_units_partition_ranks(case, q):
    synopses, _, all_events = case
    units = build_units(synopses)
    assert sum(u.size for u in units) == len(all_events)
    next_rank = 1
    for unit in units:
        assert unit.pos_start == next_rank
        next_rank = unit.pos_end + 1
    if all_events:
        assert next_rank == len(all_events) + 1


@given(sliced_synopses(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=250, deadline=None)
def test_window_cut_equals_reference_and_is_sound(case, rank_seed):
    synopses, runs, all_events = case
    if not all_events:
        return
    rank = rank_seed % len(all_events) + 1

    fast = window_cut(synopses, rank)
    slow = rank_bound_candidates(synopses, rank)
    assert fast.candidate_ids == slow.candidate_ids
    assert fast.n_below == slow.n_below

    # Soundness: merged candidates at local_rank give the true global event.
    candidate_events = []
    for synopsis in fast.candidates:
        candidate_events.extend(runs[synopsis.slice_id])
    candidate_events.sort(key=event_key)
    truth = all_events[rank - 1]
    assert candidate_events[fast.local_rank - 1] == truth


@given(sliced_synopses())
@settings(max_examples=150, deadline=None)
def test_unit_rank_bounds_bracket_true_ranks(case):
    synopses, _, all_events = case
    if not all_events:
        return
    global_rank = {e.key: i + 1 for i, e in enumerate(all_events)}
    for unit in build_units(synopses):
        for member in unit.members:
            assert unit.min_rank(member) <= global_rank[member.first_key]
            assert unit.max_rank(member) >= global_rank[member.last_key]
            assert unit.pos_start <= unit.min_rank(member)
            assert unit.max_rank(member) <= unit.pos_end


@given(sliced_synopses(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=150, deadline=None)
def test_pruned_slices_are_classifiable(case, rank_seed):
    """Every non-candidate slice lies strictly below or above the rank."""
    synopses, runs, all_events = case
    if not all_events:
        return
    rank = rank_seed % len(all_events) + 1
    cut = window_cut(synopses, rank)
    candidate_ids = cut.candidate_ids
    truth_key = all_events[rank - 1].key
    for synopsis in synopses:
        if synopsis.slice_id in candidate_ids:
            continue
        events = runs[synopsis.slice_id]
        assert all(e.key != truth_key for e in events)
