"""Property: the columnar hot path is bit-identical to the object path.

The columnar refactor's contract is that it changes *where* bytes live,
never *what* the protocol computes: the same workload through
``SortedLocalWindow`` fed per-event ``Event`` objects and fed
``EventColumns`` batches must seal the same window (bit for bit, NaN
payloads included), cut the same ranks, and serve the same quantiles —
and the numpy backend must be indistinguishable from the pure-python one
all the way up through a live cluster and a sharded mesh run.

Event fingerprints compare ``struct.pack``ed value bits, not ``==``:
NaN events are never equal to anything, yet must still come out in the
exact order the object path would have produced.
"""

import contextlib
import functools
import math
import signal
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import dema_quantile
from repro.errors import SliceError
from repro.core.slicing import slice_sorted_events
from repro.core.sorted_window import SortedLocalWindow
from repro.streaming.columns import EventColumns, get_backend, set_backend
from repro.streaming.events import Event, event_key, make_events

_F64 = struct.Struct("<d")


def _bits(event):
    """Bit-exact fingerprint; NaN payloads compare by representation."""
    return (
        _F64.pack(event.value), event.timestamp, event.node_id, event.seq
    )


def _window_bits(events):
    return [_bits(e) for e in events]


def _synopsis_bits(synopsis):
    first, last = synopsis.first_key, synopsis.last_key
    return (
        _F64.pack(first[0]), first[1], first[2],
        _F64.pack(last[0]), last[1], last[2],
        synopsis.count, synopsis.slice_index, synopsis.n_slices,
        synopsis.node_id,
    )


# Values drawn from a small pool (forcing exact duplicates) or from the
# full float line including NaN and infinities.  Every draw is re-packed
# into a *fresh* float object, the way wire decode always produces them:
# a shared NaN object would flip tuple comparisons through CPython's
# identity fast path, an order production never sees.
_values = st.one_of(
    st.sampled_from([0.0, -0.0, 1.0, -1.0, float("nan"), float("inf")]),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
).map(lambda v: _F64.unpack(_F64.pack(v))[0])


@st.composite
def event_batches(draw):
    """A chunked arrival sequence: list of chunks of events.

    Timestamps are drawn independently, so chunks routinely contain
    late events relative to earlier chunks.
    """
    n = draw(st.integers(min_value=0, max_value=60))
    events = [
        Event(
            value=draw(_values),
            timestamp=draw(st.integers(min_value=0, max_value=50)),
            node_id=draw(st.integers(min_value=1, max_value=3)),
            seq=i,
        )
        for i in range(n)
    ]
    chunks = []
    while events:
        size = draw(st.integers(min_value=1, max_value=max(1, len(events))))
        chunks.append(events[:size])
        events = events[size:]
    return chunks


@pytest.fixture(params=["numpy", "python"], autouse=True)
def backend(request):
    previous = set_backend(request.param)
    yield request.param
    set_backend(previous)


@given(event_batches(), st.booleans())
@settings(max_examples=150, deadline=None)
def test_sealed_windows_identical(chunks, compact_between):
    object_window = SortedLocalWindow()
    columnar_window = SortedLocalWindow()
    for chunk in chunks:
        for event in chunk:
            object_window.add(event)
        columnar_window.add_all(EventColumns.from_events(chunk))
        if compact_between:
            # Mid-window cuts force the incremental merge path (run +
            # pending) instead of one big terminal sort.
            object_window.sorted_events()
            columnar_window.sorted_events()
    sealed_obj = object_window.seal()
    sealed_col = columnar_window.seal()
    assert _window_bits(sealed_col) == _window_bits(sealed_obj)


@given(event_batches(), st.integers(min_value=2, max_value=20))
@settings(max_examples=100, deadline=None)
def test_cuts_identical(chunks, gamma):
    events = [event for chunk in chunks for event in chunk]
    object_window = SortedLocalWindow()
    columnar_window = SortedLocalWindow()
    for event in events:
        object_window.add(event)
    if events:
        columnar_window.add_all(EventColumns.from_events(events))

    sealed_obj = object_window.seal()
    sealed_col = columnar_window.seal()
    try:
        sliced_obj = slice_sorted_events(sealed_obj, gamma, node_id=1)
    except SliceError:
        # NaN can leave the "sorted" run unordered, which synopsis
        # validation rejects — the columnar cut must reject identically.
        with pytest.raises(SliceError):
            slice_sorted_events(sealed_col, gamma, node_id=1)
        return
    sliced_col = slice_sorted_events(sealed_col, gamma, node_id=1)

    assert sliced_col.window_size == sliced_obj.window_size
    assert [_synopsis_bits(s) for s in sliced_col.synopses] == [
        _synopsis_bits(s) for s in sliced_obj.synopses
    ]
    assert [_window_bits(run) for run in sliced_col.runs] == [
        _window_bits(run) for run in sliced_obj.runs
    ]


@given(
    st.dictionaries(
        keys=st.integers(min_value=1, max_value=3),
        values=st.lists(
            st.floats(
                min_value=-1e9, max_value=1e9,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
            max_size=40,
        ),
        min_size=1,
        max_size=3,
    ),
    st.floats(min_value=0.01, max_value=1.0),
    st.integers(min_value=2, max_value=30),
)
@settings(max_examples=100, deadline=None)
def test_served_quantiles_identical(per_node, q, gamma):
    object_windows = {
        node_id: make_events(vals, node_id=node_id)
        for node_id, vals in per_node.items()
    }
    columnar_windows = {
        node_id: EventColumns.from_events(events)
        for node_id, events in object_windows.items()
    }
    expected = dema_quantile(object_windows, q=q, gamma=gamma)
    result = dema_quantile(columnar_windows, q=q, gamma=gamma)
    assert _F64.pack(result.value) == _F64.pack(expected.value)
    assert result.rank == expected.rank
    assert result.global_window_size == expected.global_window_size
    assert result.candidate_events == expected.candidate_events
    assert result.candidate_slices == expected.candidate_slices
    assert result.synopses == expected.synopses


# ---------------------------------------------------------------------------
# Backend identity end to end: the numpy-backed columns and the stdlib
# ``array`` columns must drive a live cluster and a sharded mesh to the
# same windows, the same values and the same wire-byte totals.


@contextlib.contextmanager
def _hard_timeout(seconds: int):
    def on_alarm(signum, frame):
        raise TimeoutError(f"backend identity run exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@functools.lru_cache(maxsize=None)
def _live_outcomes(backend_name: str):
    from repro.bench.generator import GeneratorConfig, workload_columns
    from repro.core.query import QuantileQuery
    from repro.runtime.cluster import LiveClusterConfig, run_live

    previous = set_backend(backend_name)
    try:
        streams = workload_columns(
            [1, 2],
            GeneratorConfig(event_rate=300.0, duration_s=2.0, seed=23),
        )
        config = LiveClusterConfig(
            n_locals=2,
            streams_per_local=2,
            query=QuantileQuery(q=0.5, gamma=64),
            transport="memory",
            timeout_s=60.0,
        )
        with _hard_timeout(120):
            report = run_live(config, streams)
    finally:
        set_backend(previous)
    outcomes = tuple(
        (o.window, _F64.pack(o.value), o.global_window_size,
         o.candidate_events, o.synopses_received)
        for o in sorted(report.outcomes, key=lambda o: o.window)
        if o.value is not None
    )
    return outcomes, report.total_bytes


@functools.lru_cache(maxsize=None)
def _mesh_outcomes(backend_name: str):
    from repro.bench.generator import GeneratorConfig, workload
    from repro.core.query import QuantileQuery
    from repro.mesh import MeshConfig, run_mesh

    previous = set_backend(backend_name)
    try:
        streams = workload(
            [1, 2],
            GeneratorConfig(event_rate=120.0, duration_s=2.0, seed=29),
        )
        config = MeshConfig(
            n_locals=2,
            streams_per_local=1,
            n_shards=2,
            query=QuantileQuery(q=0.5, gamma=64),
            transport="memory",
        )
        with _hard_timeout(120):
            report = run_mesh(config, streams)
    finally:
        set_backend(previous)
    return tuple(
        (o.window, _F64.pack(o.value))
        for o in sorted(report.outcomes, key=lambda o: o.window)
        if o.value is not None
    )


def test_live_run_identical_across_backends():
    numpy_outcomes, numpy_bytes = _live_outcomes("numpy")
    python_outcomes, python_bytes = _live_outcomes("python")
    assert len(numpy_outcomes) >= 2
    assert numpy_outcomes == python_outcomes
    assert numpy_bytes == python_bytes


def test_mesh_run_identical_across_backends():
    numpy_outcomes = _mesh_outcomes("numpy")
    python_outcomes = _mesh_outcomes("python")
    assert len(numpy_outcomes) >= 1
    assert numpy_outcomes == python_outcomes
