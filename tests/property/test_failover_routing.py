"""Property tests for epoch-versioned failover routing.

The failover guarantee rests on ownership staying a *pure function* of
``(window, epoch, dead)``: any two nodes holding the same map agree on
every window's owner without exchanging another byte, and any failover
sequence leaves each window with exactly one live owner.  These
properties are what the locals' re-routing, the relays' replay targets
and the coordinator's takeover all silently assume.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.routing import ShardMap, shard_of

WINDOW_MS = 1_000

#: A deployment small enough to exhaust and big enough to ring-walk.
n_shards_st = st.integers(min_value=1, max_value=8)


@st.composite
def failover_sequences(draw):
    """``(n_shards, kills)``: an arbitrary order of shard deaths that
    always leaves at least one survivor (duplicates allowed — duplicate
    failure reports are part of the contract)."""
    n_shards = draw(n_shards_st)
    distinct = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_shards - 1),
            unique=True,
            max_size=n_shards - 1,
        )
    )
    kills = draw(st.permutations(distinct + distinct))
    return n_shards, kills


def apply_kills(n_shards: int, kills) -> ShardMap:
    shard_map = ShardMap(n_shards)
    for index in kills:
        shard_map = shard_map.fail(index)
    return shard_map


def window_starts(n_shards: int):
    """Enough grid windows to hit every shard several times."""
    return [index * WINDOW_MS for index in range(4 * n_shards)]


class TestOwnershipUnderFailover:
    @given(failover_sequences())
    @settings(max_examples=200)
    def test_every_window_has_exactly_one_live_owner(self, case):
        n_shards, kills = case
        shard_map = apply_kills(n_shards, kills)
        for start in window_starts(n_shards):
            owner = shard_map.owner(start, WINDOW_MS)
            assert shard_map.is_live(owner)
            # "Exactly one": ownership is a function, and re-evaluating
            # the same map yields the same single owner.
            assert shard_map.owner(start, WINDOW_MS) == owner

    @given(failover_sequences())
    @settings(max_examples=200)
    def test_same_epoch_same_dead_never_disagree(self, case):
        """Two nodes that converged on the same ``(epoch, dead)`` pair
        route identically — regardless of the order each one learned
        the failures in."""
        n_shards, kills = case
        one = apply_kills(n_shards, kills)
        other = apply_kills(n_shards, list(reversed(kills)))
        assert one.dead == other.dead
        assert one.epoch == other.epoch == len(one.dead)
        for start in window_starts(n_shards):
            assert one.owner(start, WINDOW_MS) == other.owner(
                start, WINDOW_MS
            )

    @given(failover_sequences())
    @settings(max_examples=200)
    def test_fail_is_idempotent_and_epochs_only_grow(self, case):
        n_shards, kills = case
        shard_map = ShardMap(n_shards)
        for index in kills:
            before = shard_map
            shard_map = shard_map.fail(index)
            if index in before.dead:
                assert shard_map is before  # duplicate report: no bump
            else:
                assert shard_map.epoch == before.epoch + 1
                assert shard_map.dead == before.dead | {index}

    @given(failover_sequences())
    @settings(max_examples=200)
    def test_surviving_shards_keep_their_own_windows(self, case):
        """Failover only re-homes the dead shards' windows; a live
        shard's original share never moves."""
        n_shards, kills = case
        shard_map = apply_kills(n_shards, kills)
        for start in window_starts(n_shards):
            home = shard_of(start, WINDOW_MS, n_shards)
            if shard_map.is_live(home):
                assert shard_map.owner(start, WINDOW_MS) == home

    @given(n_shards_st)
    def test_healthy_map_matches_shard_of(self, n_shards):
        shard_map = ShardMap(n_shards)
        for start in window_starts(n_shards):
            assert shard_map.owner(start, WINDOW_MS) == shard_of(
                start, WINDOW_MS, n_shards
            )


class TestMapValidation:
    @given(n_shards_st)
    def test_killing_every_shard_raises(self, n_shards):
        shard_map = ShardMap(n_shards)
        for index in range(n_shards - 1):
            shard_map = shard_map.fail(index)
        with pytest.raises(ValueError):
            shard_map.fail(n_shards - 1)

    def test_out_of_range_fail_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(3).fail(3)
        with pytest.raises(ValueError):
            ShardMap(3).fail(-1)

    def test_epoch_below_dead_count_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(3, epoch=0, dead=frozenset({1}))
