"""Conservation and ordering properties of the network simulator."""

from hypothesis import given, settings, strategies as st

from repro.network.channels import Channel
from repro.network.messages import EventBatchMessage
from repro.network.metrics import NetworkMetrics
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import make_events
from repro.streaming.windows import Window

WINDOW = Window(0, 1000)


class Collector(SimulatedNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.deliveries = []

    def on_message(self, message, now):
        self.deliveries.append((message, now))


batches = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),  # send time
        st.integers(min_value=0, max_value=20),  # batch size
    ),
    min_size=1,
    max_size=30,
)


@given(batches, st.floats(min_value=1e3, max_value=1e9),
       st.floats(min_value=0, max_value=1.0))
@settings(max_examples=150, deadline=None)
def test_every_sent_event_delivered_exactly_once(sends, bandwidth, latency):
    simulator = Simulator()
    sender = Collector(1)
    receiver = Collector(0)
    simulator.add_node(sender)
    simulator.add_node(receiver)
    simulator.connect(
        Channel(1, 0, bandwidth_bps=bandwidth, latency_s=latency)
    )
    sent_events = 0
    seq = 0
    for send_time, size in sorted(sends):
        events = tuple(make_events(range(size), node_id=1, start_seq=seq))
        seq += size
        sent_events += size
        message = EventBatchMessage(sender=1, window=WINDOW, events=events)
        simulator.schedule(
            send_time, lambda t, m=message: sender.send(m, 0, t)
        )
    simulator.run()

    delivered = [e for m, _ in receiver.deliveries for e in m.events]
    assert len(delivered) == sent_events
    assert len({e.key for e in delivered}) == sent_events
    metrics = NetworkMetrics.capture(simulator)
    assert metrics.total_events_on_wire == sent_events
    assert metrics.total_messages == len(sends)


@given(batches, st.floats(min_value=1e3, max_value=1e7))
@settings(max_examples=150, deadline=None)
def test_channel_is_fifo_and_causal(sends, bandwidth):
    simulator = Simulator()
    sender = Collector(1)
    receiver = Collector(0)
    simulator.add_node(sender)
    simulator.add_node(receiver)
    simulator.connect(Channel(1, 0, bandwidth_bps=bandwidth, latency_s=0.01))
    ordered_sends = sorted(sends)
    for index, (send_time, _) in enumerate(ordered_sends):
        events = tuple(make_events([float(index)], node_id=1, start_seq=index))
        message = EventBatchMessage(sender=1, window=WINDOW, events=events)
        simulator.schedule(
            send_time, lambda t, m=message: sender.send(m, 0, t)
        )
    simulator.run()

    # FIFO: messages arrive in send order; causal: never before send time.
    arrival_order = [m.events[0].seq for m, _ in receiver.deliveries]
    assert arrival_order == sorted(arrival_order)
    for message, arrival in receiver.deliveries:
        send_time = ordered_sends[message.events[0].seq][0]
        assert arrival >= send_time


@given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=1,
                max_size=50),
       st.floats(min_value=1.0, max_value=1e6))
@settings(max_examples=150, deadline=None)
def test_cpu_work_conserved_and_serialized(work_items, budget):
    from repro.network.simulator import CpuModel

    cpu = CpuModel(budget)
    finish = 0.0
    for work in work_items:
        finish = cpu.execute(work, now=0.0)
    assert cpu.total_ops == sum(work_items)
    assert finish >= sum(work_items) / budget - 1e-9
