"""Properties of the t-digest: conservation, monotonicity, merge invariance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.tdigest import TDigest

bounded_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
datasets = st.lists(bounded_floats, min_size=1, max_size=400)


@given(datasets)
@settings(max_examples=150, deadline=None)
def test_weight_conserved(values):
    digest = TDigest(50)
    digest.add_all(values)
    assert digest.count == len(values)
    assert sum(c.weight for c in digest.centroids()) == pytest.approx(
        len(values)
    )


@given(datasets)
@settings(max_examples=150, deadline=None)
def test_min_max_exact(values):
    digest = TDigest(50)
    digest.add_all(values)
    assert digest.min == min(values)
    assert digest.max == max(values)


@given(datasets)
@settings(max_examples=100, deadline=None)
def test_quantile_monotone_and_bounded(values):
    digest = TDigest(50)
    digest.add_all(values)
    qs = [i / 20 for i in range(21)]
    estimates = [digest.quantile(q) for q in qs]
    for left, right in zip(estimates, estimates[1:]):
        assert left <= right + 1e-9
    assert all(digest.min - 1e-9 <= e <= digest.max + 1e-9 for e in estimates)


@given(datasets)
@settings(max_examples=100, deadline=None)
def test_cdf_monotone_and_bounded(values):
    digest = TDigest(50)
    digest.add_all(values)
    span = digest.max - digest.min
    xs = [digest.min + span * i / 10 for i in range(11)]
    cdfs = [digest.cdf(x) for x in xs]
    for left, right in zip(cdfs, cdfs[1:]):
        assert left <= right + 1e-9
    assert all(0.0 <= c <= 1.0 for c in cdfs)


@given(datasets, st.integers(min_value=1, max_value=5))
@settings(max_examples=100, deadline=None)
def test_merge_preserves_weight_and_extremes(values, n_parts):
    parts = [TDigest(50) for _ in range(n_parts)]
    for i, value in enumerate(values):
        parts[i % n_parts].add(value)
    merged = TDigest.merge_all(parts, compression=50)
    assert merged.count == len(values)
    assert merged.min == min(values)
    assert merged.max == max(values)


@given(datasets)
@settings(max_examples=75, deadline=None)
def test_serialization_roundtrip_preserves_distribution(values):
    digest = TDigest(50)
    digest.add_all(values)
    restored = TDigest.from_centroid_tuples(digest.to_centroid_tuples(), 50)
    assert restored.count == pytest.approx(digest.count)
    for q in (0.25, 0.5, 0.75):
        assert restored.quantile(q) == pytest.approx(
            digest.quantile(q), rel=1e-6, abs=1e-6
        )


@given(st.lists(bounded_floats, min_size=50, max_size=400))
@settings(max_examples=75, deadline=None)
def test_centroid_budget_holds(values):
    digest = TDigest(20)
    digest.add_all(values)
    assert digest.centroid_count <= 2 * 20 + 10
