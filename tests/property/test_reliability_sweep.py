"""Property: under seeded loss, every window resolves exactly once.

Sweeps root↔local message loss from 0% to 20% against the retransmit
machinery and checks the protocol's delivery contract: every window the
lossless run answers is either answered exactly once — with the *same*
value, since retransmission must not change the data — or explicitly
given up on (counted in ``aborted_windows``).  Nothing hangs, nothing is
answered twice, and no window silently disappears.
"""

import functools

import pytest

from repro.bench.generator import GeneratorConfig, workload
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.core.reliability import ReliabilityConfig
from repro.network.topology import TopologyConfig

LOSS_RATES = (0.0, 0.05, 0.10, 0.20)
SEEDS = (3, 11)

QUERY = QuantileQuery(q=0.5, gamma=32)
N_LOCALS = 2
#: Short timeout, generous retries: at 20% loss a phase may need many
#: attempts, and the property is about eventual resolution, not speed.
RELIABILITY = ReliabilityConfig(timeout_s=0.05, max_retries=40)


@functools.lru_cache(maxsize=None)
def _streams(seed: int):
    generated = workload(
        list(range(1, N_LOCALS + 1)),
        GeneratorConfig(event_rate=200.0, duration_s=3.0, seed=seed),
    )
    return {node: tuple(events) for node, events in generated.items()}


@functools.lru_cache(maxsize=None)
def _lossless_values(seed: int):
    report = DemaEngine(
        QUERY, TopologyConfig(n_local_nodes=N_LOCALS)
    ).run({n: list(s) for n, s in _streams(seed).items()})
    return {
        outcome.window: outcome.value
        for outcome in report.outcomes
        if outcome.value is not None
    }


def _lossy_run(loss_rate: float, seed: int):
    engine = DemaEngine(
        QUERY,
        TopologyConfig(
            n_local_nodes=N_LOCALS, loss_rate=loss_rate, loss_seed=seed
        ),
        reliability=RELIABILITY,
    )
    report = engine.run({n: list(s) for n, s in _streams(seed).items()})
    return engine, report


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("loss_rate", LOSS_RATES)
class TestLossSweep:
    def test_each_window_answered_once_or_given_up(self, loss_rate, seed):
        engine, report = _lossy_run(loss_rate, seed)
        truth = _lossless_values(seed)
        assert len(truth) >= 3

        windows = [o.window for o in report.outcomes]
        assert len(set(windows)) == len(windows), "window answered twice"
        # Answered ∪ aborted covers exactly the lossless window grid.
        assert len(windows) + engine.root.aborted_windows == len(truth)
        assert set(windows) <= set(truth)

    def test_answered_windows_match_the_lossless_values(
        self, loss_rate, seed
    ):
        _engine, report = _lossy_run(loss_rate, seed)
        truth = _lossless_values(seed)
        for outcome in report.outcomes:
            assert outcome.value == truth[outcome.window], (
                f"loss={loss_rate} seed={seed} window={outcome.window}: "
                f"retransmission changed the answer"
            )

    def test_loss_actually_happened_and_was_absorbed(self, loss_rate, seed):
        engine, report = _lossy_run(loss_rate, seed)
        dropped = sum(
            channel.stats.dropped
            for channel in engine.simulator.channels.values()
        )
        if loss_rate == 0.0:
            assert dropped == 0
            assert engine.root.aborted_windows == 0
            assert len(report.outcomes) == len(_lossless_values(seed))
        elif loss_rate >= 0.10:
            # At 5% a short run can dodge every coin flip; from 10% up
            # these seeds provably lose messages, so the sweep exercises
            # the retransmit path rather than vacuously passing.
            assert dropped > 0, "lossy channel never dropped anything"
