"""Property: Dema's answer is bit-identical to the centralized oracle.

This is the paper's central claim (Section 3.1, "Correctness of Dema
approach"): for any workload, any quantile and any slice factor, the value
Dema returns equals the value obtained by sorting the complete dataset and
picking rank ``ceil(q * l_G)``.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.engine import dema_quantile
from repro.streaming.aggregates import exact_quantile
from repro.streaming.events import make_events

values_strategy = st.lists(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    min_size=0,
    max_size=120,
)

node_windows = st.dictionaries(
    keys=st.integers(min_value=1, max_value=6),
    values=values_strategy,
    min_size=1,
    max_size=4,
).filter(lambda d: any(len(v) > 0 for v in d.values()))


@st.composite
def workloads(draw):
    per_node = draw(node_windows)
    q = draw(
        st.floats(min_value=0.001, max_value=1.0, exclude_min=False)
    )
    gamma = draw(st.integers(min_value=2, max_value=200))
    return per_node, q, gamma


@given(workloads())
@settings(max_examples=300, deadline=None)
def test_dema_matches_centralized_oracle(case):
    per_node, q, gamma = case
    windows = {
        node_id: make_events(vals, node_id=node_id)
        for node_id, vals in per_node.items()
    }
    all_values = [v for vals in per_node.values() for v in vals]
    result = dema_quantile(windows, q=q, gamma=gamma)
    assert result.value == exact_quantile(all_values, q)
    assert result.rank == math.ceil(q * len(all_values))


@given(workloads())
@settings(max_examples=150, deadline=None)
def test_transfer_never_exceeds_centralized(case):
    """Dema's event transfer is bounded by the dataset (plus synopsis pairs)."""
    per_node, q, gamma = case
    windows = {
        node_id: make_events(vals, node_id=node_id)
        for node_id, vals in per_node.items()
    }
    total = sum(len(v) for v in per_node.values())
    result = dema_quantile(windows, q=q, gamma=gamma)
    assert result.candidate_events <= total
    # Every slice holds >= 2 events except a possible single-event window
    # per node, so 2*synopses <= total + n_nodes.
    assert 2 * result.synopses <= total + len(per_node)


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    ),
    st.integers(min_value=2, max_value=50),
)
@settings(max_examples=150, deadline=None)
def test_duplicate_heavy_streams_stay_exact(values, gamma):
    """Massive ties across nodes must not break rank arithmetic."""
    windows = {
        1: make_events(values, node_id=1),
        2: make_events(values, node_id=2),  # identical values, distinct keys
    }
    result = dema_quantile(windows, q=0.5, gamma=gamma)
    assert result.value == exact_quantile(values + values, 0.5)
