"""Shard failover: no window left unanswered when a root dies.

The headline property: killing any single root shard mid-run (with or
without a relay tier) yields a run where **every** ground-truth window
is recovered bit-identically to the single-root oracle — none lost,
none mismatched — because the successor replays the dead shard's
windows from the locals' and relays' retained buffers and runs the
unmodified operators on them.

Kills are pinned to a protocol point with
:meth:`~repro.mesh.servers.MeshRootServer.crash_after` (the victim dies
right after its N-th answered window): unpaced replays burst through a
whole run between event-loop ticks, so wall-clock kill schedules always
land after completion and test nothing.
"""

import pytest

from repro.bench.generator import GeneratorConfig, workload
from repro.core.query import QuantileQuery
from repro.errors import ConfigurationError
from repro.faults.plan import ToleranceConfig
from repro.mesh.cluster import classify_outcomes, mesh_oracle, run_mesh
from repro.mesh.config import MeshConfig
from repro.mesh.routing import ShardMap
from repro.mesh.servers import MeshRootServer

#: Fixed γ — the bit-identity configuration.
QUERY = QuantileQuery(q=0.5, gamma=10_000)

# Fast heartbeats drive the failover sweep cadence; the *local* death
# threshold stays loose because nothing here kills a local — a tight
# threshold lets one slow event-loop tick under full-suite load declare
# a healthy local dead and degrade windows spuriously.
TOLERANCE = ToleranceConfig(
    heartbeat_interval_s=0.02, declare_dead_after_s=2.0
)

N_LOCALS = 6


def streams_20_windows():
    """A 20-window tumbling grid: enough for every shard to own several
    windows before and after the kill."""
    return workload(
        list(range(1, N_LOCALS + 1)),
        GeneratorConfig(event_rate=40.0, duration_s=20.0, seed=42),
    )


def mesh_config(**overrides):
    defaults = dict(
        n_locals=N_LOCALS,
        n_shards=2,
        query=QUERY,
        tolerance=TOLERANCE,
        relay_flush_s=0.1,
        timeout_s=30.0,
    )
    defaults.update(overrides)
    return MeshConfig(**defaults)


def kill_after_first_outcome(victim: int):
    async def disturb(ctx):
        ctx.shards[victim].crash_after(1)

    return disturb


def assert_no_window_lost(config, streams, disturb):
    report = run_mesh(config, streams, disturb=disturb)
    classes = classify_outcomes(mesh_oracle(streams, config), report.outcomes)
    assert classes["lost"] == 0, classes
    assert classes["mismatch"] == 0, classes
    assert classes["degraded"] == 0, classes
    assert classes["recovered"] == report.windows > 0
    return report


class TestKillShardFlat:
    @pytest.mark.parametrize("victim", [0, 1])
    def test_any_single_shard_death_recovers_every_window(self, victim):
        config = mesh_config(n_shards=2)
        report = assert_no_window_lost(
            config, streams_20_windows(), kill_after_first_outcome(victim)
        )
        assert report.shard_failovers == 1
        assert report.windows_adopted > 0

    def test_three_shards_survive_one_death(self):
        config = mesh_config(n_shards=3)
        report = assert_no_window_lost(
            config, streams_20_windows(), kill_after_first_outcome(1)
        )
        assert report.shard_failovers == 1
        assert report.windows_adopted > 0

    def test_late_kill_after_several_outcomes(self):
        """A victim that already answered most of its share still hands
        over the tail cleanly (inherit_finalized keeps the answered
        windows answered exactly once)."""

        async def disturb(ctx):
            ctx.shards[0].crash_after(5)

        report = assert_no_window_lost(
            mesh_config(n_shards=2), streams_20_windows(), disturb
        )
        assert report.shard_failovers == 1


class TestKillShardWithRelay:
    @pytest.mark.parametrize("victim", [0, 1])
    def test_relay_replays_retained_frames_to_successor(self, victim):
        config = mesh_config(n_shards=2, relay_fanin=3)
        report = assert_no_window_lost(
            config, streams_20_windows(), kill_after_first_outcome(victim)
        )
        assert report.shard_failovers == 1
        assert report.windows_adopted > 0
        assert report.relay_frames_replayed > 0


class TestFailoverMechanics:
    def test_kill_shard_without_controller_rejected(self):
        """A lone root has no successor: the chaos context refuses."""

        async def disturb(ctx):
            await ctx.kill_shard(0)

        config = mesh_config(n_shards=1)
        with pytest.raises(Exception) as excinfo:
            run_mesh(config, streams_20_windows(), disturb=disturb)
        assert "failover controller" in str(excinfo.value)

    def test_explicit_kill_shard_waits_for_takeover(self):
        """``ctx.kill_shard`` is the wall-clock variant: it crashes the
        shard and blocks until the takeover has applied."""
        observed = {}

        async def disturb(ctx):
            await ctx.kill_shard(0)
            assert ctx.failover is not None
            observed["map"] = ctx.failover.map

        config = mesh_config(n_shards=2)
        report = run_mesh(config, streams_20_windows(), disturb=disturb)
        shard_map = observed["map"]
        assert isinstance(shard_map, ShardMap)
        assert not shard_map.is_live(0)
        assert shard_map.epoch == 1
        assert report.shard_failovers == 1
        # The kill raced the replay from the wall clock, so windows may
        # or may not have been adopted — but none may be lost.
        classes = classify_outcomes(
            mesh_oracle(streams_20_windows(), config), report.outcomes
        )
        assert classes["lost"] == 0
        assert classes["mismatch"] == 0

    def test_adopt_windows_rearms_completion(self):
        """Adopting windows after ``done`` was set must clear it, or the
        cluster's completion barrier would pass with work outstanding."""
        import asyncio

        from repro.core.root_node import DemaRootNode
        from repro.runtime.servers import LiveFabric
        from repro.streaming.windows import Window

        async def scenario():
            shard = MeshRootServer(
                DemaRootNode(
                    1 << 20,
                    local_ids=[1, 2],
                    query=QUERY,
                    ops_per_second=1e9,
                ),
                LiveFabric(asyncio.get_event_loop().time()),
                expected_windows=0,
            )
            shard._account_outcomes()
            assert shard.done.is_set()
            shard.adopt_windows(
                [Window(0, 1_000)], epoch=1, finalized=()
            )
            assert not shard.done.is_set()
            assert shard.windows_adopted == 1

        asyncio.new_event_loop().run_until_complete(scenario())
