"""Validation tests for the mesh deployment config."""

import pytest

from repro.core.query import QuantileQuery
from repro.errors import ConfigurationError
from repro.mesh import MembershipEvent, MeshConfig


class TestMembershipEvent:
    def test_kind_validated(self):
        with pytest.raises(ConfigurationError):
            MembershipEvent(at_ms=1_000, local_id=5, kind="restart")

    def test_local_id_validated(self):
        with pytest.raises(ConfigurationError):
            MembershipEvent(at_ms=1_000, local_id=0, kind="join")


class TestMeshConfig:
    def test_defaults_are_valid(self):
        config = MeshConfig()
        assert config.n_shards == 1
        assert config.relay_fanin == 0

    def test_adaptive_gamma_rejected(self):
        with pytest.raises(ConfigurationError, match="fixed gamma"):
            MeshConfig(query=QuantileQuery(gamma=8, adaptive=True))

    def test_sliding_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshConfig(
                query=QuantileQuery(window_length_ms=1000, window_step_ms=500)
            )

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshConfig(n_shards=0)

    def test_negative_fanin_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshConfig(relay_fanin=-1)

    def test_nonpositive_flush_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshConfig(relay_flush_s=0.0)

    def test_duplicate_membership_event_rejected(self):
        events = (
            MembershipEvent(at_ms=1_000, local_id=5, kind="join"),
            MembershipEvent(at_ms=2_000, local_id=5, kind="join"),
        )
        with pytest.raises(ConfigurationError, match="duplicate"):
            MeshConfig(membership=events)

    def test_initial_member_cannot_join(self):
        with pytest.raises(ConfigurationError, match="initial member"):
            MeshConfig(
                n_locals=4,
                membership=(
                    MembershipEvent(at_ms=1_000, local_id=3, kind="join"),
                ),
            )

    def test_join_then_leave_of_one_local_is_allowed(self):
        config = MeshConfig(
            n_locals=2,
            membership=(
                MembershipEvent(at_ms=1_000, local_id=3, kind="join"),
                MembershipEvent(at_ms=2_000, local_id=3, kind="leave"),
            ),
        )
        assert len(config.membership) == 2
