"""Fleet telemetry on the mesh: off means off, on means honest.

Three contracts:

* ``telemetry=None`` is the bit-identity configuration — no telemetry
  frames, no trace contexts, identical window values to a telemetered
  run of the same workload.
* With telemetry on, the ``/fleet`` view's merged seal→result
  percentiles agree with the centrally computed
  :class:`~repro.network.metrics.LatencyStats` — the shard digests are
  built from exactly the samples the central view aggregates.
* Killing a shard mid-run yields **stitched** timelines: the dead
  shard's pre-crash spans and the successor's adopted work appear in
  one window tree, annotated with the post-failover ShardMap epoch, and
  the fleet view reports the takeover.
"""

import pytest

from repro.bench.generator import GeneratorConfig, workload
from repro.core.query import QuantileQuery
from repro.faults.plan import ToleranceConfig
from repro.mesh.cluster import classify_outcomes, mesh_oracle, run_mesh
from repro.mesh.config import MeshConfig
from repro.mesh.routing import shard_node_id
from repro.obs.live.config import TelemetryConfig
from repro.obs.live.timeline import timeline_tree, window_timeline
from repro.obs.tracer import RecordingTracer

QUERY = QuantileQuery(q=0.5, gamma=10_000)

# Fast heartbeats drive the failover sweep; the local death threshold
# stays loose so a slow tick under full-suite load cannot spuriously
# degrade windows (same rationale as tests/mesh/test_failover.py).
TOLERANCE = ToleranceConfig(
    heartbeat_interval_s=0.02, declare_dead_after_s=2.0
)

N_LOCALS = 6

#: Sampler off by default in tests: its samples depend on host load.
TELEMETRY = TelemetryConfig(sampler_interval_s=0.0)


def streams_for(duration_s=8.0, seed=42):
    return workload(
        list(range(1, N_LOCALS + 1)),
        GeneratorConfig(event_rate=40.0, duration_s=duration_s, seed=seed),
    )


def mesh_config(**overrides):
    defaults = dict(
        n_locals=N_LOCALS,
        n_shards=2,
        query=QUERY,
        relay_flush_s=0.1,
        timeout_s=30.0,
    )
    defaults.update(overrides)
    return MeshConfig(**defaults)


def values_by_window(report):
    return {
        outcome.window: outcome.value
        for outcome in report.outcomes
        if outcome.value is not None
    }


class TestTelemetryOff:
    def test_off_run_reports_no_telemetry_and_identical_values(self):
        streams = streams_for(duration_s=4.0)
        off = run_mesh(mesh_config(), streams)
        on = run_mesh(mesh_config(telemetry=TELEMETRY), streams)
        assert off.telemetry == {}
        # Telemetry never perturbs results: bit-identical values.
        assert values_by_window(off) == values_by_window(on)
        # ...but its overhead is real, accounted bytes on the wire.
        assert on.total_bytes > off.total_bytes
        assert on.telemetry["fleet"]["bytes"] > 0


class TestFleetView:
    def test_merged_percentiles_match_central_latency_stats(self):
        config = mesh_config(telemetry=TELEMETRY)
        streams = streams_for()
        report = run_mesh(config, streams)
        classes = classify_outcomes(mesh_oracle(streams, config), report.outcomes)
        assert classes["lost"] == classes["mismatch"] == 0
        fleet = report.telemetry["fleet"]
        assert fleet["digest_count"] > 0
        assert fleet["stale_frames"] >= 0
        assert fleet["windows"]["completeness"] == 1.0
        # Shard uplinks digest exactly the samples the central
        # LatencyStats aggregates, so the quantiles agree to float
        # precision, not merely t-digest accuracy.
        merged = fleet["metrics"]["seal_to_result_s"]
        central = report.seal_to_result
        assert merged["count"] == central.count > 0
        assert merged["p50"] == pytest.approx(central.p50, rel=1e-9)
        assert merged["p95"] == pytest.approx(central.p95, rel=1e-9)
        assert merged["max"] == pytest.approx(central.max, rel=1e-9)
        # Every local and every shard uplinked something.
        senders = set(fleet["senders"])
        assert set(range(1, N_LOCALS + 1)) <= senders
        assert {shard_node_id(0), shard_node_id(1)} <= senders

    def test_relay_tier_appears_in_the_fleet_view(self):
        config = mesh_config(relay_fanin=3, telemetry=TELEMETRY)
        report = run_mesh(config, streams_for(duration_s=4.0))
        fleet = report.telemetry["fleet"]
        assert len(fleet["relays"]) == 2
        assert all(r["frames_combined"] > 0 for r in fleet["relays"])
        assert fleet["metrics"]["relay_flush_delay_s"]["count"] > 0


class TestStitchedTimelines:
    def _kill_run(self, relay_fanin=0):
        config = mesh_config(
            relay_fanin=relay_fanin, tolerance=TOLERANCE, telemetry=TELEMETRY
        )
        streams = streams_for(duration_s=20.0)
        tracer = RecordingTracer()

        async def disturb(ctx):
            ctx.shards[0].crash_after(1)

        report = run_mesh(config, streams, tracer=tracer, disturb=disturb)
        classes = classify_outcomes(mesh_oracle(streams, config), report.outcomes)
        assert classes["lost"] == classes["mismatch"] == 0
        assert report.shard_failovers == 1
        assert report.windows_adopted > 0
        return config, report, tracer

    def test_kill_shard_stitches_dead_and_successor_under_one_tree(self):
        config, report, tracer = self._kill_run()
        stitched = []
        for outcome in report.outcomes:
            timeline = window_timeline(tracer.spans, outcome.window.start)
            if timeline["failover"]:
                stitched.append(timeline)
        # One stitched timeline per adopted window, each annotated with
        # the post-failover ShardMap epoch and spanning both shards.
        assert len(stitched) == report.windows_adopted
        for timeline in stitched:
            assert timeline["epochs"] == [1]
            assert "live_failover_replay" in timeline["phases"]
            assert shard_node_id(0) in timeline["nodes"]  # dead shard
            assert shard_node_id(1) in timeline["nodes"]  # successor
            # The replayed work nests under the window's tree: the only
            # roots are the documented ones (stream batches, the
            # synopsis seal) plus the replay spans themselves — never a
            # disconnected forest of successor-side work.
            roots = timeline_tree(timeline)
            assert {row["name"] for row in roots} <= {
                "live_stream_batch", "live_synopsis", "live_failover_replay"
            }

    def test_failover_lands_in_the_fleet_report(self):
        config, report, tracer = self._kill_run()
        fleet = report.telemetry["fleet"]
        assert fleet["epoch"] == 1
        assert len(fleet["failovers"]) == 1
        event = fleet["failovers"][0]
        assert event["dead"] == 0 and event["successor"] == 1
        victim_row = fleet["shards"][0]
        assert victim_row["live"] is False
        assert victim_row["windows_adopted"] == 0
        successor_row = fleet["shards"][1]
        assert successor_row["windows_adopted"] == report.windows_adopted


class TestRelayTimelineStitching:
    def test_section_contexts_keep_shard_spans_parented(self):
        # Without per-section contexts, a relay-combined frame arrives
        # at the shard with at most the *relay's* context, and every
        # shard-side span for the constituent locals becomes an orphan
        # root — the timeline truncates at the relay boundary.  With
        # them, shard dispatch spans parent onto the originating local's
        # span and the tree stays connected.
        config = mesh_config(relay_fanin=3, telemetry=TELEMETRY)
        streams = streams_for(duration_s=4.0)
        tracer = RecordingTracer()
        report = run_mesh(config, streams, tracer=tracer)
        checked = 0
        for outcome in report.outcomes:
            timeline = window_timeline(tracer.spans, outcome.window.start)
            if "relay_combine" not in timeline["phases"]:
                continue
            checked += 1
            ids = {row["id"] for row in timeline["spans"]}
            for row in timeline["spans"]:
                if row["name"] in ("live_identification", "live_calculation"):
                    assert row["parent"] in ids, (
                        f"{row['name']} orphaned at the relay boundary"
                    )
        assert checked > 0
