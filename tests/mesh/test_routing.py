"""Tests for the deterministic mesh routing function and id spaces."""

from repro.mesh import (
    RELAY_ID_BASE,
    SHARD_ID_BASE,
    relay_node_id,
    shard_node_id,
    shard_of,
)


class TestShardOf:
    def test_single_shard_owns_everything(self):
        assert shard_of(0, 1000, 1) == 0
        assert shard_of(123_000, 1000, 1) == 0
        assert shard_of(0, 1000, 0) == 0

    def test_round_robin_by_window_index(self):
        assert [shard_of(start, 1000, 3) for start in range(0, 6000, 1000)] \
            == [0, 1, 2, 0, 1, 2]

    def test_deterministic(self):
        assert shard_of(42_000, 500, 7) == shard_of(42_000, 500, 7)

    def test_every_shard_is_hit(self):
        n_shards = 4
        owners = {
            shard_of(start, 1000, n_shards)
            for start in range(0, 100_000, 1000)
        }
        assert owners == set(range(n_shards))

    def test_windows_in_one_grid_slot_share_a_shard(self):
        # All events of one window land on the window's owner, regardless
        # of where inside the window they fall.
        assert shard_of(3_000, 1000, 4) == shard_of(3_000, 1000, 4)
        assert shard_of(3_000, 1000, 4) != shard_of(4_000, 1000, 4)


class TestIdSpaces:
    def test_bases_are_disjoint(self):
        assert SHARD_ID_BASE != RELAY_ID_BASE
        # 1024 of each never collide with the other tier or with small
        # local/root ids.
        shard_ids = {shard_node_id(i) for i in range(1024)}
        relay_ids = {relay_node_id(i) for i in range(1024)}
        assert not (shard_ids & relay_ids)
        assert all(nid >= SHARD_ID_BASE for nid in shard_ids)
        assert all(nid >= RELAY_ID_BASE for nid in relay_ids)
        assert not (shard_ids | relay_ids) & set(range(1024))

    def test_node_ids_are_sequential(self):
        assert shard_node_id(0) == SHARD_ID_BASE
        assert shard_node_id(3) - shard_node_id(0) == 3
        assert relay_node_id(0) == RELAY_ID_BASE
        assert relay_node_id(5) - relay_node_id(0) == 5
