"""Tests for the root node's elastic membership table."""

from repro.core.query import QuantileQuery
from repro.core.root_node import DemaRootNode
from repro.streaming.windows import Window

W0 = Window(0, 1_000)
W2 = Window(2_000, 3_000)
W3 = Window(3_000, 4_000)


def root(local_ids=(1, 2)) -> DemaRootNode:
    return DemaRootNode(0, local_ids=local_ids, query=QuantileQuery())


class TestJoin:
    def test_join_is_eligible_from_its_first_window(self):
        node = root()
        assert node.add_local(5, first_window_start=2_000)
        assert 5 not in node._eligible_locals(W0)
        assert 5 in node._eligible_locals(W2)
        assert node.current_members == (1, 2, 5)

    def test_join_bumps_epoch_once(self):
        node = root()
        assert node.membership_epoch == 0
        node.add_local(5, 2_000)
        assert node.membership_epoch == 1
        # Re-announcing the same join is idempotent.
        assert not node.add_local(5, 2_000)
        assert node.membership_epoch == 1

    def test_founders_have_no_eligibility_restriction(self):
        node = root()
        assert node._eligible_locals(W0) == (1, 2)
        assert node._eligible_locals(W3) == (1, 2)


class TestLeave:
    def test_leaver_serves_windows_before_the_boundary(self):
        node = root()
        assert node.remove_local(2, effective_from=3_000, now=0.0)
        assert 2 in node._eligible_locals(W2)
        assert 2 not in node._eligible_locals(W3)
        assert node.current_members == (1,)

    def test_leave_bumps_epoch_once(self):
        node = root()
        node.remove_local(2, 3_000, now=0.0)
        assert node.membership_epoch == 1
        assert not node.remove_local(2, 3_000, now=0.0)
        assert node.membership_epoch == 1

    def test_unknown_leaver_is_a_no_op(self):
        node = root()
        assert not node.remove_local(99, 3_000, now=0.0)
        assert node.membership_epoch == 0

    def test_rejoin_after_leave_reopens_eligibility(self):
        node = root()
        node.remove_local(2, 1_000, now=0.0)
        assert 2 not in node._eligible_locals(W2)
        node.add_local(2, 2_000)
        assert 2 in node._eligible_locals(W2)
        assert node.current_members == (1, 2)
        assert node.membership_epoch == 2
