"""Round-trip tests for the relay combine/explode frame transforms.

The relay invariant is lossless reconstruction: exploding a combined
frame must yield the exact per-child frames the children sent, so the
root operators cannot tell a relay was involved.
"""

from repro import make_events
from repro.mesh.relay import (
    combine_runs,
    combine_synopses,
    explode_runs,
    explode_synopses,
)
from repro.network.messages import CandidateEventsMessage, SynopsisMessage
from repro.streaming.windows import Window

WINDOW = Window(1_000, 2_000)
RELAY = 1 << 21


def synopsis_frame(child: int, n: int) -> SynopsisMessage:
    # Synopses are opaque to the relay; sentinels are enough to prove
    # the transform is lossless.
    return SynopsisMessage(
        sender=child,
        window=WINDOW,
        synopses=tuple(("synopsis", child, i) for i in range(n)),
        local_window_size=10 * n,
    )


class TestSynopsisRoundTrip:
    def test_explode_reconstructs_child_frames(self):
        parts = {child: synopsis_frame(child, child) for child in (3, 1, 2)}
        combined = combine_synopses(parts, RELAY, WINDOW)
        exploded = explode_synopses(combined)
        assert {m.sender: m for m in exploded} == parts

    def test_sections_sorted_by_child(self):
        parts = {child: synopsis_frame(child, 1) for child in (9, 2, 5)}
        combined = combine_synopses(parts, RELAY, WINDOW)
        assert [node_id for node_id, _, _ in combined.sections] == [2, 5, 9]

    def test_deterministic_bytes(self):
        parts_a = {child: synopsis_frame(child, 2) for child in (2, 1)}
        parts_b = {child: synopsis_frame(child, 2) for child in (1, 2)}
        assert (
            combine_synopses(parts_a, RELAY, WINDOW)
            == combine_synopses(parts_b, RELAY, WINDOW)
        )

    def test_relay_is_the_sender(self):
        combined = combine_synopses({1: synopsis_frame(1, 1)}, RELAY, WINDOW)
        assert combined.sender == RELAY
        assert combined.window == WINDOW


class TestRunsRoundTrip:
    def run_frame(self, child: int, index: int) -> CandidateEventsMessage:
        events = tuple(
            make_events([1.0 * child, 2.0 * child + index], node_id=child)
        )
        return CandidateEventsMessage(
            sender=child, window=WINDOW, slice_index=index, events=events
        )

    def test_explode_reconstructs_runs(self):
        parts = {
            (child, index): self.run_frame(child, index)
            for child in (1, 2)
            for index in (0, 1)
        }
        combined = combine_runs(parts, RELAY, WINDOW)
        exploded = explode_runs(combined)
        assert {(m.sender, m.slice_index): m for m in exploded} == parts

    def test_sections_sorted_by_child_then_index(self):
        parts = {
            key: self.run_frame(*key)
            for key in [(2, 1), (1, 1), (2, 0), (1, 0)]
        }
        combined = combine_runs(parts, RELAY, WINDOW)
        assert [(c, i) for c, i, _ in combined.sections] == [
            (1, 0), (1, 1), (2, 0), (2, 1),
        ]

    def test_combined_frame_is_smaller_than_parts(self):
        parts = {
            (child, 0): self.run_frame(child, 0) for child in range(1, 9)
        }
        combined = combine_runs(parts, RELAY, WINDOW)
        assert combined.payload_bytes < sum(
            part.payload_bytes for part in parts.values()
        ) + 8 * 16  # eight saved frame headers dwarf the section overhead
