"""End-to-end mesh runs graded against the single-root engine oracle.

Everything here runs on the in-memory transport with unpaced replay, so
the whole file stays in CI's sub-minute budget while exercising the real
wire protocol, the shard routing, the relay tier and the membership
coordinator.
"""

import pytest

from repro.bench.generator import GeneratorConfig, workload
from repro.core.query import QuantileQuery
from repro.faults.plan import ToleranceConfig
from repro.mesh import (
    MembershipEvent,
    MeshConfig,
    classify_outcomes,
    mesh_oracle,
    run_mesh,
)

QUERY = QuantileQuery(q=0.5, gamma=10_000)


def streams_for(local_ids, rate=120.0, duration=3.0, seed=42):
    return workload(
        list(local_ids),
        GeneratorConfig(event_rate=rate, duration_s=duration, seed=seed),
    )


def assert_bit_identical(config, streams):
    report = run_mesh(config, streams)
    classes = classify_outcomes(mesh_oracle(streams, config), report.outcomes)
    assert classes["mismatch"] == 0
    assert classes["lost"] == 0
    assert classes["degraded"] == 0
    assert classes["recovered"] == report.windows > 0
    return report


class TestShardedBitIdentity:
    def test_single_shard_matches_oracle(self):
        config = MeshConfig(n_locals=4, n_shards=1, query=QUERY)
        assert_bit_identical(config, streams_for(range(1, 5)))

    def test_sharded_matches_oracle(self):
        config = MeshConfig(n_locals=4, n_shards=3, query=QUERY)
        report = assert_bit_identical(config, streams_for(range(1, 5)))
        # Every shard answered at least one window of the 3s grid.
        assert len(report.membership_epochs) == 3

    def test_multi_stream_locals(self):
        config = MeshConfig(
            n_locals=3, streams_per_local=2, n_shards=2, query=QUERY
        )
        assert_bit_identical(config, streams_for(range(1, 4)))

    def test_hundred_locals(self):
        config = MeshConfig(n_locals=100, n_shards=4, query=QUERY)
        streams = streams_for(range(1, 101), rate=30.0, duration=2.0)
        assert_bit_identical(config, streams)


class TestRelayTier:
    def test_relayed_matches_oracle(self):
        config = MeshConfig(
            n_locals=6, n_shards=2, relay_fanin=3, query=QUERY
        )
        report = assert_bit_identical(config, streams_for(range(1, 7)))
        assert report.relay_frames_combined > 0
        assert report.relay_sections_combined > report.relay_frames_combined

    def test_relay_cuts_root_ingress(self):
        streams = streams_for(range(1, 9))
        flat = run_mesh(
            MeshConfig(n_locals=8, n_shards=2, query=QUERY), streams
        )
        relayed = run_mesh(
            MeshConfig(n_locals=8, n_shards=2, relay_fanin=4, query=QUERY),
            streams,
        )
        assert relayed.values == flat.values
        assert relayed.root_ingress_bytes < flat.root_ingress_bytes

    def test_ragged_last_group(self):
        # 5 locals at fan-in 2 leaves a singleton third relay.
        config = MeshConfig(
            n_locals=5, n_shards=2, relay_fanin=2, query=QUERY
        )
        assert_bit_identical(config, streams_for(range(1, 6)))


class TestByteAccounting:
    def test_layer_bytes_sum_to_total(self):
        config = MeshConfig(
            n_locals=6, n_shards=2, relay_fanin=3, query=QUERY
        )
        report = run_mesh(config, streams_for(range(1, 7)))
        assert report.total_bytes == sum(report.bytes_by_layer.values())
        assert report.total_bytes > 0

    def test_relay_runs_report_both_relay_layers(self):
        config = MeshConfig(
            n_locals=4, n_shards=2, relay_fanin=2, query=QUERY
        )
        report = run_mesh(config, streams_for(range(1, 5)))
        assert "local_relay" in report.bytes_by_layer
        assert "relay_root" in report.bytes_by_layer
        assert "local_root" not in report.bytes_by_layer

    def test_flat_runs_have_no_relay_layers(self):
        config = MeshConfig(n_locals=4, n_shards=2, query=QUERY)
        report = run_mesh(config, streams_for(range(1, 5)))
        assert "local_root" in report.bytes_by_layer
        assert "local_relay" not in report.bytes_by_layer
        assert "relay_root" not in report.bytes_by_layer


class TestElasticMembership:
    MEMBERSHIP = (
        MembershipEvent(at_ms=2_000, local_id=5, kind="join"),
        MembershipEvent(at_ms=3_000, local_id=2, kind="leave"),
    )

    def streams(self):
        return streams_for(range(1, 6), duration=4.0)

    @pytest.mark.parametrize(
        "shards,fanin", [(1, 0), (2, 0), (2, 2)],
        ids=["single-root", "sharded", "relayed"],
    )
    def test_join_and_leave_stay_bit_identical(self, shards, fanin):
        config = MeshConfig(
            n_locals=4,
            n_shards=shards,
            relay_fanin=fanin,
            query=QUERY,
            membership=self.MEMBERSHIP,
        )
        report = assert_bit_identical(config, self.streams())
        assert report.members == (1, 3, 4, 5)
        assert all(
            epoch == len(self.MEMBERSHIP)
            for epoch in report.membership_epochs.values()
        )

    def test_join_serves_its_first_complete_window(self):
        config = MeshConfig(
            n_locals=4,
            n_shards=2,
            query=QUERY,
            membership=(
                MembershipEvent(at_ms=2_000, local_id=5, kind="join"),
            ),
        )
        streams = self.streams()
        report = run_mesh(config, streams)
        truth = mesh_oracle(streams, config)
        by_window = report.outcome_by_window()
        for window, expected in truth.items():
            if window.start >= 2_000:
                assert by_window[window].value == expected

    def test_membership_off_grid_rejected(self):
        from repro.errors import ConfigurationError

        config = MeshConfig(
            n_locals=4,
            query=QUERY,
            membership=(
                MembershipEvent(at_ms=2_500, local_id=5, kind="join"),
            ),
        )
        with pytest.raises(ConfigurationError):
            run_mesh(config, self.streams())


class TestChaosComposition:
    TOLERANCE = ToleranceConfig(
        heartbeat_interval_s=0.02, declare_dead_after_s=0.15
    )

    def test_crashed_local_degrades_instead_of_hanging(self):
        async def crash_one(ctx):
            await ctx.locals_by_id[2].crash_mesh()

        config = MeshConfig(
            n_locals=4,
            n_shards=2,
            relay_fanin=2,
            query=QUERY,
            tolerance=self.TOLERANCE,
            relay_flush_s=0.1,
            timeout_s=30.0,
        )
        streams = streams_for(range(1, 5))
        report = run_mesh(config, streams, disturb=crash_one)
        classes = classify_outcomes(
            mesh_oracle(streams, config), report.outcomes
        )
        assert classes["mismatch"] == 0
        assert classes["lost"] == 0
        assert classes["degraded"] == report.windows
        assert report.locals_declared_dead > 0
        assert report.wall_seconds < 10.0

    def test_tolerant_clean_run_stays_exact(self):
        config = MeshConfig(
            n_locals=4,
            n_shards=2,
            relay_fanin=2,
            query=QUERY,
            tolerance=self.TOLERANCE,
            relay_flush_s=0.1,
        )
        streams = streams_for(range(1, 5))
        report = assert_bit_identical(config, streams)
        assert report.locals_declared_dead == 0
