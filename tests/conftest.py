"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.streaming.events import Event, make_events


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for workload construction inside tests."""
    return random.Random(0xDE51)


@pytest.fixture
def two_node_windows(rng: random.Random) -> dict[int, list[Event]]:
    """Two overlapping local windows, ~1k events each."""
    values_a = [rng.gauss(100.0, 20.0) for _ in range(1000)]
    values_b = [rng.gauss(110.0, 5.0) for _ in range(1200)]
    return {
        1: make_events(values_a, node_id=1),
        2: make_events(values_b, node_id=2),
    }


def sorted_values(windows: dict[int, list[Event]]) -> list[float]:
    """All values across local windows, sorted ascending."""
    values = [event.value for events in windows.values() for event in events]
    return sorted(values)
