"""Tests for out-of-order arrivals and allowed lateness."""

import dataclasses

import pytest

from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.network.simulator import Simulator
from repro.network.driver import BatchSourceDriver
from repro.network.topology import TopologyConfig
from repro.streaming.aggregates import exact_quantile
from repro.streaming.events import make_events
from repro.streaming.windows import TumblingWindows, Window
from repro.bench.generator import GeneratorConfig, SensorStreamGenerator


def delayed_arrivals(max_delay_ms, *, rate=800.0, seconds=3.0, seed=9):
    base = GeneratorConfig(
        event_rate=rate, duration_s=seconds, seed=seed,
        max_arrival_delay_ms=max_delay_ms,
    )
    arrivals = {}
    for node_id in (1, 2):
        config = dataclasses.replace(base, replay_offset=node_id)
        arrivals[node_id] = SensorStreamGenerator(config).generate_with_arrivals(
            node_id
        )
    return arrivals


def ground_truth(arrivals, q=0.5):
    assigner = TumblingWindows(1000)
    per_window = {}
    for pairs in arrivals.values():
        for event, _ in pairs:
            per_window.setdefault(
                assigner.window_for(event.timestamp), []
            ).append(event.value)
    return {w: exact_quantile(v, q) for w, v in per_window.items()}


class TestGeneratorArrivals:
    def test_zero_delay_means_arrival_equals_event_time(self):
        config = GeneratorConfig(event_rate=100, duration_s=1.0)
        generator = SensorStreamGenerator(config)
        pairs = generator.generate_with_arrivals(1)
        assert all(event.timestamp == arrival for event, arrival in pairs)

    def test_delays_bounded(self):
        config = GeneratorConfig(
            event_rate=500, duration_s=1.0, max_arrival_delay_ms=50
        )
        pairs = SensorStreamGenerator(config).generate_with_arrivals(1)
        assert all(
            0 <= arrival - event.timestamp <= 50 for event, arrival in pairs
        )

    def test_delays_create_disorder(self):
        config = GeneratorConfig(
            event_rate=2_000, duration_s=1.0, max_arrival_delay_ms=50
        )
        pairs = SensorStreamGenerator(config).generate_with_arrivals(1)
        by_arrival = sorted(pairs, key=lambda pair: pair[1])
        timestamps = [event.timestamp for event, _ in by_arrival]
        assert timestamps != sorted(timestamps)

    def test_negative_delay_rejected(self):
        from repro.errors import GeneratorError

        with pytest.raises(GeneratorError):
            GeneratorConfig(
                event_rate=100, duration_s=1.0, max_arrival_delay_ms=-1
            )


class TestFeedUnordered:
    class Recorder:
        def __init__(self):
            self.batches = []

        def ingest(self, events, now):
            self.batches.append((tuple(events), now))
            return now

        def on_window_complete(self, window, now):
            pass

    def test_delivery_in_arrival_order(self):
        simulator = Simulator()
        driver = BatchSourceDriver(simulator)
        operator = self.Recorder()
        events = make_events([1.0, 2.0, 3.0], timestamp_step=100)
        arrivals = [(events[0], 250), (events[1], 100), (events[2], 210)]
        driver.feed_unordered(operator, arrivals, TumblingWindows(1000))
        simulator.run()
        delivered = [e.value for batch, _ in operator.batches for e in batch]
        assert delivered == [2.0, 3.0, 1.0]
        times = [now for _, now in operator.batches]
        assert times == sorted(times)

    def test_arrival_times_respected(self):
        simulator = Simulator()
        driver = BatchSourceDriver(simulator)
        operator = self.Recorder()
        events = make_events([1.0], timestamp_step=1)
        driver.feed_unordered(operator, [(events[0], 777)], TumblingWindows(1000))
        simulator.run()
        assert operator.batches[0][1] == pytest.approx(0.777)

    def test_negative_arrival_rejected(self):
        from repro.errors import ConfigurationError

        simulator = Simulator()
        driver = BatchSourceDriver(simulator)
        operator = self.Recorder()
        events = make_events([1.0])
        with pytest.raises(ConfigurationError):
            driver.feed_unordered(
                operator, [(events[0], -1)], TumblingWindows(1000)
            )


class TestAllowedLateness:
    def test_lateness_covering_delay_stays_exact(self):
        arrivals = delayed_arrivals(80)
        engine = DemaEngine(
            QuantileQuery(q=0.5, gamma=50), TopologyConfig(n_local_nodes=2)
        )
        report = engine.run_unordered(arrivals, allowed_lateness_ms=100)
        truth = ground_truth(arrivals)
        assert len(report.outcomes) == len(truth)
        for outcome in report.outcomes:
            assert outcome.value == truth[outcome.window]
        assert all(
            engine.simulator.nodes[i].late_events == 0
            for i in engine.topology.local_ids
        )

    def test_insufficient_lateness_drops_and_counts(self):
        arrivals = delayed_arrivals(80)
        engine = DemaEngine(
            QuantileQuery(q=0.5, gamma=50), TopologyConfig(n_local_nodes=2)
        )
        report = engine.run_unordered(arrivals, allowed_lateness_ms=0)
        dropped = sum(
            engine.simulator.nodes[i].late_events
            for i in engine.topology.local_ids
        )
        assert dropped > 0
        # Results are still produced for every window...
        assert len(report.outcomes) == len(ground_truth(arrivals))
        # ...over the on-time subset, so window sizes shrink by the drops.
        total_truth = sum(len(p) for p in arrivals.values())
        total_reported = sum(o.global_window_size for o in report.outcomes)
        assert total_reported == total_truth - dropped

    def test_results_exact_over_retained_events(self):
        # Construct arrivals by hand so the late set is known precisely.
        on_time = make_events([10.0, 20.0, 30.0, 40.0], node_id=1,
                              timestamp_step=100)
        straggler = make_events([99.0], node_id=1, start_timestamp=50,
                                start_seq=100)[0]
        arrivals = {
            1: [(event, event.timestamp) for event in on_time]
            + [(straggler, 5_000)],  # arrives long after its window closed
        }
        engine = DemaEngine(
            QuantileQuery(q=0.5, gamma=2), TopologyConfig(n_local_nodes=1)
        )
        report = engine.run_unordered(arrivals, allowed_lateness_ms=0)
        window_result = next(
            o for o in report.outcomes if o.window == Window(0, 1000)
        )
        assert window_result.global_window_size == 4
        assert window_result.value == exact_quantile(
            [10.0, 20.0, 30.0, 40.0], 0.5
        )
        assert engine.simulator.nodes[1].late_events == 1
