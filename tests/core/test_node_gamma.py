"""Tests for node-specific slice factors (Section 3.3 extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.core.adaptive import NodeGammaController, optimal_gamma
from repro.core.query import QuantileQuery


class TestController:
    def test_initial_gamma_for_unknown_node(self):
        controller = NodeGammaController(64)
        assert controller.gamma_for(1) == 64

    def test_per_node_optima(self):
        controller = NodeGammaController(10)
        updated = controller.observe(
            {1: 1_000, 2: 100_000}, {1: 2, 2: 2}
        )
        assert updated[1] == optimal_gamma(1_000, 2)
        assert updated[2] == optimal_gamma(100_000, 2)
        assert updated[2] > updated[1]

    def test_missing_candidates_default_to_one(self):
        controller = NodeGammaController(10)
        updated = controller.observe({1: 10_000}, {})
        assert updated[1] == optimal_gamma(10_000, 1)

    def test_gammas_accumulate(self):
        controller = NodeGammaController(10)
        controller.observe({1: 100}, {1: 1})
        controller.observe({2: 400}, {2: 1})
        assert set(controller.gammas) == {1, 2}

    def test_smoothing_damps(self):
        controller = NodeGammaController(10, smoothing=0.5)
        controller.observe({1: 100_000}, {1: 2})
        damped = controller.observe({1: 1_000}, {1: 2})[1]
        assert damped > optimal_gamma(1_000, 2)

    def test_expected_cost(self):
        controller = NodeGammaController(10)
        assert controller.expected_cost() is None
        controller.observe({1: 10_000, 2: 1_000}, {1: 2, 2: 1})
        assert controller.expected_cost() > 0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            NodeGammaController(1)
        with pytest.raises(ConfigurationError):
            NodeGammaController(10, smoothing=0.0)


class TestQueryValidation:
    def test_per_node_requires_adaptive(self):
        with pytest.raises(ConfigurationError):
            QuantileQuery(per_node_gamma=True, adaptive=False)

    def test_per_node_with_adaptive_ok(self):
        query = QuantileQuery(adaptive=True, per_node_gamma=True)
        assert query.per_node_gamma


class TestDeployment:
    def run_engine(self, per_node):
        from repro.core.engine import DemaEngine
        from repro.network.topology import TopologyConfig
        from repro.bench.generator import GeneratorConfig, workload

        query = QuantileQuery(
            q=0.5, gamma=50, adaptive=True, per_node_gamma=per_node
        )
        engine = DemaEngine(query, TopologyConfig(n_local_nodes=2))
        streams = workload(
            [1, 2],
            GeneratorConfig(event_rate=400.0, duration_s=4.0, seed=5),
            event_rates={2: 4_000.0},
        )
        report = engine.run(streams)
        return engine, report, streams

    def test_unbalanced_nodes_get_different_gammas(self):
        engine, report, _ = self.run_engine(per_node=True)
        gammas = engine.root.node_gammas
        assert set(gammas) == {1, 2}
        assert gammas[2] > gammas[1]  # busier node -> coarser slices

    def test_results_stay_exact(self):
        from repro.streaming.aggregates import exact_quantile
        from repro.streaming.windows import TumblingWindows

        engine, report, streams = self.run_engine(per_node=True)
        assigner = TumblingWindows(1000)
        per_window = {}
        for events in streams.values():
            for event in events:
                per_window.setdefault(
                    assigner.window_for(event.timestamp), []
                ).append(event.value)
        for outcome in report.outcomes:
            assert outcome.value == exact_quantile(per_window[outcome.window], 0.5)

    def test_global_mode_reports_no_node_gammas(self):
        engine, _, _ = self.run_engine(per_node=False)
        assert engine.root.node_gammas == {}

    def test_per_node_beats_global_on_heterogeneous_load(self):
        _, per_node_report, _ = self.run_engine(per_node=True)
        _, global_report, _ = self.run_engine(per_node=False)
        # Steady-state (post-adaptation) network cost should not be worse.
        assert (
            per_node_report.network.total_bytes
            <= 1.1 * global_report.network.total_bytes
        )
