"""Tests for γ-slicing of sorted windows."""

import pytest

from repro.errors import SliceError
from repro.core.slicing import MIN_GAMMA, slice_sorted_events
from repro.streaming.events import event_key, make_events


def sorted_events(n, node_id=1):
    return sorted(make_events(range(n), node_id=node_id), key=event_key)


class TestSliceSizes:
    def test_paper_example_1000_events_gamma_150(self):
        # Section 3.1: l=1000, gamma=150 -> 7 slices; 6 of 150 and one of 100.
        sliced = slice_sorted_events(sorted_events(1000), 150, 1)
        sizes = [len(run) for run in sliced.runs]
        assert sizes == [150] * 6 + [100]

    def test_exact_division(self):
        sliced = slice_sorted_events(sorted_events(100), 25, 1)
        assert [len(run) for run in sliced.runs] == [25] * 4

    def test_trailing_single_event_folded_into_previous(self):
        # Every slice needs two events for a synopsis (Section 3.1).
        sliced = slice_sorted_events(sorted_events(7), 3, 1)
        assert [len(run) for run in sliced.runs] == [3, 4]

    def test_single_event_window(self):
        sliced = slice_sorted_events(sorted_events(1), 10, 1)
        assert sliced.n_slices == 1
        assert sliced.synopses[0].count == 1

    def test_empty_window(self):
        sliced = slice_sorted_events([], 10, 1)
        assert sliced.n_slices == 0
        assert sliced.window_size == 0

    def test_gamma_larger_than_window(self):
        sliced = slice_sorted_events(sorted_events(5), 100, 1)
        assert sliced.n_slices == 1
        assert len(sliced.runs[0]) == 5

    def test_minimum_gamma_enforced(self):
        with pytest.raises(SliceError):
            slice_sorted_events(sorted_events(10), MIN_GAMMA - 1, 1)

    def test_no_slice_smaller_than_two_when_window_allows(self):
        for n in range(2, 40):
            for gamma in range(2, 12):
                sliced = slice_sorted_events(sorted_events(n), gamma, 1)
                assert all(len(run) >= 2 for run in sliced.runs), (n, gamma)


class TestSynopses:
    def test_synopsis_boundaries_match_runs(self):
        sliced = slice_sorted_events(sorted_events(10), 3, 7)
        for run, synopsis in zip(sliced.runs, sliced.synopses):
            assert synopsis.first_key == run[0].key
            assert synopsis.last_key == run[-1].key
            assert synopsis.count == len(run)
            assert synopsis.node_id == 7

    def test_synopses_indexed_in_order(self):
        sliced = slice_sorted_events(sorted_events(10), 3, 1)
        assert [s.slice_index for s in sliced.synopses] == list(
            range(sliced.n_slices)
        )
        assert all(s.n_slices == sliced.n_slices for s in sliced.synopses)

    def test_counts_cover_window(self):
        sliced = slice_sorted_events(sorted_events(997), 31, 1)
        assert sum(s.count for s in sliced.synopses) == 997
        assert sliced.window_size == 997

    def test_slices_value_disjoint_within_node(self):
        sliced = slice_sorted_events(sorted_events(100), 9, 1)
        for left, right in zip(sliced.synopses, sliced.synopses[1:]):
            assert left.last_key < right.first_key


class TestRunAccess:
    def test_run_for_valid_index(self):
        sliced = slice_sorted_events(sorted_events(10), 5, 1)
        assert len(sliced.run_for(1)) == 5

    def test_run_for_invalid_index(self):
        sliced = slice_sorted_events(sorted_events(10), 5, 1)
        with pytest.raises(SliceError):
            sliced.run_for(2)
        with pytest.raises(SliceError):
            sliced.run_for(-1)
