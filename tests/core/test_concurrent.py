"""Tests for concurrent multi-query deployments."""

import pytest

from repro.errors import ConfigurationError
from repro.core.concurrent import (
    ConcurrentDemaEngine,
    group_queries,
)
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.network.topology import TopologyConfig
from repro.streaming.aggregates import exact_quantile
from repro.bench.generator import GeneratorConfig, workload


def make_streams(rate=1_000.0, seconds=3.0, seed=5):
    return workload(
        [1, 2], GeneratorConfig(event_rate=rate, duration_s=seconds, seed=seed)
    )


class TestGrouping:
    def test_same_shape_same_group(self):
        queries = [
            QuantileQuery(q=0.5, window_length_ms=1000, gamma=50),
            QuantileQuery(q=0.9, window_length_ms=1000, gamma=50),
        ]
        groups = group_queries(queries)
        assert len(groups) == 1
        assert groups[0].quantiles == ((0, 0.5), (1, 0.9))

    def test_different_shapes_split(self):
        queries = [
            QuantileQuery(q=0.5, window_length_ms=1000, gamma=50),
            QuantileQuery(q=0.5, window_length_ms=500, gamma=50),
            QuantileQuery(q=0.5, window_length_ms=1000, gamma=100),
            QuantileQuery(q=0.5, window_length_ms=1000, window_step_ms=500,
                          gamma=50),
        ]
        assert len(group_queries(queries)) == 4

    def test_group_ids_unique_and_dense(self):
        queries = [
            QuantileQuery(q=0.5, gamma=50),
            QuantileQuery(q=0.5, gamma=60),
        ]
        groups = group_queries(queries)
        assert sorted(g.group_id for g in groups) == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            group_queries([])

    def test_adaptive_rejected(self):
        with pytest.raises(ConfigurationError):
            group_queries([QuantileQuery(q=0.5, gamma=50, adaptive=True)])


class TestConcurrentCorrectness:
    QUERIES = [
        QuantileQuery(q=0.5, window_length_ms=1000, gamma=50),
        QuantileQuery(q=0.9, window_length_ms=1000, gamma=50),
        QuantileQuery(q=0.25, window_length_ms=500, gamma=30),
        QuantileQuery(
            q=0.5, window_length_ms=1000, window_step_ms=500, gamma=50
        ),
    ]

    @pytest.fixture(scope="class")
    def run(self):
        engine = ConcurrentDemaEngine(
            self.QUERIES, TopologyConfig(n_local_nodes=2)
        )
        streams = make_streams()
        return engine, engine.run(streams), streams

    def test_every_query_every_window_exact(self, run):
        _, report, streams = run
        for query_index, query in enumerate(self.QUERIES):
            assigner = query.assigner()
            per_window = {}
            for events in streams.values():
                for event in events:
                    for window in assigner.assign(event.timestamp):
                        per_window.setdefault(window, []).append(event.value)
            outcomes = report.outcomes_for(query_index)
            assert len(outcomes) == len(per_window)
            for outcome in outcomes:
                assert outcome.value == exact_quantile(
                    per_window[outcome.window], query.q
                )

    def test_matches_single_query_deployments(self, run):
        _, report, streams = run
        for query_index, query in enumerate(self.QUERIES):
            single = DemaEngine(query, TopologyConfig(n_local_nodes=2))
            single_report = single.run(streams)
            single_values = {
                o.window: o.value for o in single_report.outcomes
            }
            for outcome in report.outcomes_for(query_index):
                assert outcome.value == single_values[outcome.window]

    def test_outcome_metadata(self, run):
        _, report, _ = run
        for outcome in report.outcomes:
            assert 0 <= outcome.query_index < len(self.QUERIES)
            assert outcome.q == self.QUERIES[outcome.query_index].q
            assert outcome.result_time >= outcome.window.end / 1000.0


class TestSharing:
    def test_shared_group_cheaper_than_separate_runs(self):
        streams = make_streams(seed=9)
        # Nearby quantiles share candidate slices as well as synopses.
        shared_queries = [
            QuantileQuery(q=0.49, window_length_ms=1000, gamma=200),
            QuantileQuery(q=0.5, window_length_ms=1000, gamma=200),
            QuantileQuery(q=0.51, window_length_ms=1000, gamma=200),
        ]
        concurrent = ConcurrentDemaEngine(
            shared_queries, TopologyConfig(n_local_nodes=2)
        )
        shared_bytes = concurrent.run(streams).network.total_bytes

        separate_bytes = 0
        for query in shared_queries:
            engine = DemaEngine(query, TopologyConfig(n_local_nodes=2))
            separate_bytes += engine.run(streams).network.total_bytes
        # Synopses ship once instead of three times.
        assert shared_bytes < 0.6 * separate_bytes

    def test_single_query_degenerates_to_one_group(self):
        queries = [QuantileQuery(q=0.5, gamma=50)]
        engine = ConcurrentDemaEngine(queries, TopologyConfig(n_local_nodes=2))
        assert len(engine.groups) == 1

    def test_unknown_stream_node_rejected(self):
        engine = ConcurrentDemaEngine(
            [QuantileQuery(q=0.5, gamma=50)], TopologyConfig(n_local_nodes=2)
        )
        from repro.streaming.events import make_events

        with pytest.raises(ConfigurationError):
            engine.run({9: make_events([1.0], node_id=9)})
