"""Tests for the Dema root-node operator on the simulator."""

import pytest

from repro.errors import IdentificationError
from repro.network.channels import Channel
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    GammaUpdateMessage,
    SynopsisMessage,
)
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import event_key, make_events
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.core.root_node import DemaRootNode
from repro.core.slicing import slice_sorted_events

WINDOW = Window(0, 1000)


class LocalStub(SimulatedNode):
    """Answers candidate requests from a pre-sliced window."""

    def __init__(self, node_id, sliced):
        super().__init__(node_id)
        self.sliced = sliced
        self.requests = []
        self.gamma_updates = []

    def on_message(self, message, now):
        if isinstance(message, CandidateRequestMessage):
            self.requests.append(message)
            for index in message.slice_indices:
                reply = CandidateEventsMessage(
                    sender=self.node_id,
                    window=message.window,
                    slice_index=index,
                    events=self.sliced.run_for(index),
                )
                self.send(reply, 0, now)
        elif isinstance(message, GammaUpdateMessage):
            self.gamma_updates.append(message.gamma)


def deploy(node_values, q=0.5, gamma=5, adaptive=False):
    simulator = Simulator()
    query = QuantileQuery(q=q, window_length_ms=1000, gamma=gamma,
                          adaptive=adaptive)
    root = DemaRootNode(
        0, local_ids=sorted(node_values), query=query, ops_per_second=1e9
    )
    simulator.add_node(root)
    locals_ = {}
    for node_id, values in node_values.items():
        events = sorted(make_events(values, node_id=node_id), key=event_key)
        sliced = slice_sorted_events(events, gamma, node_id)
        local = LocalStub(node_id, sliced)
        simulator.add_node(local)
        simulator.connect(Channel(node_id, 0))
        simulator.connect(Channel(0, node_id))
        locals_[node_id] = local
        message = SynopsisMessage(
            sender=node_id,
            window=WINDOW,
            synopses=sliced.synopses,
            local_window_size=sliced.window_size,
        )
        simulator.schedule(1.0, lambda t, l=local, m=message: l.send(m, 0, t))
    return simulator, root, locals_


class TestProtocol:
    def test_exact_median_across_nodes(self):
        values = {1: list(range(0, 50)), 2: list(range(50, 100))}
        simulator, root, _ = deploy(values)
        simulator.run()
        assert len(root.outcomes) == 1
        outcome = root.outcomes[0]
        all_values = sorted(v for vals in values.values() for v in vals)
        assert outcome.value == all_values[49]  # rank ceil(0.5*100)=50
        assert outcome.global_window_size == 100

    def test_requests_sent_to_every_local(self):
        values = {1: list(range(10)), 2: list(range(10, 20))}
        simulator, root, locals_ = deploy(values)
        simulator.run()
        # Every local receives a request (possibly empty) so it can free state.
        assert all(len(l.requests) == 1 for l in locals_.values())

    def test_quantile_25(self):
        values = {1: list(range(100))}
        simulator, root, _ = deploy(values, q=0.25)
        simulator.run()
        assert root.outcomes[0].value == 24.0  # rank 25 -> value 24

    def test_empty_global_window(self):
        values = {1: [], 2: []}
        simulator, root, _ = deploy(values)
        simulator.run()
        outcome = root.outcomes[0]
        assert outcome.is_empty
        assert outcome.value is None

    def test_waits_for_all_locals(self):
        simulator = Simulator()
        query = QuantileQuery(gamma=5)
        root = DemaRootNode(0, local_ids=[1, 2], query=query)
        simulator.add_node(root)
        local = LocalStub(1, slice_sorted_events(
            sorted(make_events(range(10), node_id=1), key=event_key), 5, 1))
        simulator.add_node(local)
        simulator.connect(Channel(1, 0))
        simulator.connect(Channel(0, 1))
        message = SynopsisMessage(
            sender=1, window=WINDOW, synopses=local.sliced.synopses,
            local_window_size=10,
        )
        simulator.schedule(1.0, lambda t: local.send(message, 0, t))
        simulator.run()
        assert root.outcomes == []
        assert root.open_windows == 1

    def test_duplicate_synopses_rejected(self):
        values = {1: list(range(10)), 2: list(range(10, 20))}
        simulator, root, locals_ = deploy(values)
        simulator.run()
        # A fresh window: node 1 reports twice before node 2 reports at all.
        later = Window(1000, 2000)
        dup = SynopsisMessage(
            sender=1, window=later,
            synopses=locals_[1].sliced.synopses, local_window_size=10,
        )
        simulator.schedule(simulator.now + 1, lambda t: locals_[1].send(dup, 0, t))
        simulator.schedule(
            simulator.now + 2, lambda t: locals_[1].send(dup, 0, t)
        )
        with pytest.raises(IdentificationError):
            simulator.run()

    def test_unexpected_candidates_rejected(self):
        values = {1: list(range(10))}
        simulator, root, locals_ = deploy(values)
        simulator.run()
        stray = CandidateEventsMessage(
            sender=1, window=Window(9000, 10000), slice_index=0, events=()
        )
        simulator.schedule(
            simulator.now + 1, lambda t: locals_[1].send(stray, 0, t)
        )
        with pytest.raises(IdentificationError):
            simulator.run()

    def test_outcome_metrics(self):
        values = {1: list(range(20)), 2: list(range(20, 40))}
        simulator, root, _ = deploy(values, gamma=4)
        simulator.run()
        outcome = root.outcomes[0]
        assert outcome.candidate_slices >= 1
        assert outcome.candidate_events >= outcome.candidate_slices * 2
        assert outcome.synopses_received == 10  # 40 events / gamma 4
        assert outcome.gamma_used == 4

    def test_needs_local_ids(self):
        with pytest.raises(IdentificationError):
            DemaRootNode(0, local_ids=[], query=QuantileQuery())


class TestAdaptivity:
    def test_gamma_broadcast_after_window(self):
        values = {1: list(range(100)), 2: list(range(100, 200))}
        simulator, root, locals_ = deploy(values, gamma=5, adaptive=True)
        simulator.run()
        assert root.gamma != 5
        for local in locals_.values():
            assert local.gamma_updates == [root.gamma]

    def test_fixed_gamma_never_broadcasts(self):
        values = {1: list(range(100))}
        simulator, root, locals_ = deploy(values, gamma=5, adaptive=False)
        simulator.run()
        assert root.gamma == 5
        assert all(l.gamma_updates == [] for l in locals_.values())
