"""Focused tests for QuantileQuery validation and derived properties."""

import pytest

from repro.errors import ConfigurationError
from repro.core.query import QuantileQuery
from repro.streaming.windows import TumblingWindows


class TestValidation:
    @pytest.mark.parametrize("q", [0.0, -0.5, 1.5])
    def test_invalid_quantile_rejected(self, q):
        with pytest.raises(ConfigurationError):
            QuantileQuery(q=q)

    def test_boundary_quantiles_allowed(self):
        assert QuantileQuery(q=1.0).q == 1.0
        assert QuantileQuery(q=0.001).q == 0.001

    @pytest.mark.parametrize("length", [0, -1000])
    def test_invalid_window_length_rejected(self, length):
        with pytest.raises(ConfigurationError):
            QuantileQuery(window_length_ms=length)

    @pytest.mark.parametrize("gamma", [0, 1, -5])
    def test_invalid_gamma_rejected(self, gamma):
        with pytest.raises(ConfigurationError):
            QuantileQuery(gamma=gamma)

    def test_minimum_gamma_allowed(self):
        assert QuantileQuery(gamma=2).gamma == 2

    def test_queries_are_frozen_and_hashable(self):
        query = QuantileQuery()
        with pytest.raises(AttributeError):
            query.q = 0.9
        assert query in {query}


class TestDefaults:
    def test_paper_defaults(self):
        query = QuantileQuery()
        assert query.q == 0.5
        assert query.window_length_ms == 1000
        assert query.gamma == 10_000
        assert not query.adaptive
        assert not query.per_node_gamma
        assert not query.is_sliding

    def test_default_assigner_is_one_second_tumbling(self):
        assigner = QuantileQuery().assigner()
        assert isinstance(assigner, TumblingWindows)
        assert assigner.length == 1000


class TestDescribe:
    def test_mentions_quantile_and_policy(self):
        text = QuantileQuery(q=0.25, gamma=150).describe()
        assert "25%" in text
        assert "γ=150" in text
        assert "tumbling" in text

    def test_adaptive_mentioned(self):
        text = QuantileQuery(adaptive=True).describe()
        assert "adaptive" in text

    def test_sliding_step_shown(self):
        text = QuantileQuery(
            window_length_ms=2000, window_step_ms=500
        ).describe()
        assert "every 500 ms" in text
