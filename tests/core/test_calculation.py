"""Tests for the calculation step."""

import pytest

from repro.errors import CalculationError
from repro.core.calculation import calculate_quantile, merge_candidate_runs
from repro.core.slicing import slice_sorted_events
from repro.core.window_cut import window_cut
from repro.streaming.events import event_key, make_events


class TestMergeCandidateRuns:
    def test_merges_sorted_runs(self):
        run_a = make_events([1, 3, 5], node_id=1)
        run_b = make_events([2, 4, 6], node_id=2)
        merged = merge_candidate_runs([run_a, run_b])
        assert [e.value for e in merged] == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

    def test_empty_runs(self):
        assert merge_candidate_runs([]) == []
        assert merge_candidate_runs([[], []]) == []

    def test_unsorted_run_rejected(self):
        bad = make_events([3, 1], node_id=1)
        with pytest.raises(CalculationError):
            merge_candidate_runs([bad])

    def test_duplicate_values_keep_key_order(self):
        run_a = make_events([2.0, 2.0], node_id=1)
        run_b = make_events([2.0], node_id=2)
        merged = merge_candidate_runs([run_a, run_b])
        assert [e.key for e in merged] == sorted(e.key for e in merged)


class TestCalculateQuantile:
    def make_cut_and_runs(self, values, gamma, rank):
        events = sorted(make_events(values, node_id=1), key=event_key)
        sliced = slice_sorted_events(events, gamma, 1)
        cut = window_cut(sliced.synopses, rank)
        runs = [sliced.run_for(s.slice_index) for s in cut.candidates]
        return cut, runs, events

    def test_selects_exact_rank(self):
        cut, runs, events = self.make_cut_and_runs(range(100), gamma=10, rank=42)
        assert calculate_quantile(cut, runs) == events[41]

    def test_wrong_event_count_rejected(self):
        cut, runs, _ = self.make_cut_and_runs(range(100), gamma=10, rank=42)
        with pytest.raises(CalculationError):
            calculate_quantile(cut, runs[:-1] if len(runs) > 1 else [])

    def test_rank_one(self):
        cut, runs, events = self.make_cut_and_runs(range(50), gamma=7, rank=1)
        assert calculate_quantile(cut, runs) == events[0]

    def test_rank_last(self):
        cut, runs, events = self.make_cut_and_runs(range(50), gamma=7, rank=50)
        assert calculate_quantile(cut, runs) == events[-1]

    def test_tampered_run_rejected(self):
        cut, runs, _ = self.make_cut_and_runs(range(100), gamma=10, rank=42)
        tampered = [list(reversed(run)) for run in runs]
        with pytest.raises(CalculationError):
            calculate_quantile(cut, tampered)
