"""Tests for the lossy-network reliability extension."""

import pytest

from repro.errors import ConfigurationError
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.core.reliability import ReliabilityConfig
from repro.network.topology import TopologyConfig
from repro.streaming.aggregates import exact_quantile
from repro.streaming.windows import TumblingWindows
from repro.bench.generator import GeneratorConfig, workload


def ground_truth(streams, q=0.5):
    assigner = TumblingWindows(1000)
    per_window = {}
    for events in streams.values():
        for event in events:
            per_window.setdefault(
                assigner.window_for(event.timestamp), []
            ).append(event.value)
    return {w: exact_quantile(v, q) for w, v in per_window.items()}


def run_lossy(loss_rate, *, reliability, n_nodes=3, seed=77, loss_seed=7):
    query = QuantileQuery(q=0.5, gamma=50)
    topo = TopologyConfig(
        n_local_nodes=n_nodes, loss_rate=loss_rate, loss_seed=loss_seed
    )
    engine = DemaEngine(query, topo, reliability=reliability)
    streams = workload(
        range(1, n_nodes + 1),
        GeneratorConfig(event_rate=800.0, duration_s=4.0, seed=seed),
    )
    report = engine.run(streams)
    return engine, report, streams


class TestConfig:
    def test_defaults_valid(self):
        config = ReliabilityConfig()
        assert config.timeout_s > 0
        assert config.max_retries >= 1

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(max_retries=0)

    def test_channel_loss_rate_validation(self):
        from repro.network.channels import Channel

        with pytest.raises(ConfigurationError):
            Channel(1, 0, loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            Channel(1, 0, loss_rate=-0.1)


class TestLossyChannels:
    def test_lossless_by_default(self):
        engine, report, streams = run_lossy(0.0, reliability=None)
        dropped = sum(
            c.stats.dropped for c in engine.simulator.channels.values()
        )
        assert dropped == 0

    def test_loss_actually_drops(self):
        engine, _, _ = run_lossy(
            0.15, reliability=ReliabilityConfig(max_retries=30)
        )
        dropped = sum(
            c.stats.dropped for c in engine.simulator.channels.values()
        )
        assert dropped > 0

    def test_dropped_bytes_still_counted(self):
        # Per-channel sent bytes include lost messages: the packet left.
        engine, report, _ = run_lossy(
            0.15, reliability=ReliabilityConfig(max_retries=30)
        )
        assert report.network.total_bytes > 0

    def test_loss_deterministic_per_seed(self):
        def dropped_count(loss_seed):
            engine, _, _ = run_lossy(
                0.15,
                reliability=ReliabilityConfig(max_retries=30),
                loss_seed=loss_seed,
            )
            return sum(
                c.stats.dropped for c in engine.simulator.channels.values()
            )

        assert dropped_count(1) == dropped_count(1)


class TestExactnessUnderLoss:
    @pytest.mark.parametrize("loss_rate", [0.05, 0.15])
    def test_all_windows_exact(self, loss_rate):
        engine, report, streams = run_lossy(
            loss_rate, reliability=ReliabilityConfig(max_retries=30)
        )
        truth = ground_truth(streams)
        assert len(report.outcomes) == len(truth)
        assert engine.root.aborted_windows == 0
        for outcome in report.outcomes:
            assert outcome.value == truth[outcome.window]

    def test_retransmissions_cost_extra_bytes(self):
        _, lossless, _ = run_lossy(
            0.0, reliability=ReliabilityConfig(max_retries=30)
        )
        _, lossy, _ = run_lossy(
            0.20, reliability=ReliabilityConfig(max_retries=30)
        )
        assert lossy.network.total_bytes > lossless.network.total_bytes

    def test_reliability_off_is_protocol_identical(self):
        _, plain, streams = run_lossy(0.0, reliability=None)
        truth = ground_truth(streams)
        for outcome in plain.outcomes:
            assert outcome.value == truth[outcome.window]

    def test_lost_release_answered_with_fresh_release(self):
        # Regression: when a WindowReleaseMessage is lost, the local keeps
        # resending its synopsis.  The root must answer the resend with a
        # fresh release — not open phantom state for the already-answered
        # window, wait for the *other* locals' synopses (which never come),
        # and abort.  Found by the end-to-end hypothesis property test.
        from repro.streaming.events import Event

        streams = {1: [Event(value=0.0, timestamp=0, node_id=1, seq=0)], 2: []}
        query = QuantileQuery(q=1.0, window_length_ms=1000, gamma=2)
        engine = DemaEngine(
            query,
            TopologyConfig(n_local_nodes=2, loss_rate=0.1, loss_seed=33),
            reliability=ReliabilityConfig(timeout_s=0.05, max_retries=30),
        )
        report = engine.run(streams)
        assert engine.root.aborted_windows == 0
        assert engine.root.open_windows == 0
        assert [o.value for o in report.outcomes] == [0.0]

    def test_local_state_released(self):
        engine, _, _ = run_lossy(
            0.10, reliability=ReliabilityConfig(max_retries=30)
        )
        pending = [
            engine.simulator.nodes[i].pending_windows
            for i in engine.topology.local_ids
        ]
        # Cumulative releases free everything except possibly the very last
        # window on nodes whose final release was itself lost.
        assert all(count <= 1 for count in pending)


class TestAbort:
    def test_hopeless_loss_aborts_not_hangs(self):
        engine, report, _ = run_lossy(
            0.6,
            reliability=ReliabilityConfig(timeout_s=0.02, max_retries=2),
        )
        # The run terminates; any window that could not be completed is
        # counted as aborted rather than producing a wrong answer.
        truth_count = 4
        assert len(report.outcomes) + engine.root.aborted_windows <= truth_count + 1
        for outcome in report.outcomes:
            assert outcome.value is not None or outcome.is_empty

    def test_aborted_results_never_wrong(self):
        engine, report, streams = run_lossy(
            0.5,
            reliability=ReliabilityConfig(timeout_s=0.02, max_retries=2),
        )
        truth = ground_truth(streams)
        for outcome in report.outcomes:
            if outcome.value is not None:
                assert outcome.value == truth[outcome.window]
