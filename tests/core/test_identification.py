"""Tests for the identification step."""

import pytest

from repro.errors import IdentificationError
from repro.core.identification import identify
from repro.core.slicing import slice_sorted_events
from repro.streaming.events import event_key, make_events


def sliced(values, node_id, gamma=5):
    events = sorted(make_events(values, node_id=node_id), key=event_key)
    return slice_sorted_events(events, gamma, node_id)


class TestIdentify:
    def test_fetch_plan_covers_candidates(self):
        a = sliced(range(0, 100), node_id=1)
        b = sliced(range(100, 160), node_id=2)
        result = identify(
            {1: a.synopses, 2: b.synopses},
            {1: a.window_size, 2: b.window_size},
            q=0.5,
        )
        assert result.global_window_size == 160
        assert result.rank == 80
        requested = {
            (node, index)
            for node, indices in result.requests.items()
            for index in indices
        }
        assert requested == result.cut.candidate_ids

    def test_median_of_disjoint_nodes_targets_one_node(self):
        a = sliced(range(0, 100), node_id=1)
        b = sliced(range(1000, 1100), node_id=2)
        result = identify(
            {1: a.synopses, 2: b.synopses},
            {1: 100, 2: 100},
            q=0.25,
        )
        assert set(result.requests) == {1}

    def test_empty_local_window_allowed(self):
        a = sliced(range(10), node_id=1)
        result = identify(
            {1: a.synopses, 2: ()},
            {1: 10, 2: 0},
            q=0.5,
        )
        assert result.global_window_size == 10

    def test_all_empty_rejected(self):
        with pytest.raises(IdentificationError):
            identify({1: (), 2: ()}, {1: 0, 2: 0}, q=0.5)

    def test_node_set_mismatch_rejected(self):
        a = sliced(range(10), node_id=1)
        with pytest.raises(IdentificationError):
            identify({1: a.synopses}, {1: 10, 2: 0}, q=0.5)

    def test_size_mismatch_rejected(self):
        a = sliced(range(10), node_id=1)
        with pytest.raises(IdentificationError):
            identify({1: a.synopses}, {1: 11}, q=0.5)

    def test_requests_sorted_by_index(self):
        a = sliced([5.0, 5.0, 5.0, 5.0, 5.0, 5.0] * 4, node_id=1, gamma=2)
        result = identify({1: a.synopses}, {1: a.window_size}, q=0.5)
        for indices in result.requests.values():
            assert list(indices) == sorted(indices)

    def test_candidate_events_exposed(self):
        a = sliced(range(20), node_id=1, gamma=4)
        result = identify({1: a.synopses}, {1: 20}, q=0.5)
        assert result.candidate_events == result.cut.candidate_events

    @pytest.mark.parametrize("q", [0.01, 0.25, 0.5, 0.75, 1.0])
    def test_rank_follows_paper_definition(self, q):
        import math

        a = sliced(range(97), node_id=1)
        result = identify({1: a.synopses}, {1: 97}, q=q)
        assert result.rank == math.ceil(q * 97)
