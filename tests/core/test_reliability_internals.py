"""Deterministic unit tests for the root's retransmission machinery."""

import pytest

from repro.network.channels import Channel
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    SynopsisMessage,
    SynopsisRequestMessage,
    WindowReleaseMessage,
)
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import event_key, make_events
from repro.streaming.windows import Window
from repro.core.query import QuantileQuery
from repro.core.reliability import ReliabilityConfig
from repro.core.root_node import DemaRootNode
from repro.core.slicing import slice_sorted_events

WINDOW = Window(0, 1000)


class ScriptedLocal(SimulatedNode):
    """A local node the test drives by hand; records what the root sends."""

    def __init__(self, node_id, sliced=None):
        super().__init__(node_id)
        self.sliced = sliced
        self.received = []
        self.serve_candidates = True

    def on_message(self, message, now):
        self.received.append(message)
        if (
            isinstance(message, CandidateRequestMessage)
            and self.serve_candidates
            and self.sliced is not None
        ):
            for index in message.slice_indices:
                self.send(
                    CandidateEventsMessage(
                        sender=self.node_id,
                        window=message.window,
                        slice_index=index,
                        events=self.sliced.run_for(index),
                    ),
                    0,
                    now,
                )

    def synopses_message(self):
        return SynopsisMessage(
            sender=self.node_id,
            window=WINDOW,
            synopses=self.sliced.synopses,
            local_window_size=self.sliced.window_size,
        )


def deploy(reliability, *, serve_candidates=(True, True)):
    simulator = Simulator()
    query = QuantileQuery(q=0.5, gamma=5)
    root = DemaRootNode(
        0, local_ids=[1, 2], query=query, ops_per_second=1e9,
        reliability=reliability,
    )
    simulator.add_node(root)
    locals_ = {}
    for node_id, serving in zip((1, 2), serve_candidates):
        # Identical value ranges: the median's candidate slices span both
        # nodes, so both must serve in the calculation phase.
        events = sorted(
            make_events(range(10, 20), node_id=node_id),
            key=event_key,
        )
        local = ScriptedLocal(node_id, slice_sorted_events(events, 5, node_id))
        local.serve_candidates = serving
        simulator.add_node(local)
        simulator.connect(Channel(node_id, 0))
        simulator.connect(Channel(0, node_id))
        locals_[node_id] = local
    return simulator, root, locals_


RELIABILITY = ReliabilityConfig(timeout_s=0.05, max_retries=3)


class TestReliabilityConfigValidation:
    def test_defaults(self):
        config = ReliabilityConfig()
        assert config.timeout_s == 0.05
        assert config.max_retries == 10

    def test_zero_timeout_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="timeout_s"):
            ReliabilityConfig(timeout_s=0.0)

    def test_negative_timeout_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="timeout_s"):
            ReliabilityConfig(timeout_s=-0.5)

    def test_zero_retries_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="max_retries"):
            ReliabilityConfig(max_retries=0)

    def test_tiny_positive_timeout_accepted(self):
        assert ReliabilityConfig(timeout_s=1e-6).timeout_s == 1e-6

    def test_single_retry_accepted(self):
        assert ReliabilityConfig(max_retries=1).max_retries == 1


class TestSynopsisPhaseRetransmit:
    def test_missing_local_gets_synopsis_request(self):
        simulator, root, locals_ = deploy(RELIABILITY)
        # Only node 1 reports; node 2 stays silent.
        simulator.schedule(
            1.0, lambda t: locals_[1].send(locals_[1].synopses_message(), 0, t)
        )
        simulator.run(until=1.2)
        requests = [
            m for m in locals_[2].received
            if isinstance(m, SynopsisRequestMessage)
        ]
        assert requests, "silent local was never re-asked"
        # The reporting local is not bothered.
        assert not any(
            isinstance(m, SynopsisRequestMessage)
            for m in locals_[1].received
        )

    def test_retries_bounded_then_abort(self):
        simulator, root, locals_ = deploy(RELIABILITY)
        simulator.schedule(
            1.0, lambda t: locals_[1].send(locals_[1].synopses_message(), 0, t)
        )
        simulator.run()
        requests = [
            m for m in locals_[2].received
            if isinstance(m, SynopsisRequestMessage)
        ]
        assert len(requests) <= RELIABILITY.max_retries
        assert root.aborted_windows == 1
        assert root.open_windows == 0
        assert root.outcomes == []

    def test_abort_releases_locals(self):
        simulator, root, locals_ = deploy(RELIABILITY)
        simulator.schedule(
            1.0, lambda t: locals_[1].send(locals_[1].synopses_message(), 0, t)
        )
        simulator.run()
        releases = [
            m for m in locals_[1].received
            if isinstance(m, WindowReleaseMessage)
        ]
        assert releases

    def test_no_retransmit_when_complete(self):
        simulator, root, locals_ = deploy(RELIABILITY)
        for local in locals_.values():
            simulator.schedule(
                1.0, lambda t, l=local: l.send(l.synopses_message(), 0, t)
            )
        simulator.run()
        assert root.aborted_windows == 0
        assert len(root.outcomes) == 1
        for local in locals_.values():
            assert not any(
                isinstance(m, SynopsisRequestMessage) for m in local.received
            )


class TestCandidatePhaseRetransmit:
    def test_outstanding_runs_rerequested(self):
        simulator, root, locals_ = deploy(
            RELIABILITY, serve_candidates=(True, False)
        )
        for local in locals_.values():
            simulator.schedule(
                1.0, lambda t, l=local: l.send(l.synopses_message(), 0, t)
            )
        simulator.run(until=1.12)
        # Node 2 never served; it must have received more than one request.
        requests_to_2 = [
            m for m in locals_[2].received
            if isinstance(m, CandidateRequestMessage)
        ]
        assert len(requests_to_2) >= 2
        # Retransmitted requests only name outstanding slices.
        retry = requests_to_2[-1]
        assert retry.slice_indices  # node 2 owns candidates around the median

    def test_eventual_abort_when_candidates_never_arrive(self):
        simulator, root, locals_ = deploy(
            RELIABILITY, serve_candidates=(True, False)
        )
        for local in locals_.values():
            simulator.schedule(
                1.0, lambda t, l=local: l.send(l.synopses_message(), 0, t)
            )
        simulator.run()
        assert root.aborted_windows == 1
        assert root.outcomes == []

    def test_duplicate_synopsis_batches_ignored_mid_flight(self):
        """A retransmitted synopsis whose original was merely delayed."""
        simulator, root, locals_ = deploy(RELIABILITY)
        # Node 1 reports twice (duplicate), node 2 once, all before any
        # timer fires; the window must resolve exactly once.
        simulator.schedule(
            1.0, lambda t: locals_[1].send(locals_[1].synopses_message(), 0, t)
        )
        simulator.schedule(
            1.01,
            lambda t: locals_[1].send(locals_[1].synopses_message(), 0, t),
        )
        simulator.schedule(
            1.02,
            lambda t: locals_[2].send(locals_[2].synopses_message(), 0, t),
        )
        simulator.run()
        assert len(root.outcomes) == 1
        assert root.aborted_windows == 0

    def test_duplicate_candidate_runs_ignored_mid_flight(self):
        """The same run served twice while the window is still open."""
        simulator, root, locals_ = deploy(
            RELIABILITY, serve_candidates=(True, False)
        )
        for local in locals_.values():
            simulator.schedule(
                1.0, lambda t, l=local: l.send(l.synopses_message(), 0, t)
            )

        def serve_node_2_twice(now):
            requests = [
                m for m in locals_[2].received
                if isinstance(m, CandidateRequestMessage)
            ]
            assert requests, "root never asked node 2 for candidates"
            for _ in range(2):
                for index in requests[0].slice_indices:
                    locals_[2].send(
                        CandidateEventsMessage(
                            sender=2,
                            window=requests[0].window,
                            slice_index=index,
                            events=locals_[2].sliced.run_for(index),
                        ),
                        0,
                        now,
                    )

        simulator.schedule(1.03, serve_node_2_twice)
        simulator.run()
        assert len(root.outcomes) == 1
        assert root.aborted_windows == 0

    def test_duplicate_runs_ignored_with_reliability(self):
        simulator, root, locals_ = deploy(RELIABILITY)
        for local in locals_.values():
            simulator.schedule(
                1.0, lambda t, l=local: l.send(l.synopses_message(), 0, t)
            )
        simulator.run()
        assert len(root.outcomes) == 1
        # Re-deliver a candidate run after completion: silently ignored.
        stray = CandidateEventsMessage(
            sender=1, window=WINDOW, slice_index=0,
            events=locals_[1].sliced.run_for(0),
        )
        simulator.schedule(
            simulator.now + 1.0, lambda t: locals_[1].send(stray, 0, t)
        )
        simulator.run()
        assert len(root.outcomes) == 1
