"""Tests for the Dema local-node operator on the simulator."""

import pytest

from repro.errors import SliceError
from repro.network.channels import Channel
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    GammaUpdateMessage,
    SynopsisMessage,
)
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import make_events
from repro.streaming.windows import Window
from repro.core.local_node import DemaLocalNode
from repro.core.query import QuantileQuery


class RootStub(SimulatedNode):
    def __init__(self):
        super().__init__(0)
        self.received = []

    def on_message(self, message, now):
        self.received.append(message)


def deploy(gamma=5):
    simulator = Simulator()
    root = RootStub()
    query = QuantileQuery(q=0.5, window_length_ms=1000, gamma=gamma)
    local = DemaLocalNode(1, root_id=0, query=query, ops_per_second=1e9)
    simulator.add_node(root)
    simulator.add_node(local)
    simulator.connect(Channel(1, 0))
    simulator.connect(Channel(0, 1))
    return simulator, root, local


WINDOW = Window(0, 1000)


class TestIngestAndSynopses:
    def test_window_complete_sends_synopses(self):
        simulator, root, local = deploy(gamma=5)
        events = make_events(range(12), node_id=1, timestamp_step=10)
        simulator.schedule(0.5, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert len(root.received) == 1
        message = root.received[0]
        assert isinstance(message, SynopsisMessage)
        assert message.local_window_size == 12
        assert len(message.synopses) == 3  # 12 events / gamma 5 -> 5,5,2

    def test_empty_window_still_announced(self):
        simulator, root, local = deploy()
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert len(root.received) == 1
        assert root.received[0].local_window_size == 0
        assert root.received[0].synopses == ()

    def test_events_split_across_windows(self):
        simulator, root, local = deploy()
        events = make_events(range(4), node_id=1, timestamp_step=400)
        simulator.schedule(1.3, lambda t: local.ingest(events, t))
        simulator.schedule(1.5, lambda t: local.on_window_complete(WINDOW, t))
        simulator.schedule(
            2.5, lambda t: local.on_window_complete(Window(1000, 2000), t)
        )
        simulator.run()
        sizes = [m.local_window_size for m in root.received]
        assert sizes == [3, 1]  # timestamps 0,400,800 | 1200

    def test_counters(self):
        simulator, root, local = deploy()
        events = make_events(range(7), node_id=1, timestamp_step=1)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert local.events_ingested == 7
        assert local.windows_completed == 1
        assert local.pending_windows == 1

    def test_synopses_cover_sorted_values(self):
        simulator, root, local = deploy(gamma=4)
        events = make_events([9, 1, 5, 3, 7, 2, 8, 4], node_id=1, timestamp_step=1)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        synopses = root.received[0].synopses
        assert synopses[0].first_value == 1.0
        assert synopses[-1].last_value == 9.0


class TestCandidateServing:
    def run_with_request(self, indices):
        simulator, root, local = deploy(gamma=4)
        events = make_events(range(10), node_id=1, timestamp_step=10)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        request = CandidateRequestMessage(
            sender=0, window=WINDOW, slice_indices=indices
        )
        simulator.schedule(1.5, lambda t: root.send(request, 1, t))
        simulator.run()
        return [
            m for m in root.received if isinstance(m, CandidateEventsMessage)
        ], local

    def test_requested_slices_returned(self):
        replies, local = self.run_with_request((0, 2))
        assert [m.slice_index for m in replies] == [0, 2]
        assert [e.value for e in replies[0].events] == [0.0, 1.0, 2.0, 3.0]

    def test_window_freed_after_serving(self):
        replies, local = self.run_with_request((0,))
        assert local.pending_windows == 0

    def test_empty_request_frees_window(self):
        replies, local = self.run_with_request(())
        assert replies == []
        assert local.pending_windows == 0

    def test_unknown_window_rejected(self):
        simulator, root, local = deploy()
        request = CandidateRequestMessage(
            sender=0, window=Window(5000, 6000), slice_indices=(0,)
        )
        simulator.schedule(0.0, lambda t: root.send(request, 1, t))
        with pytest.raises(SliceError):
            simulator.run()


class TestGammaUpdates:
    def test_gamma_update_applies_to_next_window(self):
        simulator, root, local = deploy(gamma=5)
        update = GammaUpdateMessage(sender=0, window=WINDOW, gamma=3)
        simulator.schedule(0.0, lambda t: root.send(update, 1, t))
        events = make_events(range(9), node_id=1, timestamp_step=10)
        simulator.schedule(0.5, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert local.gamma == 3
        assert len(root.received[-1].synopses) == 3  # 9 events / gamma 3

    def test_gamma_update_clamped_to_minimum(self):
        simulator, root, local = deploy()
        update = GammaUpdateMessage(sender=0, window=WINDOW, gamma=0)
        simulator.schedule(0.0, lambda t: root.send(update, 1, t))
        simulator.run()
        assert local.gamma == 2

    def test_unexpected_message_rejected(self):
        simulator, root, local = deploy()
        bad = SynopsisMessage(sender=0, window=WINDOW)
        simulator.schedule(0.0, lambda t: root.send(bad, 1, t))
        with pytest.raises(SliceError):
            simulator.run()
