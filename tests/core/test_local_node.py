"""Tests for the Dema local-node operator on the simulator."""

import pytest

from repro.errors import SliceError
from repro.network.channels import Channel
from repro.network.messages import (
    CandidateEventsMessage,
    CandidateRequestMessage,
    GammaUpdateMessage,
    SynopsisMessage,
)
from repro.network.simulator import SimulatedNode, Simulator
from repro.streaming.events import make_events
from repro.streaming.windows import Window
from repro.core.local_node import DemaLocalNode
from repro.core.query import QuantileQuery


class RootStub(SimulatedNode):
    def __init__(self):
        super().__init__(0)
        self.received = []

    def on_message(self, message, now):
        self.received.append(message)


def deploy(gamma=5):
    simulator = Simulator()
    root = RootStub()
    query = QuantileQuery(q=0.5, window_length_ms=1000, gamma=gamma)
    local = DemaLocalNode(1, root_id=0, query=query, ops_per_second=1e9)
    simulator.add_node(root)
    simulator.add_node(local)
    simulator.connect(Channel(1, 0))
    simulator.connect(Channel(0, 1))
    return simulator, root, local


WINDOW = Window(0, 1000)


class TestIngestAndSynopses:
    def test_window_complete_sends_synopses(self):
        simulator, root, local = deploy(gamma=5)
        events = make_events(range(12), node_id=1, timestamp_step=10)
        simulator.schedule(0.5, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert len(root.received) == 1
        message = root.received[0]
        assert isinstance(message, SynopsisMessage)
        assert message.local_window_size == 12
        assert len(message.synopses) == 3  # 12 events / gamma 5 -> 5,5,2

    def test_empty_window_still_announced(self):
        simulator, root, local = deploy()
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert len(root.received) == 1
        assert root.received[0].local_window_size == 0
        assert root.received[0].synopses == ()

    def test_events_split_across_windows(self):
        simulator, root, local = deploy()
        events = make_events(range(4), node_id=1, timestamp_step=400)
        simulator.schedule(1.3, lambda t: local.ingest(events, t))
        simulator.schedule(1.5, lambda t: local.on_window_complete(WINDOW, t))
        simulator.schedule(
            2.5, lambda t: local.on_window_complete(Window(1000, 2000), t)
        )
        simulator.run()
        sizes = [m.local_window_size for m in root.received]
        assert sizes == [3, 1]  # timestamps 0,400,800 | 1200

    def test_counters(self):
        simulator, root, local = deploy()
        events = make_events(range(7), node_id=1, timestamp_step=1)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert local.events_ingested == 7
        assert local.windows_completed == 1
        assert local.pending_windows == 1

    def test_synopses_cover_sorted_values(self):
        simulator, root, local = deploy(gamma=4)
        events = make_events([9, 1, 5, 3, 7, 2, 8, 4], node_id=1, timestamp_step=1)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        synopses = root.received[0].synopses
        assert synopses[0].first_value == 1.0
        assert synopses[-1].last_value == 9.0


class TestCandidateServing:
    def run_with_request(self, indices):
        simulator, root, local = deploy(gamma=4)
        events = make_events(range(10), node_id=1, timestamp_step=10)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        request = CandidateRequestMessage(
            sender=0, window=WINDOW, slice_indices=indices
        )
        simulator.schedule(1.5, lambda t: root.send(request, 1, t))
        simulator.run()
        return [
            m for m in root.received if isinstance(m, CandidateEventsMessage)
        ], local

    def test_requested_slices_returned(self):
        replies, local = self.run_with_request((0, 2))
        assert [m.slice_index for m in replies] == [0, 2]
        assert [e.value for e in replies[0].events] == [0.0, 1.0, 2.0, 3.0]

    def test_window_freed_after_serving(self):
        replies, local = self.run_with_request((0,))
        assert local.pending_windows == 0

    def test_empty_request_frees_window(self):
        replies, local = self.run_with_request(())
        assert replies == []
        assert local.pending_windows == 0

    def test_unknown_window_rejected(self):
        simulator, root, local = deploy()
        request = CandidateRequestMessage(
            sender=0, window=Window(5000, 6000), slice_indices=(0,)
        )
        simulator.schedule(0.0, lambda t: root.send(request, 1, t))
        with pytest.raises(SliceError):
            simulator.run()


class TestGammaUpdates:
    def test_gamma_update_applies_to_next_window(self):
        simulator, root, local = deploy(gamma=5)
        update = GammaUpdateMessage(sender=0, window=WINDOW, gamma=3)
        simulator.schedule(0.0, lambda t: root.send(update, 1, t))
        events = make_events(range(9), node_id=1, timestamp_step=10)
        simulator.schedule(0.5, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(WINDOW, t))
        simulator.run()
        assert local.gamma == 3
        assert len(root.received[-1].synopses) == 3  # 9 events / gamma 3

    def test_gamma_update_clamped_to_minimum(self):
        simulator, root, local = deploy()
        update = GammaUpdateMessage(sender=0, window=WINDOW, gamma=0)
        simulator.schedule(0.0, lambda t: root.send(update, 1, t))
        simulator.run()
        assert local.gamma == 2

    def test_unexpected_message_rejected(self):
        simulator, root, local = deploy()
        bad = SynopsisMessage(sender=0, window=WINDOW)
        simulator.schedule(0.0, lambda t: root.send(bad, 1, t))
        with pytest.raises(SliceError):
            simulator.run()


class TestCrossLayerLateAccounting:
    """Both layers must agree on which side of a window boundary an
    event falls: ``end - 1`` is the last admissible timestamp of the
    sealed window, ``end`` opens the next one.  The Dema local node
    expresses the verdict through its late-event counter; the generic
    SPE operator expresses it through which window the event folds into
    after the aligned ``closeable`` sealing tick."""

    def test_local_node_boundary_verdicts(self):
        simulator, root, local = deploy()
        events = make_events(range(10), node_id=1, timestamp_step=5)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(
            Window(0, 1000), t
        ))
        # An event at end - 1 targets the sealed window: dropped, counted.
        simulator.schedule(2.0, lambda t: local.ingest(
            make_events([1.0], node_id=1, start_timestamp=999,
                        start_seq=100), t
        ))
        # An event exactly at end belongs to [1000, 2000): accepted.
        simulator.schedule(3.0, lambda t: local.ingest(
            make_events([2.0], node_id=1, start_timestamp=1000,
                        start_seq=101), t
        ))
        simulator.run()
        assert local.late_events == 1
        assert local.events_ingested == 12

    def test_release_boundary_event_is_not_late(self):
        from repro.network.messages import WindowReleaseMessage

        simulator, root, local = deploy()
        events = make_events(range(10), node_id=1, timestamp_step=5)
        simulator.schedule(0.1, lambda t: local.ingest(events, t))
        simulator.schedule(1.0, lambda t: local.on_window_complete(
            Window(0, 1000), t
        ))
        release = WindowReleaseMessage(sender=0, window=Window(0, 1000))
        simulator.schedule(1.5, lambda t: root.send(release, 1, t))
        # Timestamp == last_release_end is the first admissible
        # timestamp of the next window, never a late event.
        simulator.schedule(2.0, lambda t: local.ingest(
            make_events([3.0], node_id=1, start_timestamp=1000,
                        start_seq=200), t
        ))
        simulator.run()
        assert local.last_release_end == 1000
        assert local.late_events == 0
        assert local.pending_windows == 0

    def test_operator_agrees_with_local_node_on_the_boundary(self):
        from repro.streaming.aggregates import get_function
        from repro.streaming.operators import WindowedAggregationOperator
        from repro.streaming.time import Watermark
        from repro.streaming.windows import TumblingWindows

        operator = WindowedAggregationOperator(
            TumblingWindows(1000), get_function("count")
        )
        operator.process_all(
            make_events(range(10), node_id=1, timestamp_step=5)
        )
        # Watermark end - 1 must NOT close [0, 1000): the local node
        # still admits timestamps up to end - 1, and so must we.
        assert operator.advance_watermark(Watermark(999)) == []
        operator.process_all(
            make_events([1.0], node_id=1, start_timestamp=999,
                        start_seq=100)
        )
        results = operator.advance_watermark(Watermark(1000))
        assert len(results) == 1
        assert results[0].count == 11
        # The boundary event lands in the next window, exactly like the
        # local node's verdict above — no late drop on either layer.
        operator.process_all(
            make_events([2.0], node_id=1, start_timestamp=1000,
                        start_seq=101)
        )
        assert operator.late_events == 0
        assert operator.open_window_count == 1
        assert operator.flush()[0].window == Window(1000, 2000)
