"""Tests for the incrementally sorted local window."""

import random

import pytest

from repro.errors import SliceError
from repro.core.sorted_window import SortedLocalWindow
from repro.streaming.events import event_key, make_events


class TestInsertion:
    def test_events_come_out_sorted(self):
        window = SortedLocalWindow()
        window.add_all(make_events([5, 1, 4, 2, 3]))
        assert [e.value for e in window.seal()] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_large_random_insert_matches_sorted(self):
        rng = random.Random(3)
        values = [rng.random() for _ in range(5000)]
        window = SortedLocalWindow()
        window.add_all(make_events(values))
        assert [e.value for e in window.seal()] == sorted(values)

    def test_duplicates_ordered_by_key(self):
        window = SortedLocalWindow()
        window.add_all(make_events([2.0, 2.0, 2.0]))
        sealed = window.seal()
        assert [e.seq for e in sealed] == [0, 1, 2]

    def test_constructor_seed_events(self):
        window = SortedLocalWindow(make_events([3, 1, 2]))
        assert [e.value for e in window.sorted_events()] == [1.0, 2.0, 3.0]

    def test_len_counts_buffered_and_merged(self):
        window = SortedLocalWindow()
        events = make_events(range(100))
        for event in events:
            window.add(event)
        assert len(window) == 100

    def test_iteration_is_sorted(self):
        window = SortedLocalWindow()
        window.add_all(make_events([3, 1, 2]))
        assert [e.value for e in window] == [1.0, 2.0, 3.0]


class TestSealing:
    def test_seal_is_idempotent(self):
        window = SortedLocalWindow()
        window.add_all(make_events([2, 1]))
        first = window.seal()
        second = window.seal()
        assert first == second

    def test_add_after_seal_rejected(self):
        window = SortedLocalWindow()
        window.seal()
        with pytest.raises(SliceError):
            window.add(make_events([1.0])[0])

    def test_is_sealed_flag(self):
        window = SortedLocalWindow()
        assert not window.is_sealed
        window.seal()
        assert window.is_sealed

    def test_empty_seal(self):
        assert SortedLocalWindow().seal() == []

    def test_snapshot_does_not_seal(self):
        window = SortedLocalWindow()
        window.add_all(make_events([1.0]))
        window.sorted_events()
        window.add(make_events([2.0], start_seq=10)[0])
        assert len(window) == 2


class TestLazyBufferEquivalence:
    def test_interleaved_adds_and_snapshots_stay_sorted(self):
        # Snapshots force a compaction mid-stream; later batches must
        # merge into the existing run (two-pointer path), and an
        # already-above-the-run batch must take the concat fast path —
        # all observably identical to one big sort.
        rng = random.Random(21)
        values = [rng.random() * 100 for _ in range(5_000)]
        window = SortedLocalWindow()
        reference = []
        for lo in range(0, len(values), 640):
            chunk = make_events(values[lo:lo + 640], start_seq=lo)
            window.add_all(chunk)
            reference.extend(chunk)
            assert window.sorted_events() == sorted(reference, key=event_key)
        # Strictly ascending tail triggers the concatenation fast path.
        tail = make_events([1_000.0 + i for i in range(64)], start_seq=10_000)
        window.add_all(tail)
        reference.extend(tail)
        assert window.seal() == sorted(reference, key=event_key)


class TestSnapshotSemantics:
    """``sorted_events()`` is a zero-copy read-only snapshot.

    Mid-window cuts call it once per synopsis refresh; an O(n) defensive
    copy per call made repeated cuts quadratic, which is exactly what
    the snapshot contract removed.  The price is documented: the
    snapshot is only valid until the next insert plus compaction.
    """

    def test_repeated_snapshots_do_not_copy(self):
        window = SortedLocalWindow()
        window.add_all(make_events([3, 1, 2]))
        first = window.sorted_events()
        assert window.sorted_events() is first

    def test_seal_returns_the_same_run(self):
        window = SortedLocalWindow()
        window.add_all(make_events([3, 1, 2]))
        snapshot = window.sorted_events()
        assert window.seal() is snapshot

    def test_snapshot_refreshes_after_inserts(self):
        window = SortedLocalWindow()
        window.add_all(make_events([3.0, 1.0]))
        before = list(window.sorted_events())
        window.add_all(make_events([2.0], start_seq=2))
        after = window.sorted_events()
        assert [e.value for e in before] == [1.0, 3.0]
        assert [e.value for e in after] == [1.0, 2.0, 3.0]

    def test_columnar_snapshot_is_the_run(self):
        from repro.streaming.columns import EventColumns

        window = SortedLocalWindow()
        window.add_all(EventColumns.from_events(make_events([3, 1, 2])))
        snapshot = window.sorted_events()
        assert isinstance(snapshot, EventColumns)
        assert window.sorted_events() is snapshot
        assert [e.value for e in snapshot] == [1.0, 2.0, 3.0]
