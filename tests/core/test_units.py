"""Tests for overlap units and the slice taxonomy."""

import pytest

from repro.errors import IdentificationError
from repro.core.synopsis import SliceSynopsis
from repro.core.units import (
    SliceKind,
    build_units,
    classify_slice,
    unit_statistics,
)


def synopsis(first, last, count=10, node_id=1, index=0, total=10):
    return SliceSynopsis(
        first_key=(float(first), node_id, 0),
        last_key=(float(last), node_id, 999_999),
        count=count,
        node_id=node_id,
        slice_index=index,
        n_slices=total,
    )


class TestBuildUnits:
    def test_disjoint_slices_form_singleton_units(self):
        slices = [synopsis(0, 1), synopsis(2, 3, index=1), synopsis(4, 5, index=2)]
        units = build_units(slices)
        assert [len(u.members) for u in units] == [1, 1, 1]

    def test_overlapping_slices_merge(self):
        slices = [synopsis(0, 5), synopsis(4, 9, node_id=2)]
        units = build_units(slices)
        assert len(units) == 1
        assert len(units[0].members) == 2

    def test_transitive_chain_merges(self):
        slices = [
            synopsis(0, 5),
            synopsis(4, 9, node_id=2),
            synopsis(8, 12, node_id=3),
        ]
        assert len(build_units(slices)) == 1

    def test_offsets_are_cumulative_counts(self):
        slices = [
            synopsis(0, 1, count=5),
            synopsis(2, 3, count=7, index=1),
            synopsis(10, 20, count=3, index=2),
        ]
        units = build_units(slices)
        assert [u.offset for u in units] == [0, 5, 12]
        assert [u.pos_start for u in units] == [1, 6, 13]
        assert [u.pos_end for u in units] == [5, 12, 15]

    def test_rank_intervals_partition(self):
        slices = [
            synopsis(0, 5, count=4),
            synopsis(4, 9, count=6, node_id=2),
            synopsis(20, 30, count=5, index=1),
        ]
        units = build_units(slices)
        total = sum(u.size for u in units)
        covered = []
        for unit in units:
            covered.extend(range(unit.pos_start, unit.pos_end + 1))
        assert covered == list(range(1, total + 1))

    def test_input_order_irrelevant(self):
        slices = [synopsis(4, 9, node_id=2), synopsis(0, 5), synopsis(20, 21, index=1)]
        units_a = build_units(slices)
        units_b = build_units(list(reversed(slices)))
        assert [u.members for u in units_a] == [u.members for u in units_b]

    def test_empty_input(self):
        assert build_units([]) == []

    def test_contains_rank(self):
        units = build_units([synopsis(0, 1, count=5), synopsis(2, 3, count=5, index=1)])
        assert units[0].contains_rank(1)
        assert units[0].contains_rank(5)
        assert not units[0].contains_rank(6)
        assert units[1].contains_rank(6)


class TestRankBounds:
    def test_disjoint_members_have_exact_ranks(self):
        # Members overlap pairwise via a bridge but a & c are disjoint.
        a = synopsis(0, 4, count=10)
        bridge = synopsis(3, 8, count=10, node_id=2)
        c = synopsis(7, 12, count=10, index=1)
        unit = build_units([a, bridge, c])[0]
        assert unit.min_rank(a) == 1
        assert unit.max_rank(a) == 20  # c certainly above, bridge unknown
        assert unit.min_rank(c) == 11  # a certainly below
        assert unit.max_rank(c) == 30

    def test_identical_ranges_fully_ambiguous(self):
        a = synopsis(0, 10, count=5)
        b = synopsis(0, 10, count=5, node_id=2)
        unit = build_units([a, b])[0]
        for member in (a, b):
            assert unit.min_rank(member) == 1
            assert unit.max_rank(member) == 10

    def test_bounds_contain_true_ranks(self):
        # Construct events, slice them, and verify the true rank interval of
        # every slice lies within [min_rank, max_rank].
        from repro.core.slicing import slice_sorted_events
        from repro.streaming.events import event_key, make_events
        import random

        rng = random.Random(5)
        node_events = {
            1: sorted(make_events([rng.gauss(0, 1) for _ in range(200)],
                                  node_id=1), key=event_key),
            2: sorted(make_events([rng.gauss(0.5, 1.2) for _ in range(150)],
                                  node_id=2), key=event_key),
        }
        synopses = []
        for node_id, events in node_events.items():
            synopses.extend(slice_sorted_events(events, 20, node_id).synopses)
        all_events = sorted(
            (e for events in node_events.values() for e in events),
            key=event_key,
        )
        global_rank = {e.key: i + 1 for i, e in enumerate(all_events)}
        for unit in build_units(synopses):
            for member in unit.members:
                true_first = global_rank[member.first_key]
                true_last = global_rank[member.last_key]
                assert unit.min_rank(member) <= true_first
                assert unit.max_rank(member) >= true_last


class TestTaxonomy:
    def test_separate_slice(self):
        unit = build_units([synopsis(0, 1)])[0]
        assert classify_slice(unit, unit.members[0]) is SliceKind.SEPARATE

    def test_compound_slices(self):
        a = synopsis(0, 5)
        b = synopsis(4, 9, node_id=2)
        unit = build_units([a, b])[0]
        assert classify_slice(unit, a) is SliceKind.COMPOUND
        assert classify_slice(unit, b) is SliceKind.COMPOUND

    def test_cover_slice(self):
        outer = synopsis(0, 10)
        inner = synopsis(3, 7, node_id=2)
        unit = build_units([outer, inner])[0]
        assert classify_slice(unit, inner) is SliceKind.COVER
        assert classify_slice(unit, outer) is SliceKind.COMPOUND

    def test_non_member_rejected(self):
        unit = build_units([synopsis(0, 1)])[0]
        with pytest.raises(IdentificationError):
            classify_slice(unit, synopsis(5, 6, node_id=9))

    def test_unit_statistics_census(self):
        slices = [
            synopsis(0, 1),                      # separate
            synopsis(10, 20),                    # compound with next
            synopsis(15, 25, node_id=2),         # compound
            synopsis(16, 18, node_id=3),         # cover inside both
        ]
        stats = unit_statistics(build_units(slices))
        assert stats["separate"] == 1
        assert stats["compound"] == 2
        assert stats["cover"] == 1
