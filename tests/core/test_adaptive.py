"""Tests for the adaptive slice factor (Section 3.3)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.core.adaptive import (
    AdaptiveGammaController,
    optimal_gamma,
    transfer_cost,
)


class TestTransferCost:
    def test_paper_formula(self):
        # Cost = 2*l_G/gamma + m*(gamma-2)
        assert transfer_cost(10, 1000, 3) == pytest.approx(200 + 24)

    def test_gamma_two_ships_everything_as_synopses(self):
        assert transfer_cost(2, 1000, 5) == pytest.approx(1000.0)

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            transfer_cost(1, 1000, 3)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            transfer_cost(10, -1, 3)
        with pytest.raises(ConfigurationError):
            transfer_cost(10, 100, -1)

    def test_convex_in_gamma(self):
        costs = [transfer_cost(g, 100_000, 4) for g in range(2, 2000)]
        minimum = costs.index(min(costs))
        # Monotone decrease before the minimum, increase after.
        assert all(a >= b for a, b in zip(costs[:minimum], costs[1 : minimum + 1]))
        assert all(a <= b for a, b in zip(costs[minimum:-1], costs[minimum + 1 :]))


class TestOptimalGamma:
    def test_matches_closed_form(self):
        gamma = optimal_gamma(100_000, 4)
        assert gamma == pytest.approx(math.sqrt(2 * 100_000 / 4), abs=1)

    def test_is_integer_optimum(self):
        for l_g, m in [(1000, 1), (5000, 3), (77, 5), (123_456, 17)]:
            best = optimal_gamma(l_g, m)
            for neighbour in (best - 1, best + 1):
                if neighbour >= 2:
                    assert transfer_cost(best, l_g, m) <= transfer_cost(
                        neighbour, l_g, m
                    )

    def test_no_candidates_maximizes_gamma(self):
        assert optimal_gamma(1000, 0) == 1000
        assert optimal_gamma(1000, 0, max_gamma=300) == 300

    def test_empty_window_minimum_gamma(self):
        assert optimal_gamma(0, 0) == 2

    def test_clamped_to_minimum(self):
        assert optimal_gamma(4, 100) == 2

    def test_max_gamma_clamp(self):
        assert optimal_gamma(1_000_000, 1, max_gamma=50) == 50

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_gamma(-1, 0)


class TestController:
    def test_initial_gamma_respected(self):
        controller = AdaptiveGammaController(gamma=64)
        assert controller.gamma == 64

    def test_observe_updates_gamma(self):
        controller = AdaptiveGammaController(gamma=10)
        new_gamma = controller.observe(100_000, 4)
        assert new_gamma == controller.gamma
        assert new_gamma == optimal_gamma(100_000, 4)

    def test_stable_conditions_reuse_gamma(self):
        controller = AdaptiveGammaController(gamma=10)
        first = controller.observe(50_000, 5)
        second = controller.observe(50_000, 5)
        assert first == second

    def test_smoothing_damps_oscillation(self):
        controller = AdaptiveGammaController(gamma=10, smoothing=0.5)
        controller.observe(100_000, 4)
        damped = controller.observe(10_000, 4)
        undamped = optimal_gamma(10_000, 4)
        assert damped > undamped

    def test_expected_cost_none_before_observation(self):
        assert AdaptiveGammaController().expected_cost() is None

    def test_expected_cost_after_observation(self):
        controller = AdaptiveGammaController()
        controller.observe(10_000, 2)
        cost = controller.expected_cost()
        assert cost == pytest.approx(
            transfer_cost(controller.gamma, 10_000, 2)
        )

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            AdaptiveGammaController(gamma=1)
        with pytest.raises(ConfigurationError):
            AdaptiveGammaController(smoothing=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveGammaController(smoothing=1.5)

    def test_adapts_to_rate_growth(self):
        controller = AdaptiveGammaController(gamma=10)
        small = controller.observe(1_000, 2)
        large = controller.observe(1_000_000, 2)
        assert large > small
