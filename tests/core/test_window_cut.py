"""Tests for the window-cut algorithm."""

import random

import pytest

from repro.errors import IdentificationError
from repro.core.slicing import slice_sorted_events
from repro.core.synopsis import SliceSynopsis
from repro.core.window_cut import rank_bound_candidates, window_cut
from repro.streaming.events import event_key, make_events


def synopsis(first, last, count=10, node_id=1, index=0, total=10):
    return SliceSynopsis(
        first_key=(float(first), node_id, 0),
        last_key=(float(last), node_id, 999_999),
        count=count,
        node_id=node_id,
        slice_index=index,
        n_slices=total,
    )


def sliced_workload(node_values, gamma):
    """Slice per-node value lists; return (synopses, runs_by_id, all_events)."""
    synopses = []
    runs = {}
    all_events = []
    for node_id, values in node_values.items():
        events = sorted(make_events(values, node_id=node_id), key=event_key)
        sliced = slice_sorted_events(events, gamma, node_id)
        synopses.extend(sliced.synopses)
        for index in range(sliced.n_slices):
            runs[(node_id, index)] = sliced.run_for(index)
        all_events.extend(events)
    all_events.sort(key=event_key)
    return synopses, runs, all_events


class TestDisjointSlices:
    def test_single_candidate_when_disjoint(self):
        slices = [
            synopsis(0, 1, count=10),
            synopsis(2, 3, count=10, index=1),
            synopsis(4, 5, count=10, index=2),
        ]
        cut = window_cut(slices, rank=15)
        assert [s.slice_id for s in cut.candidates] == [(1, 1)]
        assert cut.n_below == 10
        assert cut.local_rank == 5

    def test_rank_at_unit_boundaries(self):
        slices = [synopsis(0, 1, count=10), synopsis(2, 3, count=10, index=1)]
        low = window_cut(slices, rank=10)
        assert [s.slice_id for s in low.candidates] == [(1, 0)]
        high = window_cut(slices, rank=11)
        assert [s.slice_id for s in high.candidates] == [(1, 1)]

    def test_first_and_last_rank(self):
        slices = [synopsis(0, 1, count=5), synopsis(2, 3, count=5, index=1)]
        assert window_cut(slices, rank=1).n_below == 0
        last = window_cut(slices, rank=10)
        assert last.local_rank == 5


class TestOverlaps:
    def test_fully_overlapping_slices_all_candidates(self):
        slices = [
            synopsis(0, 10, count=10),
            synopsis(0, 10, count=10, node_id=2),
        ]
        cut = window_cut(slices, rank=10)
        assert len(cut.candidates) == 2
        assert cut.n_below == 0

    def test_cover_slice_kept_when_it_may_reach_rank(self):
        outer = synopsis(0, 100, count=10)
        inner = synopsis(40, 60, count=10, node_id=2)
        cut = window_cut([outer, inner], rank=10)
        assert {s.slice_id for s in cut.candidates} == {(1, 0), (2, 0)}

    def test_distant_member_pruned(self):
        # A chain a--b--c where a and c are value-disjoint; rank deep in c's
        # region excludes a.
        a = synopsis(0, 4, count=10)
        b = synopsis(3, 8, count=2, node_id=2)
        c = synopsis(7, 12, count=10, index=1)
        cut = window_cut([a, b, c], rank=21)
        ids = {s.slice_id for s in cut.candidates}
        assert (1, 1) in ids
        assert (1, 0) not in ids
        assert cut.n_below >= 10


class TestValidation:
    def test_empty_synopses_rejected(self):
        with pytest.raises(IdentificationError):
            window_cut([], rank=1)

    def test_out_of_range_rank_rejected(self):
        slices = [synopsis(0, 1, count=5)]
        with pytest.raises(IdentificationError):
            window_cut(slices, rank=0)
        with pytest.raises(IdentificationError):
            window_cut(slices, rank=6)

    def test_size_cross_check(self):
        slices = [synopsis(0, 1, count=5)]
        with pytest.raises(IdentificationError):
            window_cut(slices, rank=1, global_window_size=6)
        assert window_cut(slices, rank=1, global_window_size=5).n_below == 0


class TestEquivalenceWithReference:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("gamma", [2, 7, 25])
    def test_window_cut_matches_rank_bounds(self, seed, gamma):
        rng = random.Random(seed)
        node_values = {
            1: [rng.gauss(0, 1) for _ in range(rng.randint(1, 120))],
            2: [rng.gauss(rng.uniform(-1, 1), 1.5) for _ in range(rng.randint(1, 120))],
            3: [rng.gauss(2, 0.3) for _ in range(rng.randint(1, 60))],
        }
        synopses, _, all_events = sliced_workload(node_values, gamma)
        total = len(all_events)
        for rank in {1, total // 4 + 1, total // 2 + 1, total}:
            fast = window_cut(synopses, rank)
            slow = rank_bound_candidates(synopses, rank)
            assert fast.candidate_ids == slow.candidate_ids
            assert fast.n_below == slow.n_below

    def test_window_cut_scans_fewer_units(self):
        slices = [
            synopsis(i * 10, i * 10 + 5, count=10, index=i, total=20)
            for i in range(20)
        ]
        cut = window_cut(slices, rank=5)
        reference = rank_bound_candidates(slices, rank=5)
        assert cut.units_scanned < reference.units_scanned


class TestCorrectSelection:
    @pytest.mark.parametrize("seed", range(8))
    def test_candidates_always_contain_true_rank_event(self, seed):
        rng = random.Random(100 + seed)
        node_values = {
            1: [rng.uniform(0, 100) for _ in range(80)],
            2: [rng.uniform(30, 70) for _ in range(50)],
        }
        gamma = rng.choice([2, 5, 11])
        synopses, runs, all_events = sliced_workload(node_values, gamma)
        for rank in (1, len(all_events) // 3, len(all_events)):
            rank = max(rank, 1)
            cut = window_cut(synopses, rank)
            candidate_events = []
            for s in cut.candidates:
                candidate_events.extend(runs[s.slice_id])
            candidate_events.sort(key=event_key)
            truth = all_events[rank - 1]
            assert truth in candidate_events
            assert candidate_events[cut.local_rank - 1] == truth

    def test_candidate_metrics(self):
        slices = [synopsis(0, 1, count=6), synopsis(2, 3, count=4, index=1)]
        cut = window_cut(slices, rank=8)
        assert cut.candidate_events == 4
        assert cut.kinds["separate"] == 1
