"""Tests for multi-quantile queries."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.core.engine import dema_quantile
from repro.core.multi import dema_quantiles
from repro.streaming.aggregates import exact_quantile
from repro.streaming.events import make_events


def windows(seed=0, sizes=(800, 1200)):
    rng = random.Random(seed)
    return {
        node_id: make_events(
            [rng.gauss(50 * node_id, 12) for _ in range(size)],
            node_id=node_id,
        )
        for node_id, size in enumerate(sizes, start=1)
    }


class TestCorrectness:
    def test_matches_single_quantile_api(self):
        data = windows()
        qs = (0.1, 0.25, 0.5, 0.75, 0.9)
        result = dema_quantiles(data, qs, gamma=40)
        for q in qs:
            single = dema_quantile(data, q=q, gamma=40)
            assert result.values[q] == single.value
            assert result.ranks[q] == single.rank

    def test_matches_oracle(self):
        data = windows(seed=3)
        all_values = [e.value for events in data.values() for e in events]
        result = dema_quantiles(data, (0.05, 0.5, 0.95), gamma=25)
        for q, value in result.values.items():
            assert value == exact_quantile(all_values, q)

    def test_duplicate_quantiles_collapsed(self):
        data = windows()
        result = dema_quantiles(data, (0.5, 0.5, 0.5), gamma=40)
        assert set(result.values) == {0.5}

    def test_single_quantile_degenerates(self):
        data = windows()
        result = dema_quantiles(data, (0.5,), gamma=40)
        assert result.values[0.5] == dema_quantile(data, 0.5, 40).value


class TestSharing:
    def test_union_cheaper_than_sum_of_individuals(self):
        data = windows(seed=7)
        # Nearby ranks fall within one γ=100 slice, so candidates are shared.
        qs = (0.495, 0.5, 0.505)
        result = dema_quantiles(data, qs, gamma=100)
        individual_total = sum(
            dema_quantile(data, q=q, gamma=100).candidate_events for q in qs
        )
        assert result.candidate_events < individual_total
        # Synopses are shipped once regardless of quantile count.
        assert result.synopses == dema_quantile(data, 0.5, 100).synopses

    def test_transfer_accounting(self):
        data = windows()
        result = dema_quantiles(data, (0.25, 0.75), gamma=30)
        assert result.transfer_events == (
            2 * result.synopses + result.candidate_events
        )

    def test_candidate_events_bounded_by_dataset(self):
        data = windows()
        result = dema_quantiles(data, (0.01, 0.5, 0.99), gamma=10)
        assert result.candidate_events <= result.global_window_size


class TestValidation:
    def test_no_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            dema_quantiles({}, (0.5,), gamma=10)

    def test_no_quantiles_rejected(self):
        with pytest.raises(ConfigurationError):
            dema_quantiles(windows(), (), gamma=10)
