"""Tests for the sliding-window Dema extension."""

import pytest

from repro.errors import ConfigurationError
from repro.core.engine import DemaEngine
from repro.core.query import QuantileQuery
from repro.network.topology import TopologyConfig
from repro.streaming.aggregates import exact_quantile
from repro.streaming.windows import SlidingWindows, TumblingWindows
from repro.baselines.base import build_system
from repro.bench.generator import GeneratorConfig, workload


class TestQueryShape:
    def test_default_is_tumbling(self):
        query = QuantileQuery()
        assert not query.is_sliding
        assert isinstance(query.assigner(), TumblingWindows)

    def test_step_equal_length_is_tumbling(self):
        query = QuantileQuery(window_length_ms=1000, window_step_ms=1000)
        assert not query.is_sliding

    def test_sliding_assigner(self):
        query = QuantileQuery(window_length_ms=1000, window_step_ms=250)
        assert query.is_sliding
        assigner = query.assigner()
        assert isinstance(assigner, SlidingWindows)
        assert assigner.step == 250

    def test_invalid_step_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantileQuery(window_length_ms=1000, window_step_ms=0)
        with pytest.raises(ConfigurationError):
            QuantileQuery(window_length_ms=1000, window_step_ms=1500)

    def test_describe_mentions_sliding(self):
        query = QuantileQuery(window_length_ms=1000, window_step_ms=500)
        assert "sliding" in query.describe()


class TestSlidingDeployment:
    def run_sliding(self, step_ms, q=0.5, seed=3):
        query = QuantileQuery(
            q=q, window_length_ms=1000, window_step_ms=step_ms, gamma=40
        )
        engine = DemaEngine(query, TopologyConfig(n_local_nodes=2))
        streams = workload(
            [1, 2], GeneratorConfig(event_rate=600.0, duration_s=3.0, seed=seed)
        )
        report = engine.run(streams)
        assigner = SlidingWindows(1000, step_ms)
        per_window = {}
        for events in streams.values():
            for event in events:
                for window in assigner.assign(event.timestamp):
                    per_window.setdefault(window, []).append(event.value)
        return report, per_window

    @pytest.mark.parametrize("step_ms", [250, 500])
    def test_every_overlapping_window_exact(self, step_ms):
        report, per_window = self.run_sliding(step_ms)
        assert len(report.outcomes) == len(per_window)
        for outcome in report.outcomes:
            assert outcome.value == exact_quantile(
                per_window[outcome.window], 0.5
            )

    def test_more_windows_than_tumbling(self):
        sliding_report, _ = self.run_sliding(500)
        tumbling_query = QuantileQuery(q=0.5, window_length_ms=1000, gamma=40)
        engine = DemaEngine(tumbling_query, TopologyConfig(n_local_nodes=2))
        streams = workload(
            [1, 2], GeneratorConfig(event_rate=600.0, duration_s=3.0, seed=3)
        )
        tumbling_report = engine.run(streams)
        assert len(sliding_report.outcomes) > len(tumbling_report.outcomes)

    def test_non_median_quantile(self):
        report, per_window = self.run_sliding(500, q=0.8, seed=9)
        for outcome in report.outcomes:
            assert outcome.value == exact_quantile(
                per_window[outcome.window], 0.8
            )


class TestBaselineGuard:
    def test_baselines_reject_sliding(self):
        query = QuantileQuery(window_length_ms=1000, window_step_ms=500)
        topo = TopologyConfig(n_local_nodes=2)
        for name in ("scotty", "desis", "tdigest", "qdigest"):
            with pytest.raises(ConfigurationError):
                build_system(name, query, topo)

    def test_dema_accepts_sliding(self):
        query = QuantileQuery(window_length_ms=1000, window_step_ms=500)
        topo = TopologyConfig(n_local_nodes=2)
        assert build_system("dema", query, topo) is not None
