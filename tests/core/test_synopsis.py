"""Tests for slice synopses."""

import pytest

from repro.errors import SliceError
from repro.core.synopsis import SliceSynopsis


def synopsis(first, last, count=10, node_id=1, index=0, total=1):
    return SliceSynopsis(
        first_key=(float(first), node_id, 0),
        last_key=(float(last), node_id, count - 1),
        count=count,
        node_id=node_id,
        slice_index=index,
        n_slices=total,
    )


class TestValidation:
    def test_valid_synopsis(self):
        s = synopsis(1.0, 5.0)
        assert s.count == 10

    def test_zero_count_rejected(self):
        with pytest.raises(SliceError):
            synopsis(1.0, 5.0, count=0)

    def test_inverted_keys_rejected(self):
        with pytest.raises(SliceError):
            synopsis(5.0, 1.0)

    def test_index_out_of_range_rejected(self):
        with pytest.raises(SliceError):
            synopsis(1.0, 5.0, index=1, total=1)

    def test_single_event_slice_allowed(self):
        s = SliceSynopsis(
            first_key=(1.0, 1, 0),
            last_key=(1.0, 1, 0),
            count=1,
            node_id=1,
            slice_index=0,
            n_slices=1,
        )
        assert s.first_key == s.last_key


class TestAccessors:
    def test_slice_id(self):
        assert synopsis(1, 2, node_id=3, index=0).slice_id == (3, 0)

    def test_values(self):
        s = synopsis(1.5, 7.5)
        assert s.first_value == 1.5
        assert s.last_value == 7.5


class TestRelations:
    def test_overlap_symmetric(self):
        a = synopsis(1, 5)
        b = synopsis(4, 9, node_id=2)
        assert a.overlaps(b) and b.overlaps(a)

    def test_touching_ranges_overlap(self):
        # Inclusive ranges sharing exactly the boundary key overlap.
        a = SliceSynopsis(
            first_key=(1.0, 1, 0), last_key=(5.0, 1, 4), count=5,
            node_id=1, slice_index=0, n_slices=2,
        )
        b = SliceSynopsis(
            first_key=(5.0, 1, 4), last_key=(9.0, 1, 8), count=5,
            node_id=1, slice_index=1, n_slices=2,
        )
        assert a.overlaps(b)

    def test_disjoint_ranges_do_not_overlap(self):
        a = synopsis(1, 5)
        b = synopsis(6, 9, node_id=2)
        assert not a.overlaps(b)
        assert a.certainly_below(b)
        assert b.certainly_above(a)

    def test_same_value_different_node_not_certainly_below(self):
        a = SliceSynopsis(
            first_key=(1.0, 1, 0), last_key=(5.0, 1, 4), count=5,
            node_id=1, slice_index=0, n_slices=1,
        )
        b = SliceSynopsis(
            first_key=(5.0, 2, 0), last_key=(9.0, 2, 4), count=5,
            node_id=2, slice_index=0, n_slices=1,
        )
        # a.last_key = (5.0, 1, 4) < b.first_key = (5.0, 2, 0) by node tiebreak.
        assert a.certainly_below(b)

    def test_encloses(self):
        outer = synopsis(1, 10)
        inner = synopsis(3, 7, node_id=2)
        assert outer.encloses(inner)
        assert not inner.encloses(outer)

    def test_encloses_self(self):
        s = synopsis(1, 10)
        assert s.encloses(s)
