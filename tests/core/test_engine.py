"""Tests for the Dema engine facade (in-memory and simulated)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import TopologyConfig
from repro.streaming.aggregates import exact_quantile
from repro.streaming.events import make_events
from repro.streaming.windows import TumblingWindows
from repro.core.engine import DemaEngine, dema_quantile
from repro.core.query import QuantileQuery


class TestDemaQuantile:
    def test_median_exact(self, two_node_windows):
        values = [
            e.value for events in two_node_windows.values() for e in events
        ]
        result = dema_quantile(two_node_windows, q=0.5, gamma=50)
        assert result.value == exact_quantile(values, 0.5)

    @pytest.mark.parametrize("q", [0.1, 0.25, 0.5, 0.75, 0.9, 1.0])
    @pytest.mark.parametrize("gamma", [2, 17, 500])
    def test_all_quantiles_all_gammas(self, two_node_windows, q, gamma):
        values = [
            e.value for events in two_node_windows.values() for e in events
        ]
        result = dema_quantile(two_node_windows, q=q, gamma=gamma)
        assert result.value == exact_quantile(values, q)

    def test_transfer_cost_accounting(self, two_node_windows):
        result = dema_quantile(two_node_windows, q=0.5, gamma=50)
        assert result.transfer_events == 2 * result.synopses + result.candidate_events
        assert result.transfer_events < result.global_window_size

    def test_single_node(self):
        events = {1: make_events(range(100), node_id=1)}
        result = dema_quantile(events, q=0.5, gamma=10)
        assert result.value == 49.0

    def test_single_event(self):
        events = {1: make_events([7.0], node_id=1)}
        result = dema_quantile(events, q=0.5, gamma=2)
        assert result.value == 7.0

    def test_no_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            dema_quantile({}, q=0.5, gamma=2)

    def test_unsorted_input_accepted(self):
        rng = random.Random(1)
        values = [rng.random() for _ in range(500)]
        events = {1: make_events(values, node_id=1)}
        result = dema_quantile(events, q=0.5, gamma=7)
        assert result.value == exact_quantile(values, 0.5)

    def test_rank_matches_definition(self):
        events = {1: make_events(range(10), node_id=1)}
        result = dema_quantile(events, q=0.3, gamma=3)
        assert result.rank == 3


class TestDemaEngine:
    def make_engine(self, n_nodes=2, gamma=50, adaptive=False):
        query = QuantileQuery(
            q=0.5, window_length_ms=1000, gamma=gamma, adaptive=adaptive
        )
        return DemaEngine(query, TopologyConfig(n_local_nodes=n_nodes))

    def make_streams(self, n_nodes=2, per_node=1500, seed=0):
        rng = random.Random(seed)
        return {
            node_id: make_events(
                [rng.gauss(100 * node_id, 10) for _ in range(per_node)],
                node_id=node_id,
                timestamp_step=2,
            )
            for node_id in range(1, n_nodes + 1)
        }

    def test_every_window_exact(self):
        engine = self.make_engine()
        streams = self.make_streams()
        report = engine.run(streams)
        assigner = TumblingWindows(1000)
        per_window = {}
        for events in streams.values():
            for event in events:
                per_window.setdefault(
                    assigner.window_for(event.timestamp), []
                ).append(event.value)
        assert len(report.outcomes) == len(per_window)
        for outcome in report.outcomes:
            assert outcome.value == exact_quantile(
                per_window[outcome.window], 0.5
            )

    def test_report_metrics_populated(self):
        engine = self.make_engine()
        report = engine.run(self.make_streams())
        assert report.network.total_bytes > 0
        assert report.latency.count == len(report.outcomes)
        assert report.events_ingested == 3000
        assert report.final_time > 0

    def test_unknown_stream_node_rejected(self):
        engine = self.make_engine(n_nodes=2)
        with pytest.raises(ConfigurationError):
            engine.run({5: make_events([1.0], node_id=5)})

    def test_missing_node_streams_allowed(self):
        engine = self.make_engine(n_nodes=2)
        streams = {1: make_events(range(100), node_id=1, timestamp_step=5)}
        report = engine.run(streams)
        assert report.outcomes[0].value == 49.0

    def test_adaptive_run_changes_gamma(self):
        engine = self.make_engine(gamma=2, adaptive=True)
        engine.run(self.make_streams(per_node=2000))
        assert engine.root.gamma > 2

    def test_determinism(self):
        report_a = self.make_engine().run(self.make_streams(seed=7))
        report_b = self.make_engine().run(self.make_streams(seed=7))
        assert report_a.values == report_b.values
        assert report_a.network.total_bytes == report_b.network.total_bytes
        assert report_a.final_time == report_b.final_time
